"""Machine-checkable statements of the paper's figure shapes.

Each expectation inspects a :class:`~repro.experiments.runner.SuiteResult`
and reports whether one of the paper's qualitative claims holds on it.
The benchmark harness asserts these; the CLI prints them; users running
their own sweeps (different grids, sample sizes, period distributions)
get an automatic "does this still reproduce the paper?" verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.experiments.runner import SuiteResult
from repro.experiments.surface import Surface
from repro.timebase import REL_EPS

__all__ = ["Expectation", "PAPER_EXPECTATIONS", "check_suite"]


@dataclass(frozen=True)
class Expectation:
    """One qualitative claim from the paper's evaluation."""

    figure: str
    claim: str
    holds: Callable[[SuiteResult], bool]


def _diagonal(surface: Surface) -> list[float]:
    ns = surface.subtask_axis
    us = surface.utilization_axis
    steps = min(len(ns), len(us))
    return [
        surface.value(
            ns[round(i * (len(ns) - 1) / max(1, steps - 1))],
            us[round(i * (len(us) - 1) / max(1, steps - 1))],
        )
        for i in range(steps)
    ]


def _fig12_corner(result: SuiteResult) -> bool:
    surface = result.failure_rate
    benign = surface.value(
        min(surface.subtask_axis), min(surface.utilization_axis)
    )
    extreme = surface.value(
        max(surface.subtask_axis), max(surface.utilization_axis)
    )
    return benign <= 0.1 and extreme >= 0.5


def _fig12_monotone(result: SuiteResult) -> bool:
    diagonal = _diagonal(result.failure_rate)
    return all(a <= b + REL_EPS for a, b in zip(diagonal, diagonal[1:]))


def _fig13_at_least_one(result: SuiteResult) -> bool:
    return all(
        cell.value >= 1.0 - REL_EPS
        for cell in result.bound_ratio
        if not math.isnan(cell.value)
    )


def _fig13_grows(result: SuiteResult) -> bool:
    # The extreme corner may hold no finite-DS system at all (its cell is
    # then empty), so compare the benign corner against the largest
    # populated cell anywhere on the surface.
    surface = result.bound_ratio
    benign = surface.value(
        min(surface.subtask_axis), min(surface.utilization_axis)
    )
    finite = [
        cell.value for cell in surface if not math.isnan(cell.value)
    ]
    return (
        not math.isnan(benign)
        and len(finite) >= 2
        and benign < max(finite)
    )


def _fig14_grows_with_n(result: SuiteResult) -> bool:
    surface = result.pm_ds_ratio
    return all(
        [surface.value(n, u) for n in surface.subtask_axis]
        == sorted(surface.value(n, u) for n in surface.subtask_axis)
        for u in surface.utilization_axis
    )


def _fig14_two_from_five(result: SuiteResult) -> bool:
    surface = result.pm_ds_ratio
    relevant = [n for n in surface.subtask_axis if n >= 5]
    if not relevant:
        return True
    return all(
        surface.value(n, u) >= 1.8
        for n in relevant
        for u in surface.utilization_axis
    )


def _fig15_band(result: SuiteResult) -> bool:
    return all(
        1.0 - REL_EPS <= cell.value <= 2.0 for cell in result.rg_ds_ratio
    )


def _fig15_u_trend(result: SuiteResult) -> bool:
    surface = result.rg_ds_ratio
    lo = min(surface.utilization_axis)
    hi = max(surface.utilization_axis)
    lo_mean = sum(surface.value(n, lo) for n in surface.subtask_axis)
    hi_mean = sum(surface.value(n, hi) for n in surface.subtask_axis)
    return hi_mean >= lo_mean - REL_EPS


def _fig16_above_one(result: SuiteResult) -> bool:
    return all(cell.value >= 1.0 - REL_EPS for cell in result.pm_rg_ratio)


#: The paper's claims, one per checkable sentence of Section 5.
PAPER_EXPECTATIONS: tuple[Expectation, ...] = (
    Expectation(
        "Figure 12",
        "failure rate near 0 at the benign corner, >= 0.5 at (N_max, U_max)",
        _fig12_corner,
    ),
    Expectation(
        "Figure 12",
        "failure rate monotone along the grid diagonal",
        _fig12_monotone,
    ),
    Expectation(
        "Figure 13",
        "bound ratio >= 1 in every populated cell",
        _fig13_at_least_one,
    ),
    Expectation(
        "Figure 13",
        "bound ratio grows along the grid diagonal",
        _fig13_grows,
    ),
    Expectation(
        "Figure 14",
        "PM/DS ratio grows with the number of subtasks at every utilization",
        _fig14_grows_with_n,
    ),
    Expectation(
        "Figure 14",
        "PM/DS ratio >= ~2 for configurations with 5+ subtasks",
        _fig14_two_from_five,
    ),
    Expectation(
        "Figure 15",
        "RG/DS ratio stays within [1, 2]",
        _fig15_band,
    ),
    Expectation(
        "Figure 15",
        "RG/DS ratio largest at the highest utilization",
        _fig15_u_trend,
    ),
    Expectation(
        "Figure 16",
        "PM/RG ratio consistently above 1",
        _fig16_above_one,
    ),
)


def check_suite(
    result: SuiteResult,
    expectations: tuple[Expectation, ...] = PAPER_EXPECTATIONS,
) -> list[tuple[Expectation, bool]]:
    """Evaluate every expectation; returns (expectation, held) pairs."""
    return [
        (expectation, expectation.holds(result))
        for expectation in expectations
    ]


def render_report(results: list[tuple[Expectation, bool]]) -> str:
    """Human-readable pass/fail report of a :func:`check_suite` run."""
    lines = ["Paper-shape expectations:"]
    for expectation, held in results:
        mark = "PASS" if held else "FAIL"
        lines.append(f"  [{mark}] {expectation.figure}: {expectation.claim}")
    passed = sum(1 for _e, held in results if held)
    lines.append(f"{passed}/{len(results)} expectations hold")
    return "\n".join(lines)
