"""The locks study: schedulability and blocking under DPCP vs DPCP-p.

Section 2 of the paper assumes subtasks "do not contend for resources
other than processors"; the shared-resource subsystem
(:mod:`repro.locks`) lifts that assumption with critical sections and
two distributed lock protocols.  This study measures what the lifting
costs and how the two protocols differ:

* **Schedulability vs. critical-section ratio.**  Sections inflate the
  blocking-aware bounds (remote blocking, agent interference,
  suspension-as-jitter deferrals), so the fraction of SA/PM+locking
  schedulable systems must fall -- monotonically, on this sample -- as
  the section ratio grows.

* **DPCP vs DPCP-p ranking.**  DPCP funnels *every* resource onto one
  synchronization processor; DPCP-p spreads resources over per-resource
  hosts.  With more than one resource the centralized queue serializes
  unrelated requests, so measured lock waiting under DPCP dominates
  DPCP-p in aggregate.

* **Lock-free identity.**  A zero-ratio injection returns the input
  system itself, a lock manager configured onto a section-free system
  must not perturb the schedule (byte-identical traces, no lock log,
  under both arithmetic backends), and the blocking-aware analyses must
  reproduce the base bounds exactly.

The headline gate (:attr:`LocksStudyResult.gate_passed`) is the
conjunction, mirroring the chaos study's CI contract.

Run it from the CLI (``repro-rts locks``) or call
:func:`run_locks_study` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.factory import make_controller
from repro.errors import ConfigurationError
from repro.locks import (
    LockingConfig,
    analyze_sa_ds_blocking,
    analyze_sa_pm_blocking,
    inject_critical_sections,
)
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = [
    "DEFAULT_RATIOS",
    "LocksCell",
    "LocksStudyResult",
    "run_locks_study",
]

#: Locking protocols under comparison.
STUDY_PROTOCOLS = ("DPCP", "DPCP-p")

#: Critical-section duration ratios to sweep (fraction of the owning
#: subtask's execution time); 0 is the lock-free control arm.
DEFAULT_RATIOS = (0.0, 0.1, 0.25, 0.4)

#: Default workload: the chaos study's family at lighter utilization,
#: so the blocking-aware analyses (deliberately conservative: blocking
#: plus agent interference plus deferral jitter) still accept some
#: systems at moderate ratios and the sweep shows a gradual fall,
#: with several processors so DPCP-p actually spreads hosts.
DEFAULT_CONFIG = WorkloadConfig(
    subtasks_per_task=3,
    utilization=0.35,
    tasks=4,
    processors=3,
    period_min=100.0,
    period_max=1000.0,
    period_scale=300.0,
)

#: Resources drawn by the injection; > 1 so the protocols' placement
#: rules (one central host vs per-resource hosts) can differ.
STUDY_RESOURCES = 2

#: Probability that a subtask participates in locking.
STUDY_PARTICIPATION = 0.6


def _pm_runnable(result, system: System) -> bool:
    """The timer protocols need finite bounds for non-last subtasks."""
    for task_index, task in enumerate(system.tasks):
        for j in range(task.chain_length - 1):
            if math.isinf(result.subtask_bounds[SubtaskId(task_index, j)]):
                return False
    return True


@dataclass(frozen=True)
class LocksCell:
    """One (locking protocol, section ratio) aggregate."""

    protocol: str
    ratio: float
    systems: int
    #: Systems schedulable under blocking-aware SA/PM (all task bounds
    #: within deadlines).
    pm_schedulable: int
    #: Systems schedulable under blocking-aware SA/DS.
    ds_schedulable: int
    #: Systems simulated (finite blocking-aware PM bounds under *both*
    #: locking protocols, so the wait comparison is apples-to-apples).
    simulated: int
    #: Total measured acquire-minus-request waiting time across the
    #: simulated systems.
    measured_wait: float
    #: Lock requests that reached acquire, across the simulated systems.
    acquisitions: int


@dataclass(frozen=True)
class LocksStudyResult:
    """The full sweep: cells over locking protocols x section ratios."""

    ratios: tuple[float, ...]
    config: WorkloadConfig
    cells: dict[tuple[str, float], LocksCell]
    sampled_systems: int
    skipped_systems: int
    #: True when ratio-0 injection returned the input object, a lock
    #: manager on a section-free system reproduced the bare trace
    #: byte-for-byte under both backends, and the blocking-aware
    #: analyses matched the base bounds exactly.
    lock_free_identity: bool

    def cell(self, protocol: str, ratio: float) -> LocksCell:
        return self.cells[(protocol, ratio)]

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    @property
    def schedulability_monotone(self) -> bool:
        """Schedulable counts never rise with the section ratio."""
        for protocol in STUDY_PROTOCOLS:
            counts = [
                self.cell(protocol, ratio).pm_schedulable
                for ratio in self.ratios
            ]
            if any(b > a for a, b in zip(counts, counts[1:])):
                return False
        return True

    @property
    def ranking_demonstrated(self) -> bool:
        """DPCP's centralized queue costs measurably more waiting.

        Aggregated over every positive ratio: measured lock waits under
        DPCP dominate DPCP-p, and contention actually occurred (the
        comparison is vacuous on a sample where nobody ever waited).
        """
        positive = [ratio for ratio in self.ratios if ratio > 0]
        if not positive:
            return False
        dpcp = sum(self.cell("DPCP", r).measured_wait for r in positive)
        dpcp_p = sum(self.cell("DPCP-p", r).measured_wait for r in positive)
        return dpcp > 0 and dpcp >= dpcp_p

    @property
    def gate_passed(self) -> bool:
        """Everything CI cares about in one flag."""
        return (
            self.lock_free_identity
            and self.schedulability_monotone
            and self.ranking_demonstrated
        )

    def render(self) -> str:
        """Text table: per ratio and locking protocol, schedulable
        counts and measured waiting."""
        header = "ratio   " + "".join(
            f"{p:>26}" for p in STUDY_PROTOCOLS
        )
        lines = [
            f"locks study: {self.sampled_systems} system(s) "
            f"({self.skipped_systems} unschedulable lock-free seeds "
            f"skipped); cells show SA/PM-schedulable / sampled, "
            f"total measured wait",
            header,
        ]
        for ratio in self.ratios:
            row = f"{ratio:<8g}"
            for protocol in STUDY_PROTOCOLS:
                cell = self.cell(protocol, ratio)
                row += (
                    f"{cell.pm_schedulable:>8}/{cell.systems}"
                    f"{cell.measured_wait:>14.2f}"
                )
            lines.append(row)
        lines.append(
            "lock-free identity (both timebases): "
            + ("ok" if self.lock_free_identity else "BROKEN")
        )
        lines.append(
            "schedulability monotone in ratio: "
            + ("yes" if self.schedulability_monotone else "no")
        )
        lines.append(
            "DPCP >= DPCP-p measured waiting: "
            + ("yes" if self.ranking_demonstrated else "no")
        )
        return "\n".join(lines)


def _lock_free_identity(
    system: System, horizon_periods: float
) -> bool:
    """A lock manager on a section-free system must change nothing."""
    if (
        inject_critical_sections(system, ratio=0.0, seed=1) is not system
    ):
        return False
    base_pm = analyze_sa_pm(system)
    for protocol in STUDY_PROTOCOLS:
        locking = LockingConfig(protocol)
        aware = analyze_sa_pm_blocking(system, locking=locking)
        if aware.subtask_bounds != base_pm.subtask_bounds:
            return False
        for backend in ("float", "exact"):
            bare = simulate(
                system,
                make_controller("PM", system),
                horizon_periods=horizon_periods,
                timebase=backend,
            )
            locked = simulate(
                system,
                make_controller("PM", system),
                horizon_periods=horizon_periods,
                timebase=backend,
                locking=locking,
            )
            if (
                locked.trace.locks is not None
                or bare.trace.releases != locked.trace.releases
                or bare.trace.completions != locked.trace.completions
            ):
                return False
    return True


def run_locks_study(
    *,
    config: WorkloadConfig | None = None,
    systems: int = 5,
    base_seed: int = 0,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    horizon_periods: float = 4.0,
    timebase: str = "float",
) -> LocksStudyResult:
    """Sweep section ratios x locking protocols over sampled systems.

    Samples ``systems`` SA/PM-schedulable lock-free systems (seeds
    advance until enough accepted ones are found), injects critical
    sections at each ratio, analyzes both blocking-aware algorithms
    under both locking protocols, and simulates PM wherever the
    blocking-aware bounds are finite under *both* protocols -- the wait
    totals feeding the ranking gate therefore compare the same systems.
    """
    if systems < 1:
        raise ConfigurationError(f"systems must be >= 1, got {systems}")
    if not ratios:
        raise ConfigurationError("need at least one section ratio")
    config = config or DEFAULT_CONFIG

    sampled: list[System] = []
    skipped = 0
    seed = base_seed
    scan_limit = base_seed + 50 * systems
    while len(sampled) < systems and seed < scan_limit:
        system = generate_system(config, seed)
        if analyze_sa_pm(system).schedulable:
            sampled.append(system)
        else:
            skipped += 1
        seed += 1
    if len(sampled) < systems:
        raise ConfigurationError(
            f"found only {len(sampled)} SA/PM-schedulable system(s) in "
            f"{scan_limit - base_seed} seed(s); lower the utilization"
        )

    cells: dict[tuple[str, float], LocksCell] = {}
    for ratio in ratios:
        # Inject once per (system, ratio): both locking protocols see
        # the *same* sections and differ only in resource placement.
        locked_systems = [
            inject_critical_sections(
                system,
                ratio=ratio,
                resources=STUDY_RESOURCES,
                participation=STUDY_PARTICIPATION,
                seed=base_seed + index,
            )
            for index, system in enumerate(sampled)
        ]
        analyses = {
            protocol: [
                (
                    analyze_sa_pm_blocking(
                        system,
                        locking=LockingConfig(protocol),
                        timebase=timebase,
                    ),
                    analyze_sa_ds_blocking(
                        system,
                        locking=LockingConfig(protocol),
                        timebase=timebase,
                    ),
                )
                for system in locked_systems
            ]
            for protocol in STUDY_PROTOCOLS
        }
        runnable = [
            all(
                _pm_runnable(analyses[protocol][index][0], system)
                for protocol in STUDY_PROTOCOLS
            )
            for index, system in enumerate(locked_systems)
        ]
        for protocol in STUDY_PROTOCOLS:
            measured_wait = 0.0
            acquisitions = 0
            simulated = 0
            for index, system in enumerate(locked_systems):
                if not runnable[index]:
                    continue
                simulated += 1
                result = simulate(
                    system,
                    make_controller(
                        "PM",
                        system,
                        bounds=analyses[protocol][index][0].subtask_bounds,
                    ),
                    horizon_periods=horizon_periods,
                    timebase=timebase,
                    locking=LockingConfig(protocol),
                )
                if result.trace.locks is not None:
                    waits = result.trace.locks.waits()
                    measured_wait += sum(waits.values())
                    acquisitions += len(waits)
            cells[(protocol, ratio)] = LocksCell(
                protocol=protocol,
                ratio=ratio,
                systems=len(sampled),
                pm_schedulable=sum(
                    1
                    for sa_pm, _sa_ds in analyses[protocol]
                    if sa_pm.schedulable
                ),
                ds_schedulable=sum(
                    1
                    for _sa_pm, sa_ds in analyses[protocol]
                    if sa_ds.schedulable
                ),
                simulated=simulated,
                measured_wait=measured_wait,
                acquisitions=acquisitions,
            )

    return LocksStudyResult(
        ratios=tuple(ratios),
        config=config,
        cells=cells,
        sampled_systems=len(sampled),
        skipped_systems=skipped,
        lock_free_identity=_lock_free_identity(
            sampled[0], horizon_periods
        ),
    )
