"""The clock study: protocol robustness vs clock-synchronization quality.

The paper's qualitative claim (Sections 3.1/3.2) is that PM *requires*
synchronized clocks while MPM, RG and DS do not.  This experiment makes
the claim quantitative: every processor gets a
:class:`~repro.clocks.ResyncClock` -- an NTP-style clock that is
resynchronized to within precision ``epsilon`` every ``interval`` and
drifts in between -- and the study sweeps ``epsilon`` from 0 (perfect
synchronization) upward, measuring for each of the four protocols:

* the **deadline-miss ratio** (misses / completed instances, pooled
  over tasks and seeds), and
* the **precedence-violation count** (successor released before its
  predecessor completed).

Only systems Algorithm SA/PM *accepts* are sampled: every protocol is
guaranteed clean at ``epsilon = 0``, so anything nonzero at larger
``epsilon`` is attributable to clock quality alone.  The expected
figure: PM's curves lift off as ``epsilon`` grows past the per-subtask
slack, while DS (no timers), MPM and RG (duration-measuring timers)
stay at zero all the way -- the PM-vs-MPM/RG separation, end to end.

Run it from the CLI (``repro-rts clock-study``) or call
:func:`run_clock_study` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.clocks.config import ClockConfig
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.analysis.skew import analyze_sa_pm_skewed
from repro.core.protocols.factory import make_controller
from repro.errors import ConfigurationError
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = ["ClockStudyCell", "ClockStudyResult", "run_clock_study"]

#: Protocols the study compares, in the paper's order.
STUDY_PROTOCOLS = ("DS", "PM", "MPM", "RG")

#: Default resync-precision sweep, in time units of the workload
#: (periods 100..1000): from perfect synchronization up to the model's
#: cap of a quarter of the resync interval.
DEFAULT_PRECISIONS = (0.0, 1.0, 5.0, 10.0, 20.0)

#: Default resynchronization interval (one fastest-task period).
DEFAULT_INTERVAL = 100.0

#: Default workload: same family the skew finder searches -- moderate
#: utilization so Algorithm SA/PM accepts most seeds.
DEFAULT_CONFIG = WorkloadConfig(
    subtasks_per_task=3,
    utilization=0.6,
    tasks=4,
    processors=3,
    period_min=100.0,
    period_max=1000.0,
    period_scale=300.0,
)


@dataclass(frozen=True)
class ClockStudyCell:
    """One (protocol, precision) aggregate over the sampled systems."""

    protocol: str
    precision: float
    completed_instances: int
    deadline_misses: int
    precedence_violations: int
    systems: int
    #: Tasks whose observed max EER exceeded the *skew-inflated* SA/PM
    #: bound.  Only measured for MPM and RG (the protocols the skewed
    #: analysis covers); always 0 for DS and PM.
    bound_exceedances: int = 0

    @property
    def miss_ratio(self) -> float:
        if self.completed_instances == 0:
            return 0.0
        return self.deadline_misses / self.completed_instances


@dataclass(frozen=True)
class ClockStudyResult:
    """The full sweep: cells over protocols x precisions."""

    precisions: tuple[float, ...]
    interval: float
    config: WorkloadConfig
    cells: dict[tuple[str, float], ClockStudyCell]
    sampled_systems: int
    skipped_systems: int

    def cell(self, protocol: str, precision: float) -> ClockStudyCell:
        return self.cells[(protocol, precision)]

    @property
    def separation_demonstrated(self) -> bool:
        """True when the study's headline holds on this sample: PM
        misbehaves (misses or violations) at the largest precision,
        while MPM and RG stay within the skew-inflated SA/PM bounds
        across the whole sweep.

        Note the asymmetry of the two sides.  PM's phase table is in
        absolute local time, so *no* analysis covers it under skew.  MPM
        degrades too (its duration timers absorb resync jumps, so it
        fires up to one jump early or late), but *predictably*: the
        skew-aware analysis bounds its response times, so admission can
        still certify it.  RG and DS typically stay clean outright.
        """
        worst = self.precisions[-1]
        pm = self.cell("PM", worst)
        if pm.deadline_misses == 0 and pm.precedence_violations == 0:
            return False
        return all(
            self.cell(protocol, precision).bound_exceedances == 0
            for protocol in ("MPM", "RG")
            for precision in self.precisions
        )

    def render(self) -> str:
        """Text table: one row per precision; per protocol the miss
        ratio, precedence-violation count, and (MPM/RG) the number of
        tasks that exceeded the skew-inflated bound."""
        header = "eps      " + "".join(
            f"{p:>24}" for p in STUDY_PROTOCOLS
        )
        lines = [
            f"clock study: resync precision sweep "
            f"(interval={self.interval}, {self.sampled_systems} system(s), "
            f"{self.skipped_systems} unschedulable skipped)",
            header,
            "         " + "".join(
                f"{'miss%  viol >bnd':>24}" for _ in STUDY_PROTOCOLS
            ),
        ]
        for precision in self.precisions:
            row = f"{precision:<9g}"
            for protocol in STUDY_PROTOCOLS:
                cell = self.cells[(protocol, precision)]
                exceed = (
                    str(cell.bound_exceedances)
                    if protocol in ("MPM", "RG")
                    else "-"
                )
                row += (
                    f"{cell.miss_ratio * 100:>13.2f}"
                    f"{cell.precedence_violations:>6}"
                    f"{exceed:>5}"
                )
            lines.append(row)
        lines.append(
            "separation demonstrated: "
            + ("yes" if self.separation_demonstrated else "no")
        )
        return "\n".join(lines)


def run_clock_study(
    *,
    precisions: tuple[float, ...] = DEFAULT_PRECISIONS,
    interval: float = DEFAULT_INTERVAL,
    config: WorkloadConfig | None = None,
    systems: int = 5,
    base_seed: int = 0,
    horizon_periods: float = 5.0,
    drift_rate: float = 1e-5,
    timebase: str = "float",
) -> ClockStudyResult:
    """Sweep resync precision and measure per-protocol degradation.

    Samples ``systems`` SA/PM-schedulable systems (seeds advance until
    enough accepted ones are found, skipping the rest), then simulates
    every protocol under a :class:`ResyncClock` per precision.  A
    precision of exactly 0 uses perfect clocks (the identity baseline).
    """
    if systems < 1:
        raise ConfigurationError(f"systems must be >= 1, got {systems}")
    if not precisions:
        raise ConfigurationError("need at least one precision")
    if any(p < 0 for p in precisions):
        raise ConfigurationError(f"precisions must be >= 0: {precisions}")
    precisions = tuple(sorted(set(precisions)))
    config = config or DEFAULT_CONFIG

    sampled = []
    skipped = 0
    seed = base_seed
    # Cap the scan so an unschedulable family fails loudly, not forever.
    scan_limit = base_seed + 50 * systems
    while len(sampled) < systems and seed < scan_limit:
        system = generate_system(config, seed)
        analysis = analyze_sa_pm(system)
        if analysis.schedulable:
            sampled.append((system, analysis))
        else:
            skipped += 1
        seed += 1
    if len(sampled) < systems:
        raise ConfigurationError(
            f"found only {len(sampled)} SA/PM-schedulable system(s) in "
            f"{scan_limit - base_seed} seed(s); lower the utilization"
        )

    cells: dict[tuple[str, float], ClockStudyCell] = {}
    for precision in precisions:
        tallies = {
            protocol: [0, 0, 0, 0] for protocol in STUDY_PROTOCOLS
        }  # completed, misses, violations, bound exceedances
        for index, (system, analysis) in enumerate(sampled):
            if precision == 0:
                clock_config = None
                clock_map = None
                skewed = None
            else:
                clock_config = ClockConfig(
                    kind="resync",
                    precision=precision,
                    interval=interval,
                    rate=drift_rate,
                    seed=base_seed + index,
                )
                clock_map = clock_config.build(system.processors)
                skewed = analyze_sa_pm_skewed(
                    system, clocks=clock_config, timebase=timebase
                )
            for protocol in STUDY_PROTOCOLS:
                controller = make_controller(
                    protocol, system, bounds=analysis.subtask_bounds
                )
                result = simulate(
                    system,
                    controller,
                    horizon_periods=horizon_periods,
                    clocks=clock_map,
                    timebase=timebase,
                )
                tally = tallies[protocol]
                for i in range(len(system.tasks)):
                    task_metrics = result.metrics.task(i)
                    tally[0] += task_metrics.completed_instances
                    tally[1] += task_metrics.deadline_misses
                    if (
                        protocol in ("MPM", "RG")
                        and skewed is not None
                        and task_metrics.completed_instances
                        and not math.isinf(skewed.task_bounds[i])
                        and task_metrics.max_eer > skewed.task_bounds[i]
                    ):
                        tally[3] += 1
                tally[2] += len(result.trace.violations)
        for protocol in STUDY_PROTOCOLS:
            completed, misses, violations, exceedances = tallies[protocol]
            cells[(protocol, precision)] = ClockStudyCell(
                protocol=protocol,
                precision=precision,
                completed_instances=completed,
                deadline_misses=misses,
                precedence_violations=violations,
                systems=len(sampled),
                bound_exceedances=exceedances,
            )
    return ClockStudyResult(
        precisions=precisions,
        interval=interval,
        config=config,
        cells=cells,
        sampled_systems=len(sampled),
        skipped_systems=skipped,
    )
