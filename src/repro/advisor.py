"""Protocol selection, the paper's Section 6 advice as an API.

The paper closes with qualitative guidance: DS when chains are short,
load is light or deadlines are soft; PM/MPM when output jitter must be
small; RG otherwise -- PM-grade worst cases with DS-grade averages and
no coupling to global state.  :func:`recommend_protocol` walks that
decision with the actual analyses in hand, and returns the evidence
along with the verdict so the caller can disagree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.analysis.results import AnalysisResult
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.locks import analyze_sa_ds_blocking, analyze_sa_pm_blocking
from repro.model.system import System

__all__ = ["Recommendation", "recommend_protocol"]

#: DS is tolerated when its bounds are within this factor of SA/PM's.
_DS_BOUND_TOLERANCE = 1.5


@dataclass(frozen=True)
class Recommendation:
    """A protocol choice plus the evidence it rests on."""

    protocol: str
    rationale: str
    sa_pm: AnalysisResult
    sa_ds: AnalysisResult
    worst_bound_ratio: float

    def describe(self) -> str:
        ratio = (
            "inf"
            if math.isinf(self.worst_bound_ratio)
            else f"{self.worst_bound_ratio:.2f}"
        )
        return (
            f"recommended protocol: {self.protocol}\n"
            f"  rationale: {self.rationale}\n"
            f"  worst SA-DS/SA-PM bound ratio: {ratio}\n"
            f"  schedulable under SA/PM: {self.sa_pm.schedulable}; "
            f"under SA/DS: {self.sa_ds.schedulable}"
        )


def _worst_ratio(sa_pm: AnalysisResult, sa_ds: AnalysisResult) -> float:
    worst = 1.0
    for ds_bound, pm_bound in zip(sa_ds.task_bounds, sa_pm.task_bounds):
        if math.isinf(ds_bound):
            return math.inf
        if math.isfinite(pm_bound) and pm_bound > 0:
            worst = max(worst, ds_bound / pm_bound)
    return worst


def recommend_protocol(
    system: System,
    *,
    jitter_sensitive: bool = False,
    wcets_trusted: bool = True,
    clock_sync_available: bool = False,
    strictly_periodic_arrivals: bool = False,
    synchronized_clocks: bool | None = None,
    shared_resources: bool = False,
    sa_pm: AnalysisResult | None = None,
    sa_ds: AnalysisResult | None = None,
) -> Recommendation:
    """Choose a synchronization protocol for ``system``, paper-style.

    Parameters mirror the deployment questions of Sections 3 and 6:
    does the application care about output jitter more than average
    latency, can the WCETs be trusted (PM/MPM's timers act on them
    blindly), and does the platform offer synchronized clocks and
    strictly periodic arrivals (PM's extra requirements)?

    ``synchronized_clocks`` is the canonical name for the clock
    question (``clock_sync_available`` remains as an alias; an explicit
    ``synchronized_clocks`` wins).  When False, PM is *never*
    recommended: its phase table is an absolute local-time schedule, and
    the clock study (``repro-rts clock-study``) shows it missing
    deadlines and violating precedence under clocks that are merely
    offset -- conditions MPM and RG absorb by construction.

    ``shared_resources`` declares that subtasks contend on shared
    resources (critical sections under DPCP/DPCP-p locking, see
    :mod:`repro.locks`).  The evidence then comes from the
    blocking-aware analyses, and the combination with untrusted WCETs
    is vetoed down to RG: an overrun *inside* a critical section holds
    the lock past its analyzed duration, so every blocking bound --
    and with it DS's "cheap and close" argument -- becomes
    uncertifiable, while RG at least confines releases to real
    completions.

    Callers that already hold the analyses (e.g. the admission-control
    engine, which needs them for its own verdict) may pass them as
    ``sa_pm`` / ``sa_ds`` to avoid recomputing; both must describe
    ``system`` itself (blocking-aware variants when
    ``shared_resources`` is set).
    """
    if synchronized_clocks is None:
        synchronized_clocks = clock_sync_available
    if sa_pm is None:
        sa_pm = (
            analyze_sa_pm_blocking(system)
            if shared_resources
            else analyze_sa_pm(system)
        )
    if sa_ds is None:
        sa_ds = (
            analyze_sa_ds_blocking(system)
            if shared_resources
            else analyze_sa_ds(system)
        )
    ratio = _worst_ratio(sa_pm, sa_ds)

    if shared_resources and not wcets_trusted:
        return Recommendation(
            protocol="RG",
            rationale=(
                "WCETs are not trusted and subtasks share resources: an "
                "overrun inside a critical section holds its lock past "
                "the analyzed duration, so no blocking bound (and no "
                "DS average-case argument) is certifiable -- RG confines "
                "releases to real completions and degrades most gracefully"
            ),
            sa_pm=sa_pm,
            sa_ds=sa_ds,
            worst_bound_ratio=ratio,
        )

    if jitter_sensitive and wcets_trusted:
        if synchronized_clocks and strictly_periodic_arrivals:
            return Recommendation(
                protocol="PM",
                rationale=(
                    "output jitter dominates and the platform meets PM's "
                    "requirements (synchronized clocks, strictly periodic "
                    "arrivals); jitter is bounded by the last stage's "
                    "response bound"
                ),
                sa_pm=sa_pm,
                sa_ds=sa_ds,
                worst_bound_ratio=ratio,
            )
        return Recommendation(
            protocol="MPM",
            rationale=(
                "output jitter dominates; MPM keeps PM's jitter bound "
                "without global clocks or strict periodicity"
            ),
            sa_pm=sa_pm,
            sa_ds=sa_ds,
            worst_bound_ratio=ratio,
        )

    if not wcets_trusted:
        # Timer-based protocols violate precedence on overruns; choose
        # between the completion-triggered ones.
        if math.isinf(ratio) or ratio > _DS_BOUND_TOLERANCE:
            rationale = (
                "WCETs are not trusted (ruling out PM/MPM) and DS's "
                "bounds are much weaker than SA/PM's -- RG keeps the "
                "strong bounds while acting only on real completions"
            )
            protocol = "RG"
        else:
            rationale = (
                "WCETs are not trusted and DS's bounds stay close to "
                "SA/PM's here; DS is cheaper and faster on average"
            )
            protocol = "DS"
        return Recommendation(
            protocol=protocol,
            rationale=rationale,
            sa_pm=sa_pm,
            sa_ds=sa_ds,
            worst_bound_ratio=ratio,
        )

    if sa_ds.schedulable and ratio <= _DS_BOUND_TOLERANCE:
        return Recommendation(
            protocol="DS",
            rationale=(
                "every deadline is certifiable even under SA/DS and the "
                "bound penalty is small; DS has the lowest overhead and "
                "the best average latency (short chains / light load)"
            ),
            sa_pm=sa_pm,
            sa_ds=sa_ds,
            worst_bound_ratio=ratio,
        )

    return Recommendation(
        protocol="RG",
        rationale=(
            "DS's estimated worst cases are too weak here (long chains "
            "or high utilization); RG matches PM/MPM's bounds, keeps "
            "averages near DS's, and needs no global load information"
        ),
        sa_pm=sa_pm,
        sa_ds=sa_ds,
        worst_bound_ratio=ratio,
    )
