"""Command-line interface: ``repro-rts`` / ``python -m repro``.

Subcommands
-----------
``example2``
    The paper's Example 2 under one protocol: analysis bounds plus the
    ASCII Gantt chart of Figures 3/5/7.
``costs``
    The Section 3.3 implementation-complexity comparison.
``analyze``
    Generate one synthetic system from a (N, U) configuration and print
    both analyses.
``suite``
    The full evaluation sweep: Figures 12-16 as text surfaces.
``figure``
    One figure's surface only (12..16).
``admit``
    Admission control: decide one saved system, or a JSONL batch of
    requests, with caching, persistence and a process pool.
``admit-bench``
    Self-benchmark of the admission service: cold vs warm cache
    throughput on a synthetic batch.
``sensitivity``
    Breakdown execution-time scaling: the largest uniform factor by
    which all execution times can grow (or must shrink) while the
    system stays certifiable, per analysis.
``regions``
    Compute and print a system's parametric feasibility region: one
    verified per-subtask inner box per analysis (the structure the
    service's ``--region-backend`` tier serves O(1) admissions from).
``fuzz``
    Differential conformance fuzzing: seeded random systems through all
    four protocols, judged by the paper-derived oracle registry, with
    counterexample shrinking and corpus persistence.  ``--clocks skew``
    adds imperfect per-processor clocks to the rotation; ``--latencies``
    adds cross-processor signal delays.
``fuzz-replay``
    Replay the counterexample corpus as a regression check.
``clock-study``
    The PM-vs-MPM/RG separation study: sweep clock-resynchronization
    precision and measure per-protocol deadline misses, precedence
    violations and skew-bound exceedances.
``chaos``
    The fault-injection campaign: sweep fault scenarios (signal drop /
    duplication / reordering, timer loss, crash-restart, WCET overrun)
    over every protocol with and without the recovery layer, and gate
    on the survival separation (RG + recovery stays clean under signal
    faults; DS without recovery does not; PM/MPM lose timer chains).
``locks``
    The shared-resource study: sweep critical-section ratios under
    DPCP and DPCP-p, measure blocking-aware schedulability and lock
    waiting, and gate on the lock-free identity, schedulability
    monotonicity and the DPCP >= DPCP-p waiting separation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import json
from pathlib import Path

from repro.api import run_protocol
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.costs import PROTOCOL_COSTS
from repro.errors import ConfigurationError
from repro.experiments.evaluation import DEFAULT_PROTOCOLS
from repro.experiments.expectations import check_suite, render_report
from repro.experiments.figures import (
    bound_ratio_surface,
    eer_ratio_surface,
    failure_rate_surface,
)
from repro.experiments.runner import run_suite, sweep_grid
from repro.io import (
    analysis_result_to_dict,
    load_system,
    save_system,
    surface_to_csv,
)
from repro.service import (
    AdmissionController,
    AdmissionRequest,
    DecisionCache,
    request_from_dict,
    save_decisions_jsonl,
)
from repro.viz.gantt import render_gantt
from repro.workload.config import WorkloadConfig, paper_grid
from repro.workload.examples import example_two
from repro.workload.generator import generate_system

__all__ = ["main"]


def _add_grid_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--systems", type=int, default=10,
        help="systems per configuration (paper: 1000; default: 10)",
    )
    parser.add_argument(
        "--subtasks", type=int, nargs="+", default=[2, 3, 4, 5, 6, 7, 8],
        help="subtasks-per-task values (paper: 2..8)",
    )
    parser.add_argument(
        "--utilizations", type=float, nargs="+",
        default=[0.5, 0.6, 0.7, 0.8, 0.9],
        help="per-processor utilizations (paper: 0.5..0.9)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--horizon-periods", type=float, default=10.0,
        help="simulation horizon in multiples of the largest period",
    )
    parser.add_argument(
        "--tasks", type=int, default=12, help="tasks per system (paper: 12)"
    )
    parser.add_argument(
        "--processors", type=int, default=4,
        help="processors per system (paper: 4)",
    )
    parser.add_argument(
        "--ci", action="store_true", help="show 90%% confidence intervals"
    )
    parser.add_argument(
        "--engine", choices=("reference", "batch"), default="reference",
        help="simulation backend; 'batch' runs the flat-array kernel "
        "(trace-identical on these workloads, several times faster)",
    )


def _cmd_example2(args: argparse.Namespace) -> int:
    system = example_two()
    print(system.describe())
    print()
    print(analyze_sa_pm(system).describe())
    print()
    print(analyze_sa_ds(system).describe())
    print()
    result = run_protocol(
        system, args.protocol, horizon=args.until, record_segments=True
    )
    print(f"schedule under {args.protocol} (first {args.until:g} time units):")
    print(render_gantt(result.trace, until=args.until))
    return 0


def _cmd_costs(_args: argparse.Namespace) -> int:
    print("Section 3.3 -- implementation complexity and run-time overhead:")
    for costs in PROTOCOL_COSTS.values():
        print("  " + costs.describe())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.load is not None:
        system = load_system(args.load)
    else:
        if args.n is None or args.u is None:
            print("analyze: need --n and --u (or --load FILE)", file=sys.stderr)
            return 2
        config = WorkloadConfig(
            subtasks_per_task=args.n,
            utilization=args.u,
            tasks=args.tasks,
            processors=args.processors,
        )
        system = generate_system(config, args.seed)
    if args.save is not None:
        save_system(system, args.save)
        print(f"saved system to {args.save}", file=sys.stderr)
    print(system.describe())
    print()
    sa_pm = analyze_sa_pm(system)
    sa_ds = analyze_sa_ds(system)
    print(sa_pm.describe())
    print()
    print(sa_ds.describe())
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(
                {
                    "sa_pm": analysis_result_to_dict(sa_pm),
                    "sa_ds": analysis_result_to_dict(sa_ds),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote analysis JSON to {args.json}", file=sys.stderr)
    return 0


def _progress(line: str) -> None:
    print(line, file=sys.stderr)


def _cmd_suite(args: argparse.Namespace) -> int:
    result = run_suite(
        systems=args.systems,
        subtask_counts=tuple(args.subtasks),
        utilizations=tuple(args.utilizations),
        base_seed=args.seed,
        horizon_periods=args.horizon_periods,
        progress=_progress,
        grid_overrides={"tasks": args.tasks, "processors": args.processors},
        workers=args.workers,
        engine=args.engine,
    )
    print(result.render(show_ci=args.ci))
    if args.check:
        print()
        print(render_report(check_suite(result)))
    if args.save_evals is not None:
        from repro.io import save_evaluations

        save_evaluations(result.evaluations, args.save_evals)
        print(f"saved evaluations to {args.save_evals}", file=sys.stderr)
    if args.markdown is not None:
        from repro.experiments.report import suite_report

        Path(args.markdown).write_text(suite_report(result))
        print(f"wrote markdown report to {args.markdown}", file=sys.stderr)
    if args.csv_dir is not None:
        out = Path(args.csv_dir)
        out.mkdir(parents=True, exist_ok=True)
        for label, surface in (
            ("fig12_failure_rate", result.failure_rate),
            ("fig13_bound_ratio", result.bound_ratio),
            ("fig14_pm_ds", result.pm_ds_ratio),
            ("fig15_rg_ds", result.rg_ds_ratio),
            ("fig16_pm_rg", result.pm_rg_ratio),
        ):
            (out / f"{label}.csv").write_text(surface_to_csv(surface))
        print(f"wrote CSV surfaces to {out}", file=sys.stderr)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    analyses_only = args.number in (12, 13)
    configs = paper_grid(
        subtask_counts=tuple(args.subtasks),
        utilizations=tuple(args.utilizations),
        tasks=args.tasks,
        processors=args.processors,
        random_phases=not analyses_only,
    )
    evaluations = sweep_grid(
        configs,
        args.systems,
        base_seed=args.seed,
        progress=_progress,
        protocols=() if analyses_only else DEFAULT_PROTOCOLS,
        run_simulations=not analyses_only,
        run_analyses=analyses_only,
        horizon_periods=args.horizon_periods,
        engine=args.engine,
    )
    if args.number == 12:
        surface = failure_rate_surface(evaluations)
    elif args.number == 13:
        surface = bound_ratio_surface(evaluations)
    elif args.number == 14:
        surface = eer_ratio_surface(evaluations, "PM", "DS")
    elif args.number == 15:
        surface = eer_ratio_surface(evaluations, "RG", "DS")
    else:
        surface = eer_ratio_surface(evaluations, "PM", "RG")
    print(surface.render(show_ci=args.ci))
    return 0


def _add_admission_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocols",
        nargs="+",
        choices=("DS", "PM", "MPM", "RG"),
        default=["DS", "PM", "MPM", "RG"],
        help="candidate protocols (default: all four)",
    )
    parser.add_argument(
        "--jitter-sensitive", action="store_true",
        help="output jitter matters more than average latency",
    )
    parser.add_argument(
        "--untrusted-wcets", action="store_true",
        help="WCETs may be exceeded (rules out the timer protocols)",
    )
    parser.add_argument(
        "--clock-sync", action="store_true",
        help="the platform offers synchronized clocks",
    )
    parser.add_argument(
        "--periodic-arrivals", action="store_true",
        help="arrivals are strictly periodic",
    )
    parser.add_argument(
        "--unsynchronized-clocks", action="store_true",
        help="the platform's clocks are not synchronized (excludes PM)",
    )
    parser.add_argument(
        "--shared-resources", action="store_true",
        help="subtasks contend on shared resources (critical sections "
        "under DPCP locking); certifies with the blocking-aware analyses",
    )
    parser.add_argument(
        "--clock-rate-bound", type=float, default=0.0,
        help="max clock drift rate rho; nonzero certifies MPM/RG via the "
        "skew-inflated analysis and excludes PM",
    )
    parser.add_argument(
        "--clock-jump-bound", type=float, default=0.0,
        help="max clock resynchronization step; same effect as "
        "--clock-rate-bound",
    )
    parser.add_argument(
        "--sa-ds-max-iterations", type=int, default=300,
        help="SA/DS fixed-point iteration budget (paper: 300)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width for batch misses (default: CPU count)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None,
        help="wall-clock seconds per pooled decision; overruns are "
        "retried, then degraded to a REJECT (default: unlimited)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="resubmissions per failed/timed-out decision before it "
        "degrades (default: 2)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU decision-cache capacity (default: 4096)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="recompute every decision"
    )
    parser.add_argument(
        "--cache-file", default=None,
        help="warm-start the cache from this JSONL file and persist back",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print service metrics and cache stats to stderr",
    )
    _add_region_options(parser)


def _add_region_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--region-backend", choices=("memory", "sqlite"), default=None,
        help="enable the feasibility-region tier above the decision "
        "cache: repeat-shape admissions are served analysis-free from "
        "precomputed regions (default: off)",
    )
    parser.add_argument(
        "--region-capacity", type=int, default=1024,
        help="region-store capacity in shapes (default: 1024)",
    )
    parser.add_argument(
        "--region-file", default=None,
        help="region-store path (JSONL for memory, database for sqlite)",
    )
    parser.add_argument(
        "--region-build-threshold", type=int, default=2,
        help="direct computations of one shape before its region is "
        "built (default: 2)",
    )


def _admission_options(args: argparse.Namespace) -> dict:
    return {
        "protocols": tuple(args.protocols),
        "jitter_sensitive": args.jitter_sensitive,
        "wcets_trusted": not args.untrusted_wcets,
        "clock_sync_available": args.clock_sync,
        "strictly_periodic_arrivals": args.periodic_arrivals,
        "synchronized_clocks": not args.unsynchronized_clocks,
        "shared_resources": args.shared_resources,
        "clock_rate_bound": args.clock_rate_bound,
        "clock_jump_bound": args.clock_jump_bound,
        "sa_ds_max_iterations": args.sa_ds_max_iterations,
    }


def _make_controller(args: argparse.Namespace) -> AdmissionController:
    region_kwargs = {
        "region_backend": args.region_backend,
        "region_capacity": args.region_capacity,
        "region_path": args.region_file,
        "region_build_threshold": args.region_build_threshold,
    }
    if args.no_cache:
        return AdmissionController(enable_cache=False, **region_kwargs)
    cache = DecisionCache(capacity=args.cache_size, path=args.cache_file)
    return AdmissionController(cache=cache, **region_kwargs)


def _run_admissions(
    controller: AdmissionController,
    requests: list[AdmissionRequest],
    args: argparse.Namespace,
    *,
    progress=None,
) -> list:
    """Batch over the pool, or in-process when the region tier is on.

    The region tier lives in the controller's process; the batch path
    computes misses in pool workers that cannot observe or consult it,
    so enabling ``--region-backend`` switches to sequential in-process
    admission (where shape reuse, not parallelism, is the speedup).
    """
    if controller.regions is None:
        return controller.admit_batch(
            requests,
            workers=args.workers,
            progress=progress,
            job_timeout=args.job_timeout,
            max_retries=args.max_retries,
        )
    return [controller.admit(request) for request in requests]


def _load_admit_requests(
    path: str, options: dict
) -> list[AdmissionRequest]:
    """One request per JSONL line.

    Bare ``repro-system-v1`` lines take the command-line options; full
    ``repro-admission-request-v1`` lines carry their own.
    """
    from repro.io import system_from_dict

    requests = []
    for number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            document = json.loads(line)
            if document.get("format") == "repro-system-v1":
                requests.append(
                    AdmissionRequest(
                        system=system_from_dict(document),
                        request_id=str(number),
                        **options,
                    )
                )
            else:
                requests.append(request_from_dict(document))
        except ConfigurationError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{path}:{number}: bad request line: {exc}"
            ) from exc
    return requests


def _cmd_admit(args: argparse.Namespace) -> int:
    if (args.load is None) == (args.jsonl is None):
        print(
            "admit: need exactly one of --load FILE or --jsonl FILE",
            file=sys.stderr,
        )
        return 2
    options = _admission_options(args)
    controller = _make_controller(args)
    if args.load is not None:
        requests = [
            AdmissionRequest(system=load_system(args.load), **options)
        ]
    else:
        requests = _load_admit_requests(args.jsonl, options)
    decisions = _run_admissions(
        controller,
        requests,
        args,
        progress=_progress if args.jsonl is not None else None,
    )
    if args.out is not None:
        save_decisions_jsonl(decisions, args.out)
        print(
            f"wrote {len(decisions)} decisions to {args.out}",
            file=sys.stderr,
        )
    for decision in decisions:
        print(decision.describe())
    if controller.cache is not None and args.cache_file is not None:
        controller.cache.save()
        print(f"persisted cache to {args.cache_file}", file=sys.stderr)
    if args.stats:
        print(controller.describe(), file=sys.stderr)
    return 0


def _cmd_admit_bench(args: argparse.Namespace) -> int:
    import time

    config = WorkloadConfig(
        subtasks_per_task=args.n,
        utilization=args.u,
        tasks=args.tasks,
        processors=args.processors,
    )
    options = _admission_options(args)
    requests = [
        AdmissionRequest(
            system=generate_system(config, args.seed + offset),
            request_id=str(offset),
            **options,
        )
        for offset in range(args.systems)
    ]
    controller = _make_controller(args)
    started = time.perf_counter()
    cold = _run_admissions(controller, requests, args)
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    warm = _run_admissions(controller, requests, args)
    warm_seconds = time.perf_counter() - started
    if [d.protocol for d in cold] != [d.protocol for d in warm]:
        print("admit-bench: warm decisions diverged!", file=sys.stderr)
        return 1
    admitted = sum(1 for d in cold if d.admitted)
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"admission throughput ({args.systems} systems, "
        f"{config.label}, workers={args.workers or 'auto'}):"
    )
    print(
        f"  cold cache: {cold_seconds:.3f} s "
        f"({args.systems / cold_seconds:.1f} admissions/s)"
    )
    print(
        f"  warm cache: {warm_seconds:.3f} s "
        f"({args.systems / warm_seconds:.1f} admissions/s)"
    )
    print(f"  speedup: {speedup:.1f}x")
    print(f"  admitted: {admitted}/{args.systems}")
    if args.stats:
        print(controller.describe(), file=sys.stderr)
    return 0


def _system_from_args(args: argparse.Namespace, command: str):
    """The ``--load FILE`` / ``--n --u`` system-source convention."""
    if args.load is not None:
        return load_system(args.load)
    if args.n is None or args.u is None:
        print(
            f"{command}: need --n and --u (or --load FILE)",
            file=sys.stderr,
        )
        return None
    config = WorkloadConfig(
        subtasks_per_task=args.n,
        utilization=args.u,
        tasks=args.tasks,
        processors=args.processors,
    )
    return generate_system(config, args.seed)


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.api import sensitivity

    system = _system_from_args(args, "sensitivity")
    if system is None:
        return 2
    factors = sensitivity(
        system,
        analyses=tuple(args.analyses),
        tolerance=args.tolerance,
        max_factor=args.max_factor,
        sa_ds_max_iterations=args.sa_ds_max_iterations,
    )
    print(f"breakdown scaling for {system.name}:")
    for analysis, factor in factors.items():
        if factor <= 0:
            verdict = "unschedulable at any resolvable scale"
        elif factor >= 1:
            verdict = f"{(factor - 1) * 100:.1f}% execution-time headroom"
        else:
            verdict = (
                f"needs executions scaled below {factor * 100:.1f}% "
                "to certify"
            )
        print(f"  {analysis}: factor {factor:.4g} ({verdict})")
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(factors, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote factors JSON to {args.json}", file=sys.stderr)
    return 0


def _cmd_regions(args: argparse.Namespace) -> int:
    from repro.regions import compute_region, execution_vector, region_to_dict

    system = _system_from_args(args, "regions")
    if system is None:
        return 2
    request = AdmissionRequest(
        system=system,
        protocols=tuple(args.protocols),
        synchronized_clocks=not args.unsynchronized_clocks,
        shared_resources=args.shared_resources,
        clock_rate_bound=args.clock_rate_bound,
        clock_jump_bound=args.clock_jump_bound,
        sa_ds_max_iterations=args.sa_ds_max_iterations,
    )
    region = compute_region(
        request,
        timebase=args.timebase,
        tolerance=args.tolerance,
        max_factor=args.max_factor,
        ascent_rounds=args.ascent_rounds,
    )
    print(region.describe())
    point = tuple(float(e) for e in execution_vector(system))
    for analysis in region.analyses:
        margins = region.margins(analysis, point)
        if margins is None:
            continue
        rendered = ", ".join(
            f"{name}+{margin:g}"
            for name, margin in zip(region.dimensions, margins)
        )
        print(f"  {analysis} margins at the request point: {rendered}")
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(region_to_dict(region), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote region JSON to {args.json}", file=sys.stderr)
    return 0


def _frontend_config(args: argparse.Namespace):
    from repro.service.frontend import FrontendConfig, TenantQuota

    quota = None
    if args.quota_rate is not None:
        quota = TenantQuota(rate=args.quota_rate, burst=args.quota_burst)
    return FrontendConfig(
        shards=args.shards,
        queue_capacity=args.queue_capacity,
        executor=args.executor,
        workers_per_shard=args.workers_per_shard,
        cache_backend=None if args.no_cache else args.cache_backend,
        cache_capacity=args.cache_size,
        cache_path=args.cache_file,
        default_quota=quota,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        region_backend=args.region_backend,
        region_capacity=args.region_capacity,
        region_path=args.region_file,
        region_build_threshold=args.region_build_threshold,
        breaker_failures=args.breaker_failures,
        breaker_recovery=args.breaker_recovery,
        drain=args.drain,
        fsync=args.fsync,
    )


def _add_frontend_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=2,
        help="worker shards on the consistent-hash ring (default: 2)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=256,
        help="bounded queue depth per shard; overflow sheds (default: 256)",
    )
    parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="per-shard executor kind (default: thread)",
    )
    parser.add_argument(
        "--workers-per-shard", type=int, default=1,
        help="executor width per shard (default: 1)",
    )
    parser.add_argument(
        "--cache-backend", choices=("memory", "sqlite"), default="memory",
        help="decision-cache backend (default: memory)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096,
        help="decision-cache capacity (default: 4096)",
    )
    parser.add_argument(
        "--cache-file", default=None,
        help="cache path (JSONL for memory, database for sqlite)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="recompute every decision"
    )
    parser.add_argument(
        "--quota-rate", type=float, default=None,
        help="per-tenant token-bucket refill rate in req/s "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--quota-burst", type=float, default=32,
        help="per-tenant token-bucket depth (default: 32)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None,
        help="wall-clock seconds per decision before retry/degrade",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per failed/timed-out decision (default: 2)",
    )
    parser.add_argument(
        "--breaker-failures", type=int, default=5,
        help="consecutive compute failures that open a shard's circuit "
        "breaker; 0 disables supervision (default: 5)",
    )
    parser.add_argument(
        "--breaker-recovery", type=float, default=1.0,
        help="seconds an open breaker waits before half-open probes "
        "(default: 1.0)",
    )
    parser.add_argument(
        "--drain", choices=("flush", "shed"), default="flush",
        help="what stop() does with queued jobs: serve them (flush) or "
        "resolve them as explicit sheds (default: flush)",
    )
    parser.add_argument(
        "--fsync", choices=("always", "data", "never"), default="data",
        help="fsync policy for file-backed store snapshots "
        "(default: data)",
    )
    _add_region_options(parser)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.frontend import AdmissionFrontend, serve_frontend

    async def run() -> int:
        async with AdmissionFrontend(_frontend_config(args)) as frontend:
            server = await serve_frontend(
                frontend, host=args.host, port=args.port
            )
            address = server.sockets[0].getsockname()
            print(
                f"admission frontend on {address[0]}:{address[1]} "
                f"({args.shards} shard(s), {args.executor} executor, "
                "JSONL over TCP; Ctrl-C to stop)",
                file=sys.stderr,
            )
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                server.close()
                await server.wait_closed()
                if args.stats:
                    print(frontend.describe(), file=sys.stderr)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import LoadgenConfig, run_campaign
    from repro.workload.config import WorkloadConfig as _WC

    config = LoadgenConfig(
        requests=args.requests,
        systems=args.systems,
        seed=args.seed,
        mode=args.mode,
        concurrency=args.concurrency,
        arrival_rate=args.arrival_rate,
        tenants=tuple(args.tenants),
        workload=_WC(
            subtasks_per_task=args.n,
            utilization=args.u,
            tasks=args.tasks,
            processors=args.processors,
        ),
    )
    report = run_campaign(config, _frontend_config(args))
    print(report.render())
    if args.stats:
        frontend_snapshot = report.snapshot
        for index, shard in enumerate(frontend_snapshot["shards"]):
            print(
                f"shard {index}: {shard['requests']} requests, "
                f"{shard['cache_hits']} hits, {shard['shed']} shed, "
                f"p99 {shard['latency_p99'] * 1e3:.3f} ms",
                file=sys.stderr,
            )
    if args.rps_floor is not None and report.rps < args.rps_floor:
        print(
            f"loadgen: sustained {report.rps:,.0f} req/s is below the "
            f"floor of {args.rps_floor:,.0f} req/s",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import run_campaign

    runs = args.runs
    if runs is None and args.seconds is None:
        runs = 100  # a budget is mandatory; default to a quick sweep
    report = run_campaign(
        runs=runs,
        seconds=args.seconds,
        profile=args.profile,
        base_seed=args.seed,
        workers=args.workers,
        horizon_periods=args.horizon_periods,
        oracles=tuple(args.oracles) if args.oracles else None,
        shrink=not args.no_shrink,
        corpus_path=args.corpus,
        fail_fast=args.fail_fast,
        progress=_progress if args.verbose else None,
        timebase=args.timebase,
        clocks=args.clocks,
        latencies=tuple(args.latencies),
        faults=args.faults,
        locks=args.locks,
        engine=args.engine,
    )
    if args.stats or not report.ok:
        print(report.describe())
    else:
        print(
            f"fuzz campaign: {report.runs} run(s), 0 failure(s), "
            f"{report.elapsed:.1f} s"
        )
    return 0 if report.ok else 1


def _cmd_clock_study(args: argparse.Namespace) -> int:
    from repro.experiments.clock_study import run_clock_study

    config = None
    if args.n is not None or args.u is not None:
        if args.n is None or args.u is None:
            print(
                "clock-study: --n and --u must be given together",
                file=sys.stderr,
            )
            return 2
        config = WorkloadConfig(
            subtasks_per_task=args.n,
            utilization=args.u,
            tasks=args.tasks,
            processors=args.processors,
        )
    result = run_clock_study(
        precisions=tuple(args.precisions),
        interval=args.interval,
        config=config,
        systems=args.systems,
        base_seed=args.seed,
        horizon_periods=args.horizon_periods,
        drift_rate=args.drift_rate,
        timebase=args.timebase,
    )
    print(result.render())
    if args.require_separation and not result.separation_demonstrated:
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos_study import run_chaos_study

    result = run_chaos_study(
        systems=args.systems,
        base_seed=args.seed,
        horizon_periods=args.horizon_periods,
        timebase=args.timebase,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
    )
    print(result.render())
    if args.require_gate and not result.gate_passed:
        return 1
    return 0


def _cmd_service_chaos(args: argparse.Namespace) -> int:
    from repro.service.chaos import run_service_chaos

    report = run_service_chaos(
        requests=args.requests,
        systems=args.systems,
        seed=args.seed,
        concurrency=args.concurrency,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        workdir=args.workdir,
    )
    print(report.render())
    if args.stats:
        for result in report.results:
            for note in result.notes:
                print(f"{result.name}: {note}", file=sys.stderr)
    if args.require_gate and not report.gate_passed:
        return 1
    return 0


def _cmd_locks(args: argparse.Namespace) -> int:
    from repro.experiments.locks_study import run_locks_study

    config = None
    if args.n is not None or args.u is not None:
        if args.n is None or args.u is None:
            print(
                "locks: --n and --u must be given together",
                file=sys.stderr,
            )
            return 2
        config = WorkloadConfig(
            subtasks_per_task=args.n,
            utilization=args.u,
            tasks=args.tasks,
            processors=args.processors,
        )
    result = run_locks_study(
        config=config,
        systems=args.systems,
        base_seed=args.seed,
        ratios=tuple(args.ratios),
        horizon_periods=args.horizon_periods,
        timebase=args.timebase,
    )
    print(result.render())
    if args.require_gate and not result.gate_passed:
        return 1
    return 0


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.corpus import load_corpus, replay_corpus

    records = load_corpus(args.corpus)
    if not records:
        print(f"fuzz-replay: no corpus entries under {args.corpus}")
        return 0
    outcomes = replay_corpus(
        records, horizon_periods=args.horizon_periods
    )
    failing = [outcome for outcome in outcomes if not outcome.passed]
    for outcome in outcomes:
        if args.stats or not outcome.passed:
            print(outcome.describe())
    print(
        f"fuzz-replay: {len(outcomes)} entr(y/ies), "
        f"{len(failing)} still failing"
    )
    return 0 if not failing else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rts",
        description=(
            "Reproduction of Sun & Liu, 'Synchronization Protocols in "
            "Distributed Real-Time Systems' (ICDCS 1996)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p = subparsers.add_parser(
        "example2", help="Example 2 schedules and bounds (Figs. 3/5/7)"
    )
    p.add_argument(
        "--protocol", choices=("DS", "PM", "MPM", "RG"), default="DS"
    )
    p.add_argument("--until", type=float, default=24.0)
    p.set_defaults(handler=_cmd_example2)

    p = subparsers.add_parser("costs", help="Section 3.3 cost comparison")
    p.set_defaults(handler=_cmd_costs)

    p = subparsers.add_parser(
        "analyze", help="analyze one synthetic (N,U) or saved system"
    )
    p.add_argument("--n", type=int, default=None, help="subtasks per task")
    p.add_argument("--u", type=float, default=None, help="utilization")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tasks", type=int, default=12)
    p.add_argument("--processors", type=int, default=4)
    p.add_argument("--load", default=None, help="analyze a saved system JSON")
    p.add_argument("--save", default=None, help="save the system as JSON")
    p.add_argument("--json", default=None, help="write analysis results JSON")
    p.set_defaults(handler=_cmd_analyze)

    p = subparsers.add_parser("suite", help="reproduce Figures 12-16")
    _add_grid_options(p)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "evaluate over N worker processes (same numbers, any N); "
            "default: serial"
        ),
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="verify the paper-shape expectations on the result",
    )
    p.add_argument(
        "--csv-dir", default=None, help="also write each surface as CSV"
    )
    p.add_argument(
        "--markdown", default=None, help="write a markdown report file"
    )
    p.add_argument(
        "--save-evals",
        default=None,
        help="checkpoint the per-system evaluations as JSON",
    )
    p.set_defaults(handler=_cmd_suite)

    p = subparsers.add_parser("figure", help="reproduce one figure")
    p.add_argument("number", type=int, choices=(12, 13, 14, 15, 16))
    _add_grid_options(p)
    p.set_defaults(handler=_cmd_figure)

    p = subparsers.add_parser(
        "admit", help="admission-control a saved system or a JSONL batch"
    )
    p.add_argument(
        "--load", default=None, help="decide one saved system JSON"
    )
    p.add_argument(
        "--jsonl",
        default=None,
        help=(
            "decide a batch: one JSON document per line, each either a "
            "saved system or a full admission request"
        ),
    )
    p.add_argument(
        "--out", default=None, help="write decisions as JSONL to this file"
    )
    _add_admission_options(p)
    p.set_defaults(handler=_cmd_admit)

    p = subparsers.add_parser(
        "admit-bench",
        help="cold vs warm cache admission throughput self-benchmark",
    )
    p.add_argument(
        "--systems", type=int, default=100, help="batch size (default: 100)"
    )
    p.add_argument("--n", type=int, default=3, help="subtasks per task")
    p.add_argument("--u", type=float, default=0.6, help="utilization")
    p.add_argument("--tasks", type=int, default=8)
    p.add_argument("--processors", type=int, default=4)
    p.add_argument("--seed", type=int, default=0, help="base seed")
    _add_admission_options(p)
    p.set_defaults(handler=_cmd_admit_bench)

    p = subparsers.add_parser(
        "sensitivity",
        help="breakdown execution-time scaling per analysis",
    )
    p.add_argument(
        "--load", default=None, help="analyze a saved system JSON"
    )
    p.add_argument("--n", type=int, default=None, help="subtasks per task")
    p.add_argument("--u", type=float, default=None, help="utilization")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tasks", type=int, default=12)
    p.add_argument("--processors", type=int, default=4)
    p.add_argument(
        "--analyses", nargs="+", choices=("SA/PM", "SA/DS"),
        default=["SA/PM", "SA/DS"],
        help="analyses to price (default: both)",
    )
    p.add_argument(
        "--tolerance", type=float, default=1e-3,
        help="bisection resolution on the factor (default: 1e-3)",
    )
    p.add_argument(
        "--max-factor", type=float, default=16.0,
        help="upper cap on the searched factor (default: 16)",
    )
    p.add_argument(
        "--sa-ds-max-iterations", type=int, default=60,
        help="SA/DS fixed-point iteration budget per probe (default: 60)",
    )
    p.add_argument(
        "--json", default=None, help="write the factors as JSON"
    )
    p.set_defaults(handler=_cmd_sensitivity)

    p = subparsers.add_parser(
        "regions",
        help="compute a system's parametric feasibility region",
    )
    p.add_argument(
        "--load", default=None, help="use a saved system JSON"
    )
    p.add_argument("--n", type=int, default=None, help="subtasks per task")
    p.add_argument("--u", type=float, default=None, help="utilization")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tasks", type=int, default=12)
    p.add_argument("--processors", type=int, default=4)
    p.add_argument(
        "--protocols", nargs="+", choices=("DS", "PM", "MPM", "RG"),
        default=["DS", "PM", "MPM", "RG"],
        help="protocols the region must cover (default: all four)",
    )
    p.add_argument(
        "--unsynchronized-clocks", action="store_true",
        help="the platform's clocks are not synchronized (excludes PM)",
    )
    p.add_argument(
        "--shared-resources", action="store_true",
        help="probe with the blocking-aware analyses",
    )
    p.add_argument(
        "--clock-rate-bound", type=float, default=0.0,
        help="max clock drift rate; probes with the skew-inflated "
        "analysis",
    )
    p.add_argument(
        "--clock-jump-bound", type=float, default=0.0,
        help="max clock resynchronization step",
    )
    p.add_argument(
        "--sa-ds-max-iterations", type=int, default=300,
        help="SA/DS fixed-point iteration budget per probe (paper: 300)",
    )
    p.add_argument(
        "--timebase", choices=("float", "exact"), default="float",
        help="arithmetic backend; 'exact' yields exact rational "
        "boundaries",
    )
    p.add_argument(
        "--tolerance", type=float, default=1 / 64,
        help="relative boundary resolution (default: 1/64)",
    )
    p.add_argument(
        "--max-factor", type=float, default=16.0,
        help="per-dimension growth cap as a multiple of the request's "
        "execution times (default: 16)",
    )
    p.add_argument(
        "--ascent-rounds", type=int, default=1,
        help="coordinate-ascent sweeps after the uniform seed "
        "(0 = uniform box only; default: 1)",
    )
    p.add_argument(
        "--json", default=None, help="write the region as JSON"
    )
    p.set_defaults(handler=_cmd_regions)

    p = subparsers.add_parser(
        "serve",
        help="run the sharded async admission frontend (JSONL over TCP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8787,
        help="TCP port (default: 8787; 0 picks a free port)",
    )
    _add_frontend_options(p)
    p.add_argument(
        "--stats", action="store_true",
        help="print frontend metrics to stderr on shutdown",
    )
    p.set_defaults(handler=_cmd_serve)

    p = subparsers.add_parser(
        "loadgen",
        help="seeded open/closed-loop load campaign against the frontend",
    )
    p.add_argument(
        "--requests", type=int, default=1000,
        help="total requests to issue (default: 1000)",
    )
    p.add_argument(
        "--systems", type=int, default=32,
        help="distinct request contents sampled with replacement "
        "(default: 32)",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--mode", choices=("closed", "open", "mixed"), default="closed",
        help="arrival archetype (default: closed)",
    )
    p.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop virtual users (default: 8)",
    )
    p.add_argument(
        "--arrival-rate", type=float, default=0.0,
        help="open-loop Poisson arrival rate in req/s "
        "(0 = back-to-back)",
    )
    p.add_argument(
        "--tenants", nargs="+", default=[""],
        help="tenant names to round-robin requests across",
    )
    p.add_argument("--n", type=int, default=2, help="subtasks per task")
    p.add_argument("--u", type=float, default=0.5, help="utilization")
    p.add_argument("--tasks", type=int, default=3)
    p.add_argument("--processors", type=int, default=2)
    p.add_argument(
        "--rps-floor", type=float, default=None,
        help="exit 1 if sustained req/s lands below this floor "
        "(CI regression gate)",
    )
    _add_frontend_options(p)
    p.add_argument(
        "--stats", action="store_true",
        help="print per-shard metrics to stderr",
    )
    p.set_defaults(handler=_cmd_loadgen)

    p = subparsers.add_parser(
        "fuzz",
        help="differential conformance fuzzing with paper-derived oracles",
    )
    p.add_argument(
        "--runs", type=int, default=None,
        help="case budget (default: 100 when --seconds is not given)",
    )
    p.add_argument(
        "--seconds", type=float, default=None,
        help="wall-clock budget; combines with --runs (first exhausted wins)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: CPU count)",
    )
    p.add_argument("--seed", type=int, default=0, help="base seed")
    p.add_argument(
        "--profile", default="default",
        help="workload rotation: default, tiny, or paper",
    )
    p.add_argument(
        "--horizon-periods", type=float, default=5.0,
        help="simulation horizon in multiples of the largest period",
    )
    p.add_argument(
        "--oracles", nargs="+", default=None,
        help="check only these oracles (default: all)",
    )
    p.add_argument(
        "--timebase", choices=("float", "exact"), default="float",
        help="arithmetic backend; 'exact' judges with zero tolerance and "
        "cross-checks every case against the float backend",
    )
    p.add_argument(
        "--clocks", choices=("none", "skew"), default="none",
        help="clock rotation: 'skew' cycles imperfect per-processor "
        "clocks (offset, drift, resync) through the cases",
    )
    p.add_argument(
        "--latencies", type=float, nargs="+", default=[0.0],
        help="cross-processor signal latencies to rotate through "
        "(default: 0 only)",
    )
    p.add_argument(
        "--faults", choices=("none", "chaos"), default="none",
        help="fault rotation: 'chaos' cycles signal drop/duplicate/"
        "reorder and timer-loss environments through the cases",
    )
    p.add_argument(
        "--locks", choices=("none", "locks"), default="none",
        help="lock rotation: 'locks' cycles critical-section injections "
        "under DPCP and DPCP-p through the cases",
    )
    p.add_argument(
        "--engine", choices=("reference", "batch"), default="reference",
        help="simulation backend for every case; out-of-domain cases "
        "fall back to the reference kernel explicitly",
    )
    p.add_argument(
        "--corpus", default=None,
        help="append shrunk counterexamples to this JSONL file/directory",
    )
    p.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging of failures",
    )
    p.add_argument(
        "--fail-fast", action="store_true",
        help="stop scheduling new cases after the first failure",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print the full campaign summary even on success",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="one progress line per case to stderr",
    )
    p.set_defaults(handler=_cmd_fuzz)

    p = subparsers.add_parser(
        "fuzz-replay",
        help="replay the counterexample corpus against the current code",
    )
    p.add_argument(
        "--corpus", default="tests/corpus",
        help="corpus JSONL file or directory (default: tests/corpus)",
    )
    p.add_argument(
        "--horizon-periods", type=float, default=5.0,
        help="simulation horizon in multiples of the largest period",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print one line per corpus entry, not only failures",
    )
    p.set_defaults(handler=_cmd_fuzz_replay)

    p = subparsers.add_parser(
        "clock-study",
        help="PM-vs-MPM/RG separation under resynchronized clocks",
    )
    p.add_argument(
        "--precisions", type=float, nargs="+",
        default=[0.0, 1.0, 5.0, 10.0, 20.0],
        help="resync precisions (epsilon) to sweep; 0 = perfect clocks",
    )
    p.add_argument(
        "--interval", type=float, default=100.0,
        help="resynchronization interval (default: 100)",
    )
    p.add_argument(
        "--drift-rate", type=float, default=1e-5,
        help="clock drift rate between resynchronizations",
    )
    p.add_argument(
        "--systems", type=int, default=5,
        help="SA/PM-schedulable systems to sample (default: 5)",
    )
    p.add_argument("--seed", type=int, default=0, help="base seed")
    p.add_argument(
        "--n", type=int, default=None,
        help="subtasks per task (with --u; default: the study's workload)",
    )
    p.add_argument("--u", type=float, default=None, help="utilization")
    p.add_argument("--tasks", type=int, default=4)
    p.add_argument("--processors", type=int, default=3)
    p.add_argument(
        "--horizon-periods", type=float, default=5.0,
        help="simulation horizon in multiples of the largest period",
    )
    p.add_argument(
        "--timebase", choices=("float", "exact"), default="float",
        help="arithmetic backend",
    )
    p.add_argument(
        "--require-separation", action="store_true",
        help="exit 1 unless the separation is demonstrated on this sample",
    )
    p.set_defaults(handler=_cmd_clock_study)

    p = subparsers.add_parser(
        "chaos",
        help="fault-injection campaign over every protocol and scenario",
    )
    p.add_argument(
        "--systems", type=int, default=4,
        help="SA/PM-schedulable systems to sample (default: 4)",
    )
    p.add_argument("--seed", type=int, default=0, help="base seed")
    p.add_argument(
        "--horizon-periods", type=float, default=4.0,
        help="simulation horizon in multiples of the largest period",
    )
    p.add_argument(
        "--timebase", choices=("float", "exact"), default="float",
        help="arithmetic backend",
    )
    p.add_argument(
        "--scenarios", nargs="+", default=None,
        help="subset of scenario names to run (default: all)",
    )
    p.add_argument(
        "--require-gate", action="store_true",
        help="exit 1 unless the survival separation and the fault-free "
        "identity both hold on this sample",
    )
    p.set_defaults(handler=_cmd_chaos)

    p = subparsers.add_parser(
        "service-chaos",
        help="service-plane chaos: storage damage and shard failure "
        "with recovery oracles",
    )
    p.add_argument(
        "--requests", type=int, default=120,
        help="requests per scenario campaign (default: 120)",
    )
    p.add_argument(
        "--systems", type=int, default=24,
        help="distinct request contents (default: 24)",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop virtual users per campaign (default: 8)",
    )
    p.add_argument(
        "--scenarios", nargs="+", default=None,
        help="subset of scenario names to run (default: all)",
    )
    p.add_argument(
        "--workdir", default=None,
        help="keep damaged/quarantined artifacts here instead of a "
        "temporary directory",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print per-scenario recovery notes to stderr",
    )
    p.add_argument(
        "--require-gate", action="store_true",
        help="exit 1 unless every recovery oracle holds "
        "(salvage reported, no unsound ACCEPT, digest match, "
        "conservation exact, breaker reroute + restore)",
    )
    p.set_defaults(handler=_cmd_service_chaos)

    p = subparsers.add_parser(
        "locks",
        help="shared-resource study: DPCP vs DPCP-p over section ratios",
    )
    p.add_argument(
        "--systems", type=int, default=5,
        help="SA/PM-schedulable lock-free systems to sample (default: 5)",
    )
    p.add_argument("--seed", type=int, default=0, help="base seed")
    p.add_argument(
        "--ratios", type=float, nargs="+",
        default=[0.0, 0.1, 0.25, 0.4],
        help="critical-section duration ratios to sweep; 0 = lock-free",
    )
    p.add_argument(
        "--n", type=int, default=None,
        help="subtasks per task (with --u; default: the study's workload)",
    )
    p.add_argument("--u", type=float, default=None, help="utilization")
    p.add_argument("--tasks", type=int, default=4)
    p.add_argument("--processors", type=int, default=3)
    p.add_argument(
        "--horizon-periods", type=float, default=4.0,
        help="simulation horizon in multiples of the largest period",
    )
    p.add_argument(
        "--timebase", choices=("float", "exact"), default="float",
        help="arithmetic backend",
    )
    p.add_argument(
        "--require-gate", action="store_true",
        help="exit 1 unless the lock-free identity, schedulability "
        "monotonicity and waiting separation all hold on this sample",
    )
    p.set_defaults(handler=_cmd_locks)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
