"""One-call conveniences tying protocols, analyses and simulation together.

These are the functions a downstream user reaches for first; the
underlying pieces (:mod:`repro.core`, :mod:`repro.sim`,
:mod:`repro.workload`) stay fully usable on their own.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.clocks.config import ClockConfig
from repro.clocks.models import ClockMap
from repro.core.analysis.results import AnalysisResult
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.factory import make_controller
from repro.errors import ConfigurationError
from repro.faults import FaultConfig
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.sim.network import SignalLatencyModel
from repro.sim.simulator import SimulationResult, simulate
from repro.sim.variation import ExecutionModel, ReleaseJitterModel

__all__ = [
    "run_protocol",
    "analyze",
    "compare_protocols",
    "admit",
    "admit_many",
    "admit_service",
    "sensitivity",
    "region",
    "service_chaos",
    "fuzz_once",
]


def run_protocol(
    system: System,
    protocol: str,
    *,
    bounds: Mapping[SubtaskId, float] | None = None,
    horizon: float | None = None,
    horizon_periods: float = 20.0,
    execution_model: ExecutionModel | None = None,
    jitter_model: ReleaseJitterModel | None = None,
    latency_model: SignalLatencyModel | None = None,
    record_segments: bool = False,
    strict_precedence: bool = False,
    warmup: float = 0.0,
    clocks: ClockMap | ClockConfig | None = None,
    timebase: str = "float",
    faults: FaultConfig | None = None,
    engine: str = "reference",
) -> SimulationResult:
    """Simulate ``system`` under the named protocol (DS/PM/MPM/RG).

    PM and MPM derive their response-time bounds from Algorithm SA/PM
    unless ``bounds`` is given.  ``clocks`` assigns per-processor local
    clocks: either a ready :class:`~repro.clocks.ClockMap` or a
    :class:`~repro.clocks.ClockConfig` (instantiated over the system's
    processors).  ``faults`` arms the fault-injection plane
    (:class:`~repro.faults.FaultConfig`); the run's fault log lands on
    ``result.trace.faults`` and its summary on
    ``result.metrics.faults``.  ``engine`` selects the simulation
    backend (``"reference"`` or ``"batch"``; see
    :mod:`repro.sim.simulator` for the fallback contract).  See
    :func:`repro.sim.simulate` for the remaining knobs.
    """
    if isinstance(clocks, ClockConfig):
        clocks = clocks.build(system.processors)
    controller = make_controller(protocol, system, bounds=bounds)
    return simulate(
        system,
        controller,
        horizon=horizon,
        horizon_periods=horizon_periods,
        execution_model=execution_model,
        jitter_model=jitter_model,
        latency_model=latency_model,
        record_segments=record_segments,
        strict_precedence=strict_precedence,
        warmup=warmup,
        clocks=clocks,
        timebase=timebase,
        faults=faults,
        engine=engine,
    )


def analyze(system: System, protocol: str) -> AnalysisResult:
    """Run the schedulability analysis appropriate for a protocol.

    ``PM``, ``MPM`` and ``RG`` share Algorithm SA/PM (Theorem 1); ``DS``
    uses Algorithm SA/DS.
    """
    canonical = protocol.upper()
    if canonical in ("PM", "MPM", "RG"):
        return analyze_sa_pm(system)
    if canonical == "DS":
        return analyze_sa_ds(system)
    raise ConfigurationError(
        f"unknown protocol {protocol!r}; expected DS, PM, MPM or RG"
    )


def compare_protocols(
    system: System,
    protocols: tuple[str, ...] = ("DS", "PM", "RG"),
    **simulate_kwargs,
) -> dict[str, SimulationResult]:
    """Simulate the same system under several protocols.

    Returns results keyed by protocol name; keyword arguments are passed
    through to :func:`run_protocol` for every protocol.
    """
    return {
        protocol: run_protocol(system, protocol, **simulate_kwargs)
        for protocol in protocols
    }


def admit(system: System, **options):
    """Admission-control verdict for one system, in one call.

    Options are :class:`~repro.service.requests.AdmissionRequest`
    fields (``protocols``, ``jitter_sensitive``, ...).  This computes
    from scratch every time; sustained traffic should hold a
    :class:`~repro.service.engine.AdmissionController`, which memoizes
    decisions through a content-hash cache.  Returns an
    :class:`~repro.service.requests.AdmissionDecision`.
    """
    # Imported lazily: repro.service pulls in repro.io, whose
    # experiment-surface types import this module right back.
    from repro.service.engine import compute_decision
    from repro.service.requests import AdmissionRequest

    return compute_decision(AdmissionRequest(system=system, **options))


def admit_many(
    systems: Sequence[System] | Iterable[System],
    *,
    workers: int | None = None,
    cache=None,
    **options,
) -> list:
    """Batch admission over a process pool; decisions in input order.

    ``options`` apply to every system; pass a
    :class:`~repro.service.cache.DecisionCache` to reuse decisions
    across calls (and across duplicate systems within one call).
    """
    from repro.service.batch import admit_batch
    from repro.service.requests import AdmissionRequest

    requests = [
        AdmissionRequest(system=system, **options) for system in systems
    ]
    return admit_batch(requests, cache=cache, workers=workers)


def admit_service(
    systems: Sequence[System] | Iterable[System],
    *,
    frontend_config=None,
    **options,
) -> list:
    """Admit systems through the sharded async frontend, in one call.

    Spins up an :class:`~repro.service.frontend.AdmissionFrontend`
    (shape from ``frontend_config``, a
    :class:`~repro.service.frontend.FrontendConfig`), drives every
    request through its quota/queue/shard path, and tears it down.
    ``options`` apply to every system.  Decisions come back in input
    order; persistent deployments should hold the frontend (and its
    cache) across calls instead.
    """
    import asyncio

    from repro.service.frontend import AdmissionFrontend
    from repro.service.requests import AdmissionRequest

    requests = [
        AdmissionRequest(system=system, **options) for system in systems
    ]

    async def run() -> list:
        async with AdmissionFrontend(frontend_config) as frontend:
            return [await frontend.admit(r) for r in requests]

    return asyncio.run(run())


def service_chaos(**options):
    """Run the service-plane chaos harness, in one call.

    ``options`` are :func:`repro.service.chaos.run_service_chaos`
    keywords (``requests``, ``systems``, ``seed``, ``scenarios``,
    ``workdir``, ...).  Returns a
    :class:`~repro.service.chaos.ServiceChaosReport`; check
    ``report.gate_passed`` or print ``report.render()``.
    """
    from repro.service.chaos import run_service_chaos

    return run_service_chaos(**options)


def sensitivity(
    system: System,
    analyses: tuple[str, ...] = ("SA/PM", "SA/DS"),
    *,
    tolerance: float = 1e-3,
    max_factor: float = 16.0,
    sa_ds_max_iterations: int = 60,
) -> dict[str, float]:
    """Breakdown execution-time scaling per analysis, in one call.

    Returns ``{analysis: factor}`` where ``factor`` is the largest
    uniform execution-time scaling keeping the system certifiable under
    that analysis (see
    :func:`repro.core.analysis.sensitivity.breakdown_scaling`).  A
    factor above 1 is headroom, below 1 relative overload; the SA/PM
    versus SA/DS gap prices the protocol choice in processor-capacity
    terms.  Systems with critical sections are priced with the
    blocking-aware analyses automatically.
    """
    from repro.core.analysis.sensitivity import breakdown_scaling

    return {
        analysis: breakdown_scaling(
            system,
            analysis,
            tolerance=tolerance,
            max_factor=max_factor,
            sa_ds_max_iterations=sa_ds_max_iterations,
        )
        for analysis in analyses
    }


def region(
    system: System,
    *,
    timebase: str | None = None,
    tolerance=None,
    max_factor=None,
    ascent_rounds: int = 1,
    **options,
):
    """Compute the system's feasibility region, in one call.

    ``options`` are :class:`~repro.service.requests.AdmissionRequest`
    fields (``protocols``, ``shared_resources``, ...); they decide which
    analyses the region must cover.  Returns a
    :class:`~repro.regions.region.FeasibilityRegion` whose per-analysis
    corners span the verified inner box: any execution vector
    componentwise below a corner is certifiably schedulable under that
    analysis (see :mod:`repro.regions`).  Repeated admission against one
    shape should enable the region tier on an
    :class:`~repro.service.engine.AdmissionController` instead
    (``region_backend=``), which serves in-box requests analysis-free
    and attaches per-dimension sensitivity ``margins`` to decisions.
    """
    from repro.regions.compute import (
        DEFAULT_MAX_FACTOR,
        DEFAULT_TOLERANCE,
        compute_region,
    )
    from repro.service.requests import AdmissionRequest

    return compute_region(
        AdmissionRequest(system=system, **options),
        timebase=timebase,
        tolerance=tolerance if tolerance is not None else DEFAULT_TOLERANCE,
        max_factor=(
            max_factor if max_factor is not None else DEFAULT_MAX_FACTOR
        ),
        ascent_rounds=ascent_rounds,
    )


def fuzz_once(
    seed: int,
    *,
    config=None,
    horizon_periods: float = 5.0,
    oracles: tuple[str, ...] | None = None,
    timebase: str = "float",
):
    """One differential-fuzzing case, in one call.

    Generates the seeded system (``config`` defaults to the fuzzer's
    first default-profile configuration), simulates all four protocols,
    and judges every applicable oracle.  Returns a
    :class:`~repro.fuzz.campaign.CaseOutcome`; ``outcome.failed`` means
    some paper-derived cross-check was violated.  With
    ``timebase="exact"`` the oracles run tolerance-free and the case is
    differentially cross-checked against the float backend.  Sustained
    fuzzing should use :func:`repro.fuzz.run_campaign`, which adds
    budgets, process-pool parallelism, shrinking and corpus persistence.
    """
    # Imported lazily to keep the fuzz subsystem optional at import time.
    from repro.fuzz.campaign import PROFILES, fuzz_one

    effective = config if config is not None else PROFILES["default"][0]
    return fuzz_one(
        effective,
        seed,
        horizon_periods=horizon_periods,
        oracles=oracles,
        timebase=timebase,
    )
