"""The admission controller: analyses + advisor behind a cache.

:func:`compute_decision` is the pure decision procedure -- one SA/PM
run, one SA/DS run (the blocking-aware variants when the request
declares shared resources), a skew-inflated SA/PM run when the request
declares a clock-quality envelope, the Section 6 advisor on top -- and
:class:`AdmissionController` wraps it with content-hash memoization
(:mod:`repro.service.cache`) and observability
(:mod:`repro.service.metrics`).  The controller is what a long-running
service instantiates once and feeds every incoming request.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, Sequence

from repro.advisor import recommend_protocol
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.analysis.skew import analyze_sa_pm_skewed
from repro.locks import analyze_sa_ds_blocking, analyze_sa_pm_blocking
from repro.model.system import System
from repro.service.cache import CacheStats, DecisionCache
from repro.service.hashing import request_key
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionDecision, AdmissionRequest

__all__ = ["AdmissionController", "compute_decision"]

#: Fallback preference when the advisor's pick is unavailable: Theorem 1
#: gives RG and MPM SA/PM-grade bounds with the fewest platform
#: assumptions; DS last because its certification is the weakest.
_FALLBACK_ORDER: tuple[str, ...] = ("RG", "MPM", "PM", "DS")


def compute_decision(
    request: AdmissionRequest, *, key: str | None = None
) -> AdmissionDecision:
    """Decide one request from scratch (no cache involved).

    Deterministic: equal request content always produces an equal
    decision, which is what makes the content-hash cache sound.
    """
    system = request.system
    if request.shared_resources:
        # Blocking-aware variants: remote blocking, agent interference
        # and suspension-as-jitter deferrals under DPCP.  On a
        # section-free system they return the base results exactly, so
        # a platform merely *declaring* contention decides identically.
        sa_pm = analyze_sa_pm_blocking(system)
        sa_ds = analyze_sa_ds_blocking(
            system, max_iterations=request.sa_ds_max_iterations
        )
    else:
        sa_pm = analyze_sa_pm(system)
        sa_ds = analyze_sa_ds(
            system, max_iterations=request.sa_ds_max_iterations
        )
    per_analysis = {"SA/PM": sa_pm, "SA/DS": sa_ds}
    skewed_clocks = bool(
        request.clock_rate_bound or request.clock_jump_bound
    )
    resourceful = (
        request.shared_resources and system.has_critical_sections
    )
    sa_pm_skew = None
    if skewed_clocks and not resourceful:
        sa_pm_skew = analyze_sa_pm_skewed(
            system,
            rate=request.clock_rate_bound,
            jump=request.clock_jump_bound,
        )
        per_analysis["SA/PM-skew"] = sa_pm_skew

    def _certifies(protocol: str) -> bool:
        if protocol == "DS":
            # DS has no timers at all; clock quality is irrelevant.
            return sa_ds.schedulable
        if protocol == "PM":
            # PM's phase table is an absolute local-time schedule:
            # unsynchronized clocks break it outright, and even a
            # bounded skew envelope has no covering analysis (the
            # clock study shows offset clocks inducing misses and
            # precedence violations).
            return (
                sa_pm.schedulable
                and request.synchronized_clocks
                and not skewed_clocks
            )
        # MPM / RG measure durations: under a declared skew envelope
        # the skew-inflated bounds certify them -- except on a system
        # with critical sections, where no analysis composes the skew
        # inflation with the blocking terms; that combination is
        # uncertifiable outright.
        if skewed_clocks and resourceful:
            return False
        if sa_pm_skew is not None:
            return sa_pm_skew.schedulable
        return sa_pm.schedulable

    schedulable = {
        protocol: _certifies(protocol) for protocol in request.protocols
    }
    recommendation = recommend_protocol(
        system,
        jitter_sensitive=request.jitter_sensitive,
        wcets_trusted=request.wcets_trusted,
        clock_sync_available=request.clock_sync_available,
        strictly_periodic_arrivals=request.strictly_periodic_arrivals,
        # The advisor treats this as a veto: clocks must be claimed
        # available *and* actually synchronized (no declared skew)
        # before PM is ever recommended.
        synchronized_clocks=(
            request.clock_sync_available
            and request.synchronized_clocks
            and not skewed_clocks
        ),
        shared_resources=request.shared_resources,
        sa_pm=sa_pm,
        sa_ds=sa_ds,
    )
    certified = [p for p in request.protocols if schedulable[p]]
    if not certified:
        protocol = None
        rationale = (
            "no requested protocol certifies every deadline "
            f"(requested: {', '.join(request.protocols)})"
        )
    elif recommendation.protocol in certified:
        protocol = recommendation.protocol
        rationale = recommendation.rationale
    else:
        protocol = next(p for p in _FALLBACK_ORDER if p in certified)
        reason = (
            "is not among the requested protocols"
            if recommendation.protocol not in request.protocols
            else "does not certify every deadline here"
        )
        rationale = (
            f"advisor preferred {recommendation.protocol} but it "
            f"{reason}; falling back to {protocol}, the strongest "
            "certified requested protocol"
        )
    return AdmissionDecision(
        admitted=bool(certified),
        protocol=protocol,
        rationale=rationale,
        schedulable=schedulable,
        task_bounds={
            name: tuple(result.task_bounds)
            for name, result in per_analysis.items()
        },
        worst_bound_ratio=recommendation.worst_bound_ratio,
        key=key if key is not None else request_key(request),
        system_name=system.name,
        request_id=request.request_id,
    )


class AdmissionController:
    """Schedulability-as-a-service: decide, memoize, observe.

    Parameters
    ----------
    cache:
        A :class:`DecisionCache` to memoize through.  Omit for a fresh
        cache built from ``cache_backend``; pass ``enable_cache=False``
        to always recompute (the decisions are identical either way).
    metrics:
        A :class:`ServiceMetrics` to account into; a fresh one is made
        when omitted.
    cache_backend / cache_capacity / cache_path:
        When no ``cache`` is given, the backend to build: ``"memory"``
        (in-process LRU) or ``"sqlite"`` (WAL-mode store at
        ``cache_path``, shareable across controllers).  See
        :func:`repro.service.backends.make_cache`.
    region_backend / region_capacity / region_path /
    region_build_threshold:
        The optional region tier (:class:`repro.regions.tier.RegionTier`)
        *above* the decision cache: a ``shape_hash -> feasibility
        region`` store that serves repeat-shape admissions analysis-free
        (see :mod:`repro.regions`).  ``region_backend=None`` (the
        default) disables the tier entirely, preserving historical
        behavior byte for byte; ``"memory"``/``"sqlite"`` enable it.
        A prebuilt tier can be passed as ``region_tier`` instead.
    """

    def __init__(
        self,
        cache: DecisionCache | None = None,
        *,
        metrics: ServiceMetrics | None = None,
        enable_cache: bool = True,
        cache_backend: str = "memory",
        cache_capacity: int = 4096,
        cache_path=None,
        fsync: str = "data",
        region_tier=None,
        region_backend: str | None = None,
        region_capacity: int = 1024,
        region_path=None,
        region_build_threshold: int = 2,
    ) -> None:
        self._owns_cache = False
        self._owns_regions = False
        if cache is None and enable_cache:
            from repro.service.backends import make_cache

            cache = make_cache(
                cache_backend,
                capacity=cache_capacity,
                path=cache_path,
                fsync=fsync,
            )
            self._owns_cache = True
        self.cache = cache if enable_cache else None
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if region_tier is None and region_backend is not None:
            from repro.regions.tier import RegionTier

            region_tier = RegionTier(
                backend=region_backend,
                capacity=region_capacity,
                path=region_path,
                fsync=fsync,
                build_threshold=region_build_threshold,
                metrics=self.metrics,
            )
            self._owns_regions = True
        elif region_tier is not None and region_tier.metrics is None:
            region_tier.metrics = self.metrics
        self.regions = region_tier
        # Surface warm-start damage (salvage/quarantine) in metrics.
        for store in (
            self.cache,
            self.regions.store if self.regions is not None else None,
        ):
            if store is None:
                continue
            report = getattr(store, "last_recovery", None)
            if report is not None and not report.clean:
                self.metrics.record_recovery(
                    salvaged=report.salvaged, dropped=report.dropped
                )
            failures = getattr(store, "integrity_failures", 0)
            if failures:
                self.metrics.record_integrity_failure(failures)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close backends this controller built (idempotent).

        File-backed stores flush their snapshots; ``try/finally`` so a
        cache-close failure cannot leak the region store's connection.
        Caller-passed backends are the caller's to close.
        """
        try:
            if self._owns_cache and self.cache is not None:
                close = getattr(self.cache, "close", None)
                if close is not None:
                    close()
        finally:
            if self._owns_regions and self.regions is not None:
                self.regions.close()

    def __enter__(self) -> "AdmissionController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Single admissions
    # ------------------------------------------------------------------
    def admit(self, request: AdmissionRequest) -> AdmissionDecision:
        """Decide one request: decision cache, region tier, then compute.

        The decision cache is consulted first (exact-request hits are
        the cheapest), the region tier second (a shape hit answers
        analysis-free for any execution vector inside the verified
        box), and only then does the full analysis run -- after which
        the region tier *observes* the shape so repeating shapes earn
        a region.  Region-backed decisions are never inserted into the
        decision cache (they carry no bounds and a tier-specific
        rationale).
        """
        started = time.perf_counter()
        key = request_key(request)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                decision = replace(cached, request_id=request.request_id)
                self.metrics.record(
                    admitted=decision.admitted,
                    cache_hit=True,
                    latency=time.perf_counter() - started,
                )
                return decision
        if self.regions is not None:
            regional = self.regions.lookup(request, key=key)
            if regional is not None:
                self.metrics.record(
                    admitted=regional.admitted,
                    cache_hit=False,
                    region_hit=True,
                    latency=time.perf_counter() - started,
                )
                return regional
        decision = compute_decision(request, key=key)
        if self.cache is not None:
            self.cache.put(key, decision)
        if self.regions is not None:
            self.regions.observe(request)
        self.metrics.record(
            admitted=decision.admitted,
            cache_hit=False,
            latency=time.perf_counter() - started,
        )
        return decision

    def admit_system(self, system: System, **options) -> AdmissionDecision:
        """Decide a bare system with request options as keywords."""
        return self.admit(AdmissionRequest(system=system, **options))

    # ------------------------------------------------------------------
    # Batch admissions
    # ------------------------------------------------------------------
    def admit_batch(
        self,
        requests: Sequence[AdmissionRequest] | Iterable[AdmissionRequest],
        *,
        workers: int | None = None,
        progress=None,
        job_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> list[AdmissionDecision]:
        """Decide many requests, fanning misses over a process pool.

        See :func:`repro.service.batch.admit_batch`; this controller's
        cache and metrics are shared with the batch (so its timeout,
        retry and degraded counters land here too).
        """
        from repro.service.batch import admit_batch

        return admit_batch(
            requests,
            cache=self.cache,
            metrics=self.metrics,
            workers=workers,
            progress=progress,
            job_timeout=job_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
        )

    # ------------------------------------------------------------------
    # Observability passthroughs
    # ------------------------------------------------------------------
    def cache_stats(self) -> CacheStats | None:
        """The cache's counters, or None when caching is disabled."""
        return None if self.cache is None else self.cache.stats()

    def describe(self) -> str:
        """Metrics plus cache stats, for CLI ``--stats`` output."""
        lines = [self.metrics.describe()]
        stats = self.cache_stats()
        lines.append(
            stats.describe() if stats is not None else "cache: disabled"
        )
        if self.regions is not None:
            lines.append(self.regions.describe())
        return "\n".join(lines)
