"""Per-shard supervision: consecutive-failure circuit breakers.

A shard whose executor is crashing, wedged, or pathologically slow
turns every request routed to it into a degraded REJECT after the full
retry ladder -- paying the ladder's latency each time.  The breaker
pattern bounds that damage: after ``failure_threshold`` *consecutive*
compute failures the breaker **opens**, and the frontend routes the
shard's keyspace to its ring neighbors instead.  After
``recovery_time`` seconds the breaker admits up to ``probe_budget``
**half-open** probe requests; if a probe's computation succeeds the
breaker **closes** and the shard takes its keyspace back, if it fails
the breaker re-opens for another cooldown.

Only *computed* outcomes drive the state machine: a cache or region
hit never touches the executor, so it proves nothing about the shard's
health and must neither reset the failure streak nor count as a probe
(:meth:`CircuitBreaker.record_void` returns a half-open probe permit
that ended up not exercising the executor).

The breaker is advisory, never load-bearing for liveness: when *every*
shard's breaker is open the frontend falls back to the primary shard
anyway -- refusing all service because supervision says everything is
unhealthy would turn a detector into an outage.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["BreakerConfig", "CircuitBreaker", "BREAKER_STATES"]

#: The three classic breaker states.
BREAKER_STATES: tuple[str, ...] = ("closed", "open", "half_open")


@dataclass(frozen=True)
class BreakerConfig:
    """Shape of one shard's circuit breaker.

    ``failure_threshold`` consecutive compute failures open the
    breaker; ``0`` disables supervision entirely (no breaker is built).
    ``recovery_time`` is the open-state cooldown in seconds before
    half-open probes are admitted, ``probe_budget`` how many probes may
    be in flight at once while half-open.
    """

    failure_threshold: int = 5
    recovery_time: float = 1.0
    probe_budget: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 0:
            raise ConfigurationError(
                f"failure_threshold must be >= 0, "
                f"got {self.failure_threshold}"
            )
        if self.recovery_time <= 0 or not math.isfinite(
            self.recovery_time
        ):
            raise ConfigurationError(
                f"recovery_time must be finite and > 0, "
                f"got {self.recovery_time!r}"
            )
        if self.probe_budget < 1:
            raise ConfigurationError(
                f"probe_budget must be >= 1, got {self.probe_budget}"
            )

    @property
    def enabled(self) -> bool:
        return self.failure_threshold > 0


class CircuitBreaker:
    """One shard's health gate (thread-safe, clock injectable).

    ``on_transition(old_state, new_state)`` fires inside the lock on
    every state change -- keep it O(1) (the frontend uses it to bump
    metrics counters).
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        if not self.config.enabled:
            raise ConfigurationError(
                "failure_threshold=0 disables supervision; "
                "do not construct a breaker for it"
            )
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = 0
        self._probe_successes = 0
        # Lifetime transition counters (for metrics and oracles).
        self.opens = 0
        self.half_opens = 0
        self.closes = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        old = self._state
        self._state = new_state
        if new_state == "open":
            self.opens += 1
            self._opened_at = self._clock()
            self._probe_inflight = 0
            self._probe_successes = 0
        elif new_state == "half_open":
            self.half_opens += 1
            self._probe_successes = 0
        elif new_state == "closed":
            self.closes += 1
            self._consecutive_failures = 0
            self._probe_inflight = 0
            self._probe_successes = 0
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    def allow(self) -> bool:
        """May a request be routed to this shard right now?

        Closed: always.  Open: no, until ``recovery_time`` has elapsed
        -- then the breaker half-opens and this call consumes one probe
        permit.  Half-open: yes while probe permits remain.  A granted
        permit must be resolved by exactly one of
        :meth:`record_success` / :meth:`record_failure` /
        :meth:`record_void`.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if (
                    self._clock() - self._opened_at
                    >= self.config.recovery_time
                ):
                    self._transition("half_open")
                    self._probe_inflight = 1
                    return True
                return False
            # half_open
            if self._probe_inflight < self.config.probe_budget:
                self._probe_inflight += 1
                return True
            return False

    def record_success(self) -> None:
        """One computed decision on this shard succeeded."""
        with self._lock:
            if self._state == "closed":
                self._consecutive_failures = 0
            elif self._state == "half_open":
                self._probe_inflight = max(0, self._probe_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.probe_budget:
                    self._transition("closed")
            # open: a straggler finishing after the trip proves nothing.

    def record_failure(self) -> None:
        """One computed decision on this shard degraded/failed."""
        with self._lock:
            if self._state == "closed":
                self._consecutive_failures += 1
                if (
                    self._consecutive_failures
                    >= self.config.failure_threshold
                ):
                    self._transition("open")
            elif self._state == "half_open":
                # The probe failed: straight back to cooldown.
                self._transition("open")
            # open: already tripped.

    def record_void(self) -> None:
        """A routed request resolved without exercising the executor.

        Cache hits, region hits, coalesced waits and sheds say nothing
        about shard health; in half-open state they return the probe
        permit so a *computed* request can take it.
        """
        with self._lock:
            if self._state == "half_open":
                self._probe_inflight = max(0, self._probe_inflight - 1)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "half_opens": self.half_opens,
                "closes": self.closes,
            }

    def describe(self) -> str:
        snap = self.snapshot()
        return (
            f"breaker {snap['state']}"
            f" ({snap['opens']} open(s), {snap['closes']} restore(s))"
        )
