"""Seeded open/closed-loop load generation against the frontend.

A load generator is only useful if its numbers are comparable across
runs, so everything here is deterministic given
:class:`LoadgenConfig.seed`:

* the request population (systems drawn from the workload generator,
  tenants assigned round-robin by the same RNG),
* closed-loop issue order (workers pull from one shared sequence),
* open-loop arrival times (Poisson: exponential inter-arrival gaps
  from a seeded RNG -- the classic ``expovariate(rate)`` process).

Two archetypes, plus their mix:

``closed``
    ``concurrency`` virtual users each issue a request, await the
    decision, and immediately issue the next -- throughput is bounded
    by service latency (the feedback loop of a benchmark harness).
``open``
    requests arrive on a Poisson schedule at ``arrival_rate``/s
    regardless of completions -- the arrival process of real traffic,
    and the one that actually exercises queues and shedding.
``mixed``
    even-indexed requests arrive open-loop while closed-loop workers
    drain the odd-indexed remainder concurrently.

The :class:`LoadReport` carries per-request latency percentiles
measured *from the caller's side* (queue wait included), sustained
RPS over served decisions, shed/degraded/coalesced counters, and a
**decision digest**: a SHA-256 over the sorted (request, decision)
pairs of every non-shed decision.  Because decisions are pure
functions of request content, the digest is invariant under shard
count, worker count, executor kind, and cache backend -- the
determinism property tests pin exactly that.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.service.frontend import AdmissionFrontend, FrontendConfig
from repro.service.metrics import percentile
from repro.service.requests import AdmissionDecision, AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = [
    "LoadReport",
    "LoadgenConfig",
    "build_requests",
    "decision_digest",
    "run_campaign",
    "run_load",
]

#: Load-generation archetypes (see module docstring).
MODES: tuple[str, ...] = ("closed", "open", "mixed")

#: Default request population: small systems so the generator can
#: sustain high rates without the workload dominating the benchmark.
_DEFAULT_WORKLOAD = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)

_SHED_PREFIX = "service shed:"


@dataclass(frozen=True)
class LoadgenConfig:
    """One reproducible load campaign.

    ``systems`` distinct request contents are generated once and then
    sampled with replacement for ``requests`` total issues, so the
    cache-hit fraction is controlled by the ``systems``/``requests``
    ratio (``systems >= requests`` approximates an all-miss run).
    """

    requests: int = 1000
    systems: int = 32
    seed: int = 0
    mode: str = "closed"
    concurrency: int = 8
    arrival_rate: float = 0.0
    tenants: tuple[str, ...] = ("",)
    workload: WorkloadConfig = field(default_factory=lambda: _DEFAULT_WORKLOAD)

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.systems < 1:
            raise ConfigurationError(
                f"systems must be >= 1, got {self.systems}"
            )
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; expected one of "
                f"{'/'.join(MODES)}"
            )
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.arrival_rate < 0:
            raise ConfigurationError(
                f"arrival_rate must be >= 0, got {self.arrival_rate}"
            )
        if not self.tenants:
            raise ConfigurationError("tenants must be non-empty")


def build_requests(config: LoadgenConfig) -> list[AdmissionRequest]:
    """The deterministic request population for one campaign."""
    rng = random.Random(config.seed)
    systems = [
        generate_system(config.workload, rng.randrange(2**32))
        for _ in range(config.systems)
    ]
    return [
        AdmissionRequest(
            system=systems[rng.randrange(config.systems)],
            request_id=f"load-{index:06d}",
            tenant=config.tenants[rng.randrange(len(config.tenants))],
        )
        for index in range(config.requests)
    ]


def decision_digest(decisions: list[AdmissionDecision | None]) -> str:
    """SHA-256 over every non-shed decision, sorted by request id.

    Shed decisions are timing-dependent (they depend on queue depth
    and bucket state at arrival), so they are excluded; everything
    else is a pure function of request content and must reproduce.
    """
    digest = hashlib.sha256()
    served = [
        d
        for d in decisions
        if d is not None and not d.rationale.startswith(_SHED_PREFIX)
    ]
    for decision in sorted(served, key=lambda d: d.request_id):
        digest.update(
            (
                f"{decision.request_id}|{decision.key}|"
                f"{decision.admitted}|{decision.protocol}|"
                f"{decision.worst_bound_ratio!r}\n"
            ).encode("utf-8")
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class LoadReport:
    """What one campaign measured (latencies in seconds)."""

    issued: int
    served: int
    shed: int
    degraded: int
    admitted: int
    rejected: int
    wall: float
    rps: float
    latency_p50: float
    latency_p99: float
    latency_p999: float
    latency_max: float
    latency_mean: float
    digest: str
    snapshot: dict

    @property
    def conservation_exact(self) -> bool:
        """Every issued request is accounted for, exactly once.

        ``issued == served + shed`` and ``served == admitted +
        rejected`` (degraded decisions are REJECTs, so they are inside
        ``rejected``).  The chaos harness gates on this: a frontend
        that loses a request under faults would break it.
        """
        return (
            self.issued == self.served + self.shed
            and self.served == self.admitted + self.rejected
        )

    def render(self) -> str:
        """A compact multi-line report for CLI output."""
        lines = [
            (
                f"load: {self.issued} issued, {self.served} served, "
                f"{self.shed} shed, {self.degraded} degraded"
            ),
            (
                f"decisions: {self.admitted} admitted, "
                f"{self.rejected} rejected"
            ),
            (
                f"throughput: {self.rps:,.0f} req/s sustained over "
                f"{self.wall:.3f} s"
            ),
            (
                f"latency: p50 {self.latency_p50 * 1e3:.3f} ms, "
                f"p99 {self.latency_p99 * 1e3:.3f} ms, "
                f"p999 {self.latency_p999 * 1e3:.3f} ms, "
                f"max {self.latency_max * 1e3:.3f} ms"
            ),
            f"digest: {self.digest[:16]}",
        ]
        if not self.conservation_exact:
            lines.append(
                "conservation: BROKEN (issued != served + shed) -- "
                "requests were lost"
            )
        cache = self.snapshot.get("cache")
        if cache is not None:
            lines.insert(
                2,
                (
                    f"cache: {cache['hits']} hits, "
                    f"{cache['misses']} misses, "
                    f"{cache['coalesced']} coalesced"
                ),
            )
        return "\n".join(lines)


async def run_load(
    frontend: AdmissionFrontend, config: LoadgenConfig
) -> LoadReport:
    """Drive one campaign against a **started** frontend."""
    requests = build_requests(config)
    decisions: list[AdmissionDecision | None] = [None] * len(requests)
    latencies: list[float] = [0.0] * len(requests)

    async def issue(index: int) -> None:
        begun = time.perf_counter()
        decisions[index] = await frontend.admit(requests[index])
        latencies[index] = time.perf_counter() - begun

    async def closed_loop(indices: list[int]) -> None:
        cursor = iter(indices)

        async def worker() -> None:
            for index in cursor:  # single loop: no racing iterators
                await issue(index)

        await asyncio.gather(
            *(worker() for _ in range(config.concurrency))
        )

    async def open_loop(indices: list[int]) -> None:
        rng = random.Random(config.seed + 1)
        inflight = []
        for index in indices:
            if config.arrival_rate > 0:
                await asyncio.sleep(
                    rng.expovariate(config.arrival_rate)
                )
            inflight.append(asyncio.ensure_future(issue(index)))
        await asyncio.gather(*inflight)

    started = time.perf_counter()
    if config.mode == "closed":
        await closed_loop(list(range(len(requests))))
    elif config.mode == "open":
        await open_loop(list(range(len(requests))))
    else:  # mixed
        await asyncio.gather(
            open_loop(list(range(0, len(requests), 2))),
            closed_loop(list(range(1, len(requests), 2))),
        )
    wall = time.perf_counter() - started

    shed = sum(
        1
        for d in decisions
        if d is not None and d.rationale.startswith(_SHED_PREFIX)
    )
    served = [
        d
        for d in decisions
        if d is not None and not d.rationale.startswith(_SHED_PREFIX)
    ]
    served_latencies = [
        latency
        for latency, decision in zip(latencies, decisions)
        if decision is not None
        and not decision.rationale.startswith(_SHED_PREFIX)
    ]
    aggregate = frontend.metrics.snapshot()
    return LoadReport(
        issued=len(requests),
        served=len(served),
        shed=shed,
        degraded=aggregate["degraded"],
        admitted=sum(1 for d in served if d.admitted),
        rejected=sum(1 for d in served if not d.admitted),
        wall=wall,
        rps=len(served) / wall if wall > 0 else 0.0,
        latency_p50=percentile(served_latencies, 0.50),
        latency_p99=percentile(served_latencies, 0.99),
        latency_p999=percentile(served_latencies, 0.999),
        latency_max=max(served_latencies) if served_latencies else 0.0,
        latency_mean=(
            sum(served_latencies) / len(served_latencies)
            if served_latencies
            else 0.0
        ),
        digest=decision_digest(decisions),
        snapshot=frontend.snapshot(),
    )


def run_campaign(
    config: LoadgenConfig,
    frontend_config: FrontendConfig | None = None,
    *,
    cache=None,
) -> LoadReport:
    """Build a frontend, run one campaign, tear it down (sync shell)."""

    async def campaign() -> LoadReport:
        async with AdmissionFrontend(
            frontend_config, cache=cache
        ) as frontend:
            return await run_load(frontend, config)

    return asyncio.run(campaign())
