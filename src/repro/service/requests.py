"""Admission requests and decisions, with JSON codecs.

An :class:`AdmissionRequest` is the service's unit of work: one
:class:`~repro.model.system.System` plus the analysis/advisor options
that influence the verdict.  An :class:`AdmissionDecision` is the
answer: whether the system is admissible at all, under which of the
requested protocols, and which protocol the advisor recommends.

Decisions are pure functions of the request *content* (everything the
cache key of :mod:`repro.service.hashing` covers); ``request_id`` is
caller metadata, echoed back for correlation but excluded from the key,
so cached and freshly computed decisions for the same content are
identical.

Codecs build on :mod:`repro.io` (systems round-trip via
``system_to_dict``; infinite bounds encode as ``"inf"``) and add JSONL
helpers for batch traffic.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.io import (
    decode_bound,
    encode_bound,
    system_from_dict,
    system_to_dict,
)
from repro.model.system import System

__all__ = [
    "ALL_PROTOCOLS",
    "AdmissionRequest",
    "AdmissionDecision",
    "request_to_dict",
    "request_from_dict",
    "decision_to_dict",
    "decision_from_dict",
    "load_requests_jsonl",
    "save_decisions_jsonl",
    "load_decisions_jsonl",
]

#: Canonical protocol order, as introduced by the paper.
ALL_PROTOCOLS: tuple[str, ...] = ("DS", "PM", "MPM", "RG")

_REQUEST_FORMAT = "repro-admission-request-v1"
_DECISION_FORMAT = "repro-admission-decision-v1"
_SYSTEM_FORMAT = "repro-system-v1"


@dataclass(frozen=True)
class AdmissionRequest:
    """One "may this system run here, and under which protocol?" query.

    Attributes
    ----------
    system:
        The candidate system.
    protocols:
        The protocols the deployment could actually use (subset of
        DS/PM/MPM/RG); admission succeeds when at least one of them
        certifies every deadline.
    jitter_sensitive / wcets_trusted / clock_sync_available /
    strictly_periodic_arrivals:
        The advisor's deployment questions, passed straight to
        :func:`repro.advisor.recommend_protocol`.
    synchronized_clocks:
        Whether the platform's clocks are synchronized at all.  When
        False, PM is excluded from certification outright -- its phase
        table is an absolute local-time schedule and no analysis covers
        it under unsynchronized clocks (see the clock study).
    clock_rate_bound / clock_jump_bound:
        Declared clock-quality envelope: maximum drift rate ``rho``
        (|dL/dt - 1|) and maximum resynchronization step.  When either
        is nonzero, MPM/RG certification uses the skew-inflated SA/PM
        analysis (:func:`repro.core.analysis.skew.analyze_sa_pm_skewed`)
        and PM is excluded (epsilon-synchronized is not synchronized
        enough for an absolute phase table).
    shared_resources:
        Whether the deployment's tasks contend on shared resources
        (critical sections under DPCP/DPCP-p locking).  Implied True
        whenever the system itself declares critical sections;
        declaring it on a section-free system marks a platform whose
        workload *will* contend even though this description does not.
        Certification then uses the blocking-aware analyses and the
        advisor vetoes combinations they cannot cover.
    sa_ds_max_iterations:
        Iteration budget of the SA/DS fixed point (the paper's 300).
    request_id:
        Free-form caller tag.  Echoed on the decision, excluded from
        the cache key.
    tenant:
        The submitting tenant, for the frontend's per-tenant quotas
        (empty = the anonymous default tenant).  Like ``request_id`` it
        is caller metadata, not decision content: it is excluded from
        the cache key, so two tenants submitting identical systems
        share one cached decision.
    """

    system: System
    protocols: tuple[str, ...] = ALL_PROTOCOLS
    jitter_sensitive: bool = False
    wcets_trusted: bool = True
    clock_sync_available: bool = False
    strictly_periodic_arrivals: bool = False
    synchronized_clocks: bool = True
    clock_rate_bound: float = 0.0
    clock_jump_bound: float = 0.0
    shared_resources: bool = False
    sa_ds_max_iterations: int = 300
    request_id: str = ""
    tenant: str = ""

    def __post_init__(self) -> None:
        canonical = tuple(p.upper() for p in self.protocols)
        unknown = [p for p in canonical if p not in ALL_PROTOCOLS]
        if unknown:
            raise ConfigurationError(
                f"unknown protocol(s) {unknown!r}; expected a subset of "
                f"{'/'.join(ALL_PROTOCOLS)}"
            )
        if not canonical:
            raise ConfigurationError(
                "an admission request needs at least one candidate protocol"
            )
        # Deduplicate while keeping the paper's canonical order so that
        # ("RG", "DS") and ("DS", "RG") hash and decide identically.
        object.__setattr__(
            self,
            "protocols",
            tuple(p for p in ALL_PROTOCOLS if p in canonical),
        )
        if self.sa_ds_max_iterations < 1:
            raise ConfigurationError(
                f"sa_ds_max_iterations must be >= 1, "
                f"got {self.sa_ds_max_iterations}"
            )
        if not (0 <= self.clock_rate_bound < 1) or not math.isfinite(
            self.clock_rate_bound
        ):
            raise ConfigurationError(
                f"clock_rate_bound must be in [0, 1), "
                f"got {self.clock_rate_bound!r}"
            )
        if self.clock_jump_bound < 0 or not math.isfinite(
            self.clock_jump_bound
        ):
            raise ConfigurationError(
                f"clock_jump_bound must be finite and >= 0, "
                f"got {self.clock_jump_bound!r}"
            )
        # A system that declares critical sections is a shared-resource
        # deployment whether or not the caller said so; normalizing here
        # keeps the cache key and the decision logic in agreement.
        if self.system.has_critical_sections and not self.shared_resources:
            object.__setattr__(self, "shared_resources", True)

    def with_request_id(self, request_id: str) -> "AdmissionRequest":
        """Copy of this request with only the caller tag replaced."""
        return replace(self, request_id=request_id)


@dataclass(frozen=True)
class AdmissionDecision:
    """The service's answer to one :class:`AdmissionRequest`.

    Attributes
    ----------
    admitted:
        True when at least one requested protocol certifies every
        deadline.
    protocol:
        The protocol to deploy (``None`` when rejected): the advisor's
        recommendation when that protocol is requested and certified,
        otherwise the strongest certified requested protocol.
    rationale:
        Why, in the advisor's words (plus a fallback note when the
        recommendation had to be overridden).
    schedulable:
        Per requested protocol: does its analysis certify every task?
    task_bounds:
        End-to-end bounds per algorithm (``"SA/PM"``, ``"SA/DS"``),
        ``math.inf`` for diverged bounds.
    worst_bound_ratio:
        The advisor's worst SA-DS/SA-PM task-bound ratio (``inf`` on
        region-tier decisions, which run no analysis).
    key:
        The content hash the decision was computed (and cached) under.
    system_name / request_id:
        Echoes of the request, for correlation.
    margins:
        Sensitivity output, present only on region-tier decisions
        (:mod:`repro.regions.tier`): per analysis, per subtask, how
        much that execution time can grow -- all else fixed -- before
        the request leaves the verified feasibility region and
        admission falls back to direct analysis.  ``None`` on computed
        decisions, and omitted from the JSON codecs when ``None`` so
        every historical decision document (and the load generator's
        deployment-invariant digest) stays byte-identical.
    """

    admitted: bool
    protocol: str | None
    rationale: str
    schedulable: Mapping[str, bool]
    task_bounds: Mapping[str, tuple[float, ...]]
    worst_bound_ratio: float
    key: str
    system_name: str = "system"
    request_id: str = ""
    margins: Mapping[str, Mapping[str, float]] | None = None

    def describe(self) -> str:
        """One-paragraph human-readable summary for CLI output."""
        verdict = (
            f"ADMIT under {self.protocol}" if self.admitted else "REJECT"
        )
        per_protocol = ", ".join(
            f"{p}={'ok' if ok else 'FAIL'}"
            for p, ok in self.schedulable.items()
        )
        lines = [
            f"{self.system_name}: {verdict}",
            f"  per-protocol: {per_protocol}",
            f"  rationale: {self.rationale}",
        ]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Dict codecs
# ---------------------------------------------------------------------------


def request_to_dict(request: AdmissionRequest) -> dict[str, Any]:
    """A JSON-ready description of a request (lossless)."""
    return {
        "format": _REQUEST_FORMAT,
        "system": system_to_dict(request.system),
        "protocols": list(request.protocols),
        "jitter_sensitive": request.jitter_sensitive,
        "wcets_trusted": request.wcets_trusted,
        "clock_sync_available": request.clock_sync_available,
        "strictly_periodic_arrivals": request.strictly_periodic_arrivals,
        "synchronized_clocks": request.synchronized_clocks,
        "clock_rate_bound": request.clock_rate_bound,
        "clock_jump_bound": request.clock_jump_bound,
        "shared_resources": request.shared_resources,
        "sa_ds_max_iterations": request.sa_ds_max_iterations,
        "request_id": request.request_id,
        "tenant": request.tenant,
    }


def request_from_dict(data: Mapping[str, Any]) -> AdmissionRequest:
    """Rebuild a request from :func:`request_to_dict` output.

    A bare ``repro-system-v1`` document is accepted too (all options at
    their defaults), so a file of saved systems is already a valid
    request stream.
    """
    if data.get("format") == _SYSTEM_FORMAT:
        return AdmissionRequest(system=system_from_dict(dict(data)))
    if data.get("format") != _REQUEST_FORMAT:
        raise ConfigurationError(
            f"not a {_REQUEST_FORMAT} document "
            f"(format={data.get('format')!r})"
        )
    return AdmissionRequest(
        system=system_from_dict(data["system"]),
        protocols=tuple(data.get("protocols", ALL_PROTOCOLS)),
        jitter_sensitive=bool(data.get("jitter_sensitive", False)),
        wcets_trusted=bool(data.get("wcets_trusted", True)),
        clock_sync_available=bool(data.get("clock_sync_available", False)),
        strictly_periodic_arrivals=bool(
            data.get("strictly_periodic_arrivals", False)
        ),
        synchronized_clocks=bool(data.get("synchronized_clocks", True)),
        clock_rate_bound=float(data.get("clock_rate_bound", 0.0)),
        clock_jump_bound=float(data.get("clock_jump_bound", 0.0)),
        shared_resources=bool(data.get("shared_resources", False)),
        sa_ds_max_iterations=int(data.get("sa_ds_max_iterations", 300)),
        request_id=str(data.get("request_id", "")),
        tenant=str(data.get("tenant", "")),
    )


def decision_to_dict(decision: AdmissionDecision) -> dict[str, Any]:
    """A JSON-ready description of a decision (lossless)."""
    document = {
        "format": _DECISION_FORMAT,
        "admitted": decision.admitted,
        "protocol": decision.protocol,
        "rationale": decision.rationale,
        "schedulable": dict(decision.schedulable),
        "task_bounds": {
            algorithm: [encode_bound(b) for b in bounds]
            for algorithm, bounds in decision.task_bounds.items()
        },
        "worst_bound_ratio": encode_bound(decision.worst_bound_ratio),
        "key": decision.key,
        "system_name": decision.system_name,
        "request_id": decision.request_id,
    }
    if decision.margins is not None:
        document["margins"] = {
            analysis: dict(per_dim)
            for analysis, per_dim in decision.margins.items()
        }
    return document


def decision_from_dict(data: Mapping[str, Any]) -> AdmissionDecision:
    """Rebuild a decision from :func:`decision_to_dict` output."""
    if data.get("format") != _DECISION_FORMAT:
        raise ConfigurationError(
            f"not a {_DECISION_FORMAT} document "
            f"(format={data.get('format')!r})"
        )
    return AdmissionDecision(
        admitted=bool(data["admitted"]),
        protocol=data["protocol"],
        rationale=str(data["rationale"]),
        # Restore the paper's canonical protocol order (JSON round-trips
        # with sorted keys); unknown keys keep their file order at the end.
        schedulable={
            str(p): bool(data["schedulable"][p])
            for p in (
                [q for q in ALL_PROTOCOLS if q in data["schedulable"]]
                + [q for q in data["schedulable"] if q not in ALL_PROTOCOLS]
            )
        },
        task_bounds={
            str(algorithm): tuple(decode_bound(b) for b in bounds)
            for algorithm, bounds in data["task_bounds"].items()
        },
        worst_bound_ratio=decode_bound(data["worst_bound_ratio"]),
        key=str(data["key"]),
        system_name=str(data.get("system_name", "system")),
        request_id=str(data.get("request_id", "")),
        margins=(
            None
            if data.get("margins") is None
            else {
                str(analysis): {
                    str(name): float(value)
                    for name, value in per_dim.items()
                }
                for analysis, per_dim in data["margins"].items()
            }
        ),
    )


# ---------------------------------------------------------------------------
# JSONL batch traffic
# ---------------------------------------------------------------------------


def load_requests_jsonl(path: str | Path) -> list[AdmissionRequest]:
    """Read one request per line (request or bare system documents)."""
    requests = []
    for number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            requests.append(request_from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{path}:{number}: bad admission request line: {exc}"
            ) from exc
    return requests


def save_decisions_jsonl(
    decisions: Iterable[AdmissionDecision], path: str | Path
) -> None:
    """Write one decision per line, in the given order."""
    lines = [
        json.dumps(decision_to_dict(decision), sort_keys=True)
        for decision in decisions
    ]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_decisions_jsonl(path: str | Path) -> list[AdmissionDecision]:
    """Inverse of :func:`save_decisions_jsonl`."""
    return [
        decision_from_dict(json.loads(line))
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
