"""Canonical content hashing of admission requests.

The decision cache must key on request *content*: the same system and
options must map to the same key in every process, on every run, on
every machine.  Python's built-in ``hash()`` offers none of that (it is
salted per process for strings and identity-ish for many objects), so
keys here are SHA-256 digests of a canonical JSON encoding:

* systems serialize through :func:`repro.io.system_to_dict`, which is
  lossless and positional (task order is significant in the model, so
  it is significant in the key);
* the option fields are emitted under fixed names;
* ``json.dumps`` runs with sorted keys and fixed separators, and floats
  serialize via ``repr``, which is exact for IEEE doubles -- two equal
  systems built independently hash equally, two systems differing in
  any execution time, period, phase, priority, placement or name do
  not;
* exact-timebase values (``fractions.Fraction``) canonicalize through
  :func:`repro.timebase.canonical_number` -- gcd-reduced ``"num/den"``
  strings, integral rationals collapsing to ints -- so a system touched
  by exact arithmetic keys stably too.  Plain floats never reach that
  path (``default=`` fires only for non-JSON types), keeping every
  historical float key byte-identical.

``request_id`` and ``tenant`` are deliberately excluded: they are
caller metadata (correlation tag, quota principal), not decision
content -- two tenants submitting identical systems share one cached
decision, and the sharded frontend routes them to the same shard.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.io import system_to_dict
from repro.model.system import System
from repro.service.requests import AdmissionRequest
from repro.timebase import canonical_number

__all__ = [
    "KEY_FORMAT",
    "KEY_FORMAT_V3",
    "canonical_payload",
    "request_key",
    "system_key",
]

#: Version tag baked into every key; bump when the payload shape changes
#: so stale persisted caches miss instead of serving wrong answers.
#: v2: clock-quality fields (synchronized_clocks, clock_rate_bound,
#: clock_jump_bound) joined the decision content.
KEY_FORMAT = "repro-admission-key-v2"

#: Shared-resource requests key under v3: the payload gains the
#: ``shared_resources`` flag (and the system document carries the
#: critical sections), so a v2 cache entry -- computed by the base,
#: blocking-unaware analyses -- can never be silently served for a
#: resourceful task set.  Resource-free requests keep their exact v2
#: payload, so every historical key stays byte-identical.
KEY_FORMAT_V3 = "repro-admission-key-v3"


def canonical_payload(request: AdmissionRequest) -> dict[str, Any]:
    """The exact dictionary that gets hashed (useful for debugging)."""
    resourceful = (
        request.shared_resources or request.system.has_critical_sections
    )
    payload: dict[str, Any] = {
        "format": KEY_FORMAT_V3 if resourceful else KEY_FORMAT,
        "system": system_to_dict(request.system),
        "protocols": list(request.protocols),
        "jitter_sensitive": request.jitter_sensitive,
        "wcets_trusted": request.wcets_trusted,
        "clock_sync_available": request.clock_sync_available,
        "strictly_periodic_arrivals": request.strictly_periodic_arrivals,
        "synchronized_clocks": request.synchronized_clocks,
        "clock_rate_bound": request.clock_rate_bound,
        "clock_jump_bound": request.clock_jump_bound,
        "sa_ds_max_iterations": request.sa_ds_max_iterations,
    }
    if resourceful:
        payload["shared_resources"] = request.shared_resources
    return payload


def _canonical_default(value: Any) -> Any:
    """Serialize non-JSON scalars (exact-timebase rationals) stably."""
    canonical = canonical_number(value)
    if canonical is value:  # not a rational -- genuinely unserializable
        raise TypeError(
            f"cannot canonicalize {type(value).__name__!r} for hashing"
        )
    return canonical


def request_key(request: AdmissionRequest) -> str:
    """The SHA-256 hex digest identifying a request's content."""
    encoded = json.dumps(
        canonical_payload(request),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        default=_canonical_default,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def system_key(system: System, **options) -> str:
    """Shorthand: the key of ``AdmissionRequest(system, **options)``."""
    return request_key(AdmissionRequest(system=system, **options))
