"""Crash-safe persistence primitives for the service state stores.

The decision cache and the region store persist as JSONL and sqlite
files, and until this module existed a torn append, a truncated file or
a corrupted sqlite page either raised mid-load (losing the *entire*
store) or -- worse -- went unnoticed.  This module gives every
persistence path the same three guarantees:

**Checksummed record framing.**  :func:`frame_line` wraps one JSON
document as ``#repro:crc32:v1:<crc-hex> <body>``; :func:`unframe_line`
verifies the CRC and raises :class:`FrameError` on any mismatch, so a
record that was torn mid-write is *detected*, never half-parsed.  Bare
lines (no frame prefix) are accepted as legacy records -- every file
written before framing still loads.

**Salvage-on-load.**  :func:`load_jsonl_salvaging` applies valid
records in order and stops at the first torn/corrupt one, keeping the
valid prefix and reporting a structured :class:`RecoveryReport`
(records loaded, records dropped, where, why) instead of raising.
This mirrors how write-ahead logs recover: everything before the tear
is good by construction (appends are ordered), everything after it is
suspect.  A *parseable* record of a foreign format still raises --
pointing a cache at the wrong file is a configuration error, not
storage damage, and salvaging it would hide the bug.

**Atomic replace + fsync policy.**  :func:`atomic_write_text` writes
to a temp file in the target directory and ``os.replace``s it over the
target, so a crash mid-snapshot leaves the previous complete snapshot
intact (the classic write-temp-then-rename).  The fsync policy is
explicit: ``"always"`` (fsync file and directory -- survives power
loss), ``"data"`` (fsync the file only -- survives process crash, the
default), ``"never"`` (fastest; rely on the page cache).

For sqlite backends, :func:`open_sqlite_checked` runs ``PRAGMA
integrity_check`` on open and, on any corruption, quarantines the
damaged database (and its ``-wal``/``-shm`` siblings) under a
``.quarantined-N`` suffix and reconnects to a fresh file -- the caller
then rebuilds from its JSONL snapshot via ``rebuild_from``.  Nothing is
deleted: a quarantined file is evidence, not garbage.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "FSYNC_POLICIES",
    "FrameError",
    "RecoveryReport",
    "atomic_write_text",
    "frame_line",
    "load_jsonl_salvaging",
    "open_sqlite_checked",
    "quarantine_sqlite",
    "unframe_line",
]

logger = logging.getLogger("repro.service.durability")

#: Recognized fsync policies for :func:`atomic_write_text`.
FSYNC_POLICIES: tuple[str, ...] = ("always", "data", "never")

#: Frame prefix: version is part of the prefix so a future v2 frame is
#: unambiguous, and the leading ``#`` guarantees a framed line can never
#: parse as the bare-JSON legacy format by accident.
_FRAME_PREFIX = "#repro:crc32:v1:"
_CRC_WIDTH = 8  # zlib.crc32 as fixed-width lowercase hex


class FrameError(ValueError):
    """A framed line whose checksum or structure does not verify."""


def frame_line(body: str) -> str:
    """Wrap one JSON document line in the CRC32 frame."""
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{_FRAME_PREFIX}{crc:0{_CRC_WIDTH}x} {body}"


def unframe_line(line: str) -> tuple[str, bool]:
    """``(body, framed?)`` for one persisted line.

    Framed lines are CRC-verified (:class:`FrameError` on mismatch or a
    malformed frame); bare lines pass through as legacy records -- their
    only integrity check is JSON parseability at the caller.
    """
    if not line.startswith(_FRAME_PREFIX):
        return line, False
    rest = line[len(_FRAME_PREFIX):]
    if len(rest) < _CRC_WIDTH + 1 or rest[_CRC_WIDTH] != " ":
        raise FrameError(f"malformed frame header: {line[:40]!r}")
    try:
        expected = int(rest[:_CRC_WIDTH], 16)
    except ValueError as exc:
        raise FrameError(f"bad frame checksum field: {line[:40]!r}") from exc
    body = rest[_CRC_WIDTH + 1:]
    actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise FrameError(
            f"checksum mismatch: expected {expected:08x}, "
            f"got {actual:08x} (torn write?)"
        )
    return body, True


@dataclass(frozen=True)
class RecoveryReport:
    """What one load salvaged, structured for metrics and ``--stats``.

    ``loaded`` records were applied; ``dropped`` records (from
    ``first_bad_line`` on, for JSONL) were discarded as torn or
    corrupt.  ``quarantined`` names the path a corrupt sqlite database
    was moved to, when that is how the damage was handled.
    """

    path: str
    kind: str  # "jsonl" | "sqlite"
    loaded: int
    dropped: int = 0
    first_bad_line: int | None = None
    reason: str | None = None
    quarantined: str | None = None

    @property
    def clean(self) -> bool:
        """True when nothing was dropped or quarantined."""
        return self.dropped == 0 and self.quarantined is None

    @property
    def salvaged(self) -> int:
        """Records recovered *despite damage* (0 for a clean load)."""
        return 0 if self.clean else self.loaded

    def describe(self) -> str:
        if self.clean:
            return f"{self.path}: clean load, {self.loaded} record(s)"
        parts = [
            f"{self.path}: salvaged {self.loaded} record(s), "
            f"dropped {self.dropped}"
        ]
        if self.first_bad_line is not None:
            parts.append(f"first bad line {self.first_bad_line}")
        if self.quarantined is not None:
            parts.append(f"quarantined to {self.quarantined}")
        if self.reason:
            parts.append(self.reason)
        return "; ".join(parts)


def load_jsonl_salvaging(
    path: str | Path,
    *,
    expected_format: str,
    apply: Callable[[dict], None],
    label: str = "record",
) -> RecoveryReport:
    """Load a JSONL store file, salvaging the valid prefix of a tear.

    Each non-blank line is unframed (CRC-checked when framed), JSON
    parsed, format-checked and handed to ``apply``.  The first line
    that fails the CRC or does not parse ends the load: every line
    before it is kept, it and everything after it are dropped, and the
    :class:`RecoveryReport` says so (a warning is logged too).  That is
    exactly the crash-mid-append case -- appends are ordered, so the
    prefix is trustworthy and the suffix is not.

    Two failure classes still raise :class:`ConfigurationError`
    deliberately: a *parseable* record whose ``format`` field is
    foreign (wrong file -- salvaging would quietly merge two stores),
    and a well-formed record ``apply`` cannot use (a writer bug, not
    storage damage).
    """
    source = Path(path)
    lines = source.read_text().splitlines()
    loaded = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        bad_reason: str | None = None
        try:
            body, _framed = unframe_line(line)
            entry = json.loads(body)
        except FrameError as exc:
            bad_reason = str(exc)
        except json.JSONDecodeError as exc:
            bad_reason = f"unparseable JSON: {exc}"
        if bad_reason is None and not isinstance(entry, dict):
            bad_reason = f"expected a JSON object, got {type(entry).__name__}"
        if bad_reason is not None:
            dropped = sum(
                1 for later in lines[number - 1:] if later.strip()
            )
            report = RecoveryReport(
                path=str(source),
                kind="jsonl",
                loaded=loaded,
                dropped=dropped,
                first_bad_line=number,
                reason=bad_reason,
            )
            logger.warning(
                "torn/corrupt %s file %s: salvaged %d %s(s), "
                "dropped %d from line %d (%s)",
                label,
                source,
                loaded,
                label,
                dropped,
                number,
                bad_reason,
            )
            return report
        if entry.get("format") != expected_format:
            raise ConfigurationError(
                f"not a {expected_format} line "
                f"(format={entry.get('format')!r})"
            )
        try:
            apply(entry)
        except ConfigurationError:
            raise
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{source}:{number}: bad {label} line: {exc}"
            ) from exc
        loaded += 1
    return RecoveryReport(path=str(source), kind="jsonl", loaded=loaded)


def atomic_write_text(
    path: str | Path, text: str, *, fsync: str = "data"
) -> Path:
    """Write ``text`` to ``path`` via write-temp-then-rename.

    A crash at any point leaves either the old complete file or the new
    complete file -- never a torn mix.  ``fsync`` is one of
    :data:`FSYNC_POLICIES`; see the module docstring for what each
    survives.
    """
    if fsync not in FSYNC_POLICIES:
        raise ConfigurationError(
            f"unknown fsync policy {fsync!r}; expected one of "
            f"{'/'.join(FSYNC_POLICIES)}"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if fsync != "never":
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync == "always":
        # Persist the rename itself: fsync the directory entry.
        dir_fd = os.open(target.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return target


# ---------------------------------------------------------------------------
# sqlite: integrity check on open, quarantine on corruption
# ---------------------------------------------------------------------------


def quarantine_sqlite(db_path: str | Path) -> str:
    """Move a damaged database (and WAL/SHM siblings) aside; return where.

    The target name is ``<db>.quarantined-N`` for the first free ``N``:
    evidence for the operator, out of the way of the rebuild.
    """
    source = Path(db_path)
    n = 0
    while True:
        destination = source.with_name(f"{source.name}.quarantined-{n}")
        if not destination.exists():
            break
        n += 1
    os.replace(source, destination)
    for suffix in ("-wal", "-shm"):
        sibling = source.with_name(source.name + suffix)
        if sibling.exists():
            os.replace(
                sibling,
                destination.with_name(destination.name + suffix),
            )
    return str(destination)


def open_sqlite_checked(
    db_path: str, schema: str
) -> tuple[sqlite3.Connection, str | None]:
    """Connect, verify ``PRAGMA integrity_check``, apply the schema.

    Returns ``(connection, quarantined_path)``: ``quarantined_path`` is
    None for a healthy open, or where the damaged file was moved when
    corruption forced a fresh start.  A second failure on the fresh
    file is a real environment error and propagates.
    """
    quarantined: str | None = None
    for attempt in (0, 1):
        conn = sqlite3.connect(db_path, check_same_thread=False)
        try:
            if db_path != ":memory:":
                row = conn.execute("PRAGMA integrity_check").fetchone()
                verdict = row[0] if row else "empty integrity result"
                if verdict != "ok":
                    raise sqlite3.DatabaseError(
                        f"integrity_check: {verdict}"
                    )
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(schema)
            conn.commit()
            return conn, quarantined
        except sqlite3.DatabaseError as exc:
            conn.close()
            if attempt == 1 or db_path == ":memory:":
                raise
            quarantined = quarantine_sqlite(db_path)
            logger.warning(
                "corrupt sqlite store %s (%s): quarantined to %s, "
                "starting fresh",
                db_path,
                exc,
                quarantined,
            )
    raise AssertionError("unreachable")  # pragma: no cover
