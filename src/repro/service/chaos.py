"""Service-plane chaos: storage damage and shard failure, with oracles.

The sim-plane fault harness (:mod:`repro.faults`, ``repro-rts chaos``)
breaks the *modeled* system -- lost signals, crashed processors -- and
asks whether the synchronization protocols survive.  This module breaks
the *service itself* -- its persistence files, its sqlite stores, its
shard executors -- and asks whether the admission frontend recovers the
way :mod:`repro.service.durability` and
:mod:`repro.service.supervision` promise:

``torn-cache-tail`` / ``truncated-cache-file``
    a decision-cache snapshot loses bytes mid-record (the shape of a
    crash during append or of filesystem truncation); the reload must
    salvage the valid prefix, report the damage, and never raise.
``region-store-salvage``
    the same torn-tail damage against a region-store snapshot; on top
    of the salvage oracle, every region-served verdict from the
    salvaged store must agree with direct analysis (the tier's
    no-unsound-ACCEPT contract survives damage).
``sqlite-corruption``
    a sqlite decision store's header is smashed; opening must
    quarantine the damaged file and rebuild from the JSONL snapshot.
``shard-crash``
    one shard's executor raises on every computation; its breaker must
    open, traffic must reroute to ring neighbors, and -- once the
    injection stops -- a half-open probe must restore the shard.
``slow-backend``
    one shard's executor stalls past the job timeout; the retry ladder
    must degrade (fail closed), the breaker must open, and traffic
    must reroute.

Every scenario checks the same three recovery oracles on top of its
own: **no unsound ACCEPT** (anything served from salvaged state equals
the fault-free decision for the same content), **digest match** (the
:func:`~repro.service.loadgen.decision_digest` of surviving decisions
equals the fault-free digest over the same requests), and
**conservation** (``issued == served + shed`` and ``served == admitted
+ rejected`` -- a frontend that loses a request under faults fails the
gate).  Failures are *reported*, never raised: the CLI gate
(``repro-rts service-chaos --require-gate``) turns them into exit
status 1.

Everything is deterministic given ``seed``: the request population,
the bytes torn from each file, and the injected failures (keyed off
shard identity, not wall-clock timing).
"""

from __future__ import annotations

import asyncio
import random
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path

import repro.service.frontend as frontend_module
from repro.errors import ConfigurationError
from repro.service.backends import SqliteDecisionCache, make_cache
from repro.service.engine import compute_decision
from repro.service.frontend import AdmissionFrontend, FrontendConfig
from repro.service.hashing import request_key
from repro.service.loadgen import LoadgenConfig, build_requests, decision_digest
from repro.service.requests import AdmissionDecision, AdmissionRequest
from repro.service.sharding import ShardRing

__all__ = [
    "SERVICE_CHAOS_SCENARIOS",
    "ScenarioResult",
    "ServiceChaosReport",
    "run_service_chaos",
]

#: Recognized scenario names, in run order.
SERVICE_CHAOS_SCENARIOS: tuple[str, ...] = (
    "torn-cache-tail",
    "truncated-cache-file",
    "region-store-salvage",
    "sqlite-corruption",
    "shard-crash",
    "slow-backend",
)

_SHED_PREFIX = "service shed:"
_DEGRADED_PREFIX = "service degraded:"
_REGION_PREFIX = "region tier:"


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's verdict: oracle failures and context notes."""

    name: str
    failures: tuple[str, ...]
    notes: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"{self.name}: {status}"]
        lines += [f"  ! {failure}" for failure in self.failures]
        lines += [f"  - {note}" for note in self.notes]
        return "\n".join(lines)


@dataclass(frozen=True)
class ServiceChaosReport:
    """All scenario verdicts from one :func:`run_service_chaos`."""

    seed: int
    requests: int
    results: tuple[ScenarioResult, ...]

    @property
    def gate_passed(self) -> bool:
        return bool(self.results) and all(r.passed for r in self.results)

    def render(self) -> str:
        failed = sum(1 for r in self.results if not r.passed)
        lines = [
            (
                f"service chaos: {len(self.results)} scenario(s), "
                f"{failed} failed (seed {self.seed}, "
                f"{self.requests} requests each)"
            )
        ]
        lines += [result.describe() for result in self.results]
        lines.append(
            "gate: PASSED" if self.gate_passed else "gate: FAILED"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared machinery
# ---------------------------------------------------------------------------


class _Checks:
    """Failure/note accumulator with assert-like helpers."""

    def __init__(self) -> None:
        self.failures: list[str] = []
        self.notes: list[str] = []

    def expect(self, condition: bool, failure: str) -> bool:
        if not condition:
            self.failures.append(failure)
        return condition

    def note(self, text: str) -> None:
        self.notes.append(text)


async def _drive(
    frontend: AdmissionFrontend,
    requests: list[AdmissionRequest],
    concurrency: int,
) -> list[AdmissionDecision]:
    """Closed-loop drive collecting every decision, in request order."""
    decisions: list[AdmissionDecision | None] = [None] * len(requests)
    cursor = iter(range(len(requests)))

    async def worker() -> None:
        for index in cursor:  # single shared iterator: no double-issue
            decisions[index] = await frontend.admit(requests[index])

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return list(decisions)  # type: ignore[arg-type]


def _run(
    config: FrontendConfig,
    requests: list[AdmissionRequest],
    concurrency: int,
    *,
    cache=None,
    region_tier=None,
) -> tuple[list[AdmissionDecision], dict]:
    """One frontend lifetime: start, drive, stop; decisions + snapshot."""

    async def session() -> tuple[list[AdmissionDecision], dict]:
        async with AdmissionFrontend(
            config, cache=cache, region_tier=region_tier
        ) as frontend:
            decisions = await _drive(frontend, requests, concurrency)
            return decisions, frontend.snapshot()

    return asyncio.run(session())


def _baseline(
    requests: list[AdmissionRequest],
) -> tuple[dict[str, AdmissionDecision], list[AdmissionDecision]]:
    """Fault-free reference decisions: pure computation, no service.

    Decisions are pure functions of request content, so this is the
    ground truth every faulted run's survivors must reproduce.
    """
    by_key: dict[str, AdmissionDecision] = {}
    decisions = []
    for request in requests:
        key = request_key(request)
        if key not in by_key:
            by_key[key] = compute_decision(request, key=key)
        decisions.append(
            replace(by_key[key], request_id=request.request_id)
        )
    return by_key, decisions


def _check_conservation(
    checks: _Checks,
    decisions: list[AdmissionDecision],
    snapshot: dict,
    issued: int,
) -> None:
    """The accounting oracle: nothing lost, nothing double-counted."""
    checks.expect(
        all(d is not None for d in decisions),
        "a request completed without a decision (silent drop)",
    )
    aggregate = snapshot["aggregate"]
    served = aggregate["requests"]
    shed = aggregate["shed"]
    checks.expect(
        issued == served + shed,
        f"conservation broken: {issued} issued != "
        f"{served} served + {shed} shed",
    )
    checks.expect(
        served == aggregate["admitted"] + aggregate["rejected"],
        f"conservation broken: {served} served != "
        f"{aggregate['admitted']} admitted + "
        f"{aggregate['rejected']} rejected",
    )


def _check_digest(
    checks: _Checks,
    decisions: list[AdmissionDecision],
    baseline_decisions: list[AdmissionDecision],
    *,
    label: str,
) -> None:
    """Survivor digest == fault-free digest over the same request ids.

    Shed and degraded decisions are timing- and fault-dependent, so
    they are excluded from both sides; everything that *was* served
    normally must be byte-identical to the fault-free run.
    """
    survivors = [
        d
        for d in decisions
        if not d.rationale.startswith(_SHED_PREFIX)
        and not d.rationale.startswith(_DEGRADED_PREFIX)
    ]
    surviving_ids = {d.request_id for d in survivors}
    reference = [
        d for d in baseline_decisions if d.request_id in surviving_ids
    ]
    checks.expect(
        decision_digest(survivors) == decision_digest(reference),
        f"{label}: surviving decisions diverge from the fault-free run",
    )
    checks.note(
        f"{label}: {len(survivors)}/{len(decisions)} decisions match "
        f"the fault-free digest"
    )


def _check_salvaged_cache_sound(
    checks: _Checks, cache, by_key: dict[str, AdmissionDecision]
) -> None:
    """No unsound ACCEPT: salvaged entries equal fault-free decisions."""
    unsound = 0
    for key in cache.keys():
        cached = cache.get(key)
        reference = by_key.get(key)
        if reference is None:
            unsound += 1  # a key the fault-free run never produced
            continue
        if (
            cached.admitted != reference.admitted
            or cached.protocol != reference.protocol
            or cached.schedulable != reference.schedulable
            or cached.worst_bound_ratio != reference.worst_bound_ratio
        ):
            unsound += 1
    checks.expect(
        unsound == 0,
        f"{unsound} salvaged cache entr(y/ies) diverge from direct "
        "analysis (unsound state survived recovery)",
    )


def _tear_tail(path: Path, rng: random.Random) -> int:
    """Cut a few bytes off the file's final record; lines before it."""
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    last = lines[-1]
    cut = rng.randrange(1, max(2, min(40, len(last))))
    path.write_text(text[: len(text) - cut - 1], encoding="utf-8")
    return len(lines) - 1


def _truncate_fraction(path: Path, fraction: float) -> int:
    """Truncate the file to ``fraction`` of its bytes; whole lines kept."""
    data = path.read_bytes()
    keep = max(1, int(len(data) * fraction))
    path.write_bytes(data[:keep])
    return data[:keep].count(b"\n")


# ---------------------------------------------------------------------------
# Storage-damage scenarios
# ---------------------------------------------------------------------------


def _scenario_cache_damage(
    name: str,
    workdir: Path,
    requests: list[AdmissionRequest],
    by_key: dict[str, AdmissionDecision],
    baseline_decisions: list[AdmissionDecision],
    rng: random.Random,
    concurrency: int,
) -> ScenarioResult:
    """Torn-tail / truncation damage against the decision-cache JSONL."""
    checks = _Checks()
    path = workdir / f"{name}-cache.jsonl"
    config = FrontendConfig(
        shards=2, cache_backend="memory", cache_path=path
    )
    _run(config, requests, concurrency)  # stop() snapshots to ``path``
    if not checks.expect(path.exists(), "no cache snapshot was written"):
        return ScenarioResult(name, tuple(checks.failures))
    if name == "torn-cache-tail":
        intact = _tear_tail(path, rng)
    else:
        intact = _truncate_fraction(path, 0.6)
    salvaged = make_cache("memory", capacity=4096, path=path)
    report = salvaged.last_recovery
    if not checks.expect(
        report is not None and report.dropped >= 1,
        "damaged snapshot loaded without a recovery report",
    ):
        return ScenarioResult(name, tuple(checks.failures))
    checks.expect(
        report.loaded == intact,
        f"salvage kept {report.loaded} record(s), expected the "
        f"{intact} intact line(s)",
    )
    checks.note(report.describe())
    _check_salvaged_cache_sound(checks, salvaged, by_key)
    # Warm-start from the salvaged store and re-serve the campaign
    # (caller-passed, so the frontend neither owns nor re-saves it).
    decisions, snapshot = _run(
        FrontendConfig(shards=2, cache_backend=None),
        requests,
        concurrency,
        cache=salvaged,
    )
    _check_conservation(checks, decisions, snapshot, len(requests))
    _check_digest(
        checks, decisions, baseline_decisions, label="warm restart"
    )
    checks.expect(
        snapshot["aggregate"]["records_dropped"] >= 1,
        "recovery counters did not surface in the frontend metrics",
    )
    return ScenarioResult(name, tuple(checks.failures), tuple(checks.notes))


def _scenario_region_salvage(
    workdir: Path,
    requests: list[AdmissionRequest],
    by_key: dict[str, AdmissionDecision],
    baseline_decisions: list[AdmissionDecision],
    rng: random.Random,
    concurrency: int,
) -> ScenarioResult:
    """Torn-tail damage against the region-store JSONL."""
    from repro.regions.store import make_region_store
    from repro.regions.tier import RegionTier

    checks = _Checks()
    name = "region-store-salvage"
    path = workdir / "regions.jsonl"
    config = FrontendConfig(
        shards=2,
        cache_backend=None,
        region_backend="memory",
        region_path=path,
        region_build_threshold=1,
    )
    _run(config, requests, concurrency)
    if not checks.expect(
        path.exists(), "no region snapshot was written"
    ):
        return ScenarioResult(name, tuple(checks.failures))
    intact = _tear_tail(path, rng)
    store = make_region_store("memory", capacity=1024, path=path)
    report = store.last_recovery
    if not checks.expect(
        report is not None and report.dropped >= 1,
        "damaged region snapshot loaded without a recovery report",
    ):
        return ScenarioResult(name, tuple(checks.failures))
    checks.expect(
        report.loaded == intact,
        f"salvage kept {report.loaded} region(s), expected the "
        f"{intact} intact line(s)",
    )
    checks.note(report.describe())
    tier = RegionTier(store, build_threshold=10**9)  # lookups only
    decisions, snapshot = _run(
        FrontendConfig(shards=2, cache_backend=None),
        requests,
        concurrency,
        region_tier=tier,
    )
    _check_conservation(checks, decisions, snapshot, len(requests))
    # The tier's contract under damage: any region-served verdict must
    # agree with direct analysis (admitted flag and full verdict map).
    region_served = unsound = 0
    for decision, reference in zip(decisions, baseline_decisions):
        if not decision.rationale.startswith(_REGION_PREFIX):
            continue
        region_served += 1
        if (
            decision.admitted != reference.admitted
            or decision.schedulable != reference.schedulable
        ):
            unsound += 1
    checks.expect(
        unsound == 0,
        f"{unsound} region-served verdict(s) from the salvaged store "
        "diverge from direct analysis (unsound ACCEPT path)",
    )
    checks.note(
        f"{region_served} decision(s) served by the salvaged region "
        f"store, all sound"
    )
    computed = [
        d
        for d in decisions
        if not d.rationale.startswith(_REGION_PREFIX)
    ]
    computed_ids = {d.request_id for d in computed}
    _check_digest(
        checks,
        computed,
        [d for d in baseline_decisions if d.request_id in computed_ids],
        label="computed remainder",
    )
    return ScenarioResult(name, tuple(checks.failures), tuple(checks.notes))


def _scenario_sqlite_corruption(
    workdir: Path,
    requests: list[AdmissionRequest],
    by_key: dict[str, AdmissionDecision],
    baseline_decisions: list[AdmissionDecision],
    rng: random.Random,
    concurrency: int,
) -> ScenarioResult:
    """Smashed sqlite header: quarantine, rebuild from JSONL, re-serve."""
    checks = _Checks()
    name = "sqlite-corruption"
    db = workdir / "cache.sqlite"
    snap = workdir / "cache-snapshot.jsonl"
    first = SqliteDecisionCache(capacity=4096, db_path=db)
    decisions, snapshot = _run(
        FrontendConfig(shards=2, cache_backend=None),
        requests,
        concurrency,
        cache=first,
    )
    entries = len(first)
    first.save(snap)
    first.close()
    checks.expect(entries >= 1, "the campaign populated no cache entries")
    with open(db, "r+b") as handle:
        handle.write(rng.randbytes(100))  # smash the sqlite header
    rebuilt = SqliteDecisionCache(
        capacity=4096, db_path=db, rebuild_from=snap
    )
    try:
        checks.expect(
            rebuilt.integrity_failures == 1,
            "corrupt database opened without an integrity failure",
        )
        report = rebuilt.last_recovery
        if not checks.expect(
            report is not None and report.quarantined is not None,
            "corrupt database was not quarantined",
        ):
            return ScenarioResult(name, tuple(checks.failures))
        checks.expect(
            Path(report.quarantined).exists(),
            "quarantined database file is missing",
        )
        checks.expect(
            len(rebuilt) == entries,
            f"rebuild recovered {len(rebuilt)}/{entries} entries",
        )
        checks.note(report.describe())
        _check_salvaged_cache_sound(checks, rebuilt, by_key)
        decisions, snapshot = _run(
            FrontendConfig(shards=2, cache_backend=None),
            requests,
            concurrency,
            cache=rebuilt,
        )
        _check_conservation(checks, decisions, snapshot, len(requests))
        _check_digest(
            checks, decisions, baseline_decisions, label="rebuilt store"
        )
        checks.expect(
            snapshot["aggregate"]["integrity_failures"] >= 1,
            "integrity failure did not surface in the frontend metrics",
        )
    finally:
        rebuilt.close()
    return ScenarioResult(name, tuple(checks.failures), tuple(checks.notes))


# ---------------------------------------------------------------------------
# Shard-failure scenarios
# ---------------------------------------------------------------------------


class _ShardZeroFault:
    """Injected executor fault for threads of shard 0, thread-safe.

    ``mode="crash"`` raises; ``mode="stall"`` sleeps past the job
    timeout (only for the first ``budget`` calls, so the harness
    terminates even when retries multiply the call count).
    """

    def __init__(self, mode: str, *, budget: int, stall: float = 0.0):
        self.mode = mode
        self.budget = budget
        self.stall = stall
        self.armed = True
        self.injected = 0
        self._lock = threading.Lock()
        self._original = frontend_module._shard_compute

    def __call__(self, job):
        # Thread names are "repro-shard-<index>_<n>"; the underscore
        # keeps shard 1 from matching shard 10+.
        on_target = threading.current_thread().name.startswith(
            "repro-shard-0_"
        )
        fire = False
        if on_target:
            with self._lock:
                if self.armed and self.injected < self.budget:
                    self.injected += 1
                    fire = True
        if fire:
            if self.mode == "crash":
                raise RuntimeError("injected shard fault (chaos)")
            time.sleep(self.stall)
        return self._original(job)

    def disarm(self) -> None:
        with self._lock:
            self.armed = False


def _shard_zero_keys(
    requests: list[AdmissionRequest], shards: int
) -> list[int]:
    """Indices of requests whose content routes to shard 0."""
    ring = ShardRing(shards)
    return [
        index
        for index, request in enumerate(requests)
        if ring.shard_for(request_key(request)) == 0
    ]


def _scenario_shard_failure(
    name: str,
    requests: list[AdmissionRequest],
    baseline_decisions: list[AdmissionDecision],
    concurrency: int,
) -> ScenarioResult:
    """Crashing / stalling shard 0: breaker opens, reroutes, restores."""
    checks = _Checks()
    shards = 3
    targeted = _shard_zero_keys(requests, shards)
    if not checks.expect(
        len(targeted) >= 4,
        f"seed routes only {len(targeted)} request(s) to shard 0; "
        "need >= 4 to open the breaker and observe a reroute",
    ):
        return ScenarioResult(name, tuple(checks.failures))
    if name == "shard-crash":
        config = FrontendConfig(
            shards=shards,
            cache_backend=None,
            max_retries=0,
            breaker_failures=2,
            breaker_recovery=0.05,
        )
        fault = _ShardZeroFault("crash", budget=len(requests))
    else:  # slow-backend
        config = FrontendConfig(
            shards=shards,
            cache_backend=None,
            job_timeout=0.05,
            max_retries=1,
            retry_backoff=0.0,
            breaker_failures=2,
            breaker_recovery=0.05,
        )
        # Enough stalled calls to exhaust two retry ladders (opening
        # the breaker) even if a few land interleaved.
        fault = _ShardZeroFault(
            "stall", budget=2 * (config.max_retries + 1) + 2, stall=0.2
        )

    async def session() -> tuple[list[AdmissionDecision], dict]:
        async with AdmissionFrontend(config) as frontend:
            decisions = await _drive(frontend, requests, concurrency)
            # Stop injecting, wait out the cooldown (plus any stalled
            # calls still occupying shard 0's executor), and send
            # probes at shard 0's keyspace: the half-open window must
            # restore it.
            fault.disarm()
            await asyncio.sleep(
                config.breaker_recovery * 1.5
                + fault.stall * fault.injected
            )
            for probe_round, index in enumerate(targeted[:4]):
                await frontend.admit(
                    replace(
                        requests[index],
                        request_id=f"probe-{probe_round:02d}",
                    )
                )
            checks.expect(
                frontend._shards[0].breaker.state == "closed",
                "shard 0's breaker did not restore after the fault "
                "cleared (state "
                f"{frontend._shards[0].breaker.state!r})",
            )
            return decisions, frontend.snapshot()

    frontend_module._shard_compute = fault
    try:
        decisions, snapshot = asyncio.run(session())
    finally:
        frontend_module._shard_compute = fault._original
    probes = 4  # extra admits issued by the restore phase
    _check_conservation(
        checks, decisions, snapshot, len(requests) + probes
    )
    aggregate = snapshot["aggregate"]
    checks.expect(
        aggregate["breaker_opens"] >= 1,
        "the failing shard's breaker never opened",
    )
    checks.expect(
        aggregate["rerouted"] >= 1,
        "no request was rerouted around the open breaker",
    )
    checks.expect(
        aggregate["breaker_restores"] >= 1,
        "the breaker never closed again after half-open probes",
    )
    checks.expect(
        aggregate["degraded"] >= 1,
        "the injected fault produced no degraded decision "
        "(was anything injected at all?)",
    )
    if name == "slow-backend":
        checks.expect(
            aggregate["timeouts"] >= 1,
            "the stalled executor produced no recorded timeout",
        )
    degraded = sum(
        1
        for d in decisions
        if d.rationale.startswith(_DEGRADED_PREFIX)
    )
    checks.note(
        f"injected {fault.injected} fault(s): {degraded} degraded, "
        f"{aggregate['rerouted']} rerouted, "
        f"{aggregate['breaker_opens']} open(s), "
        f"{aggregate['breaker_restores']} restore(s)"
    )
    _check_digest(
        checks, decisions, baseline_decisions, label="survivors"
    )
    return ScenarioResult(name, tuple(checks.failures), tuple(checks.notes))


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_service_chaos(
    *,
    requests: int = 120,
    systems: int = 24,
    seed: int = 0,
    concurrency: int = 8,
    scenarios: tuple[str, ...] | None = None,
    workdir: str | Path | None = None,
) -> ServiceChaosReport:
    """Run the service-plane chaos scenarios; never raises on faults.

    ``workdir`` (a scratch directory for damaged artifacts) defaults to
    a temporary directory cleaned up on return; pass a path to keep the
    quarantined/damaged files for inspection.
    """
    chosen = scenarios if scenarios is not None else SERVICE_CHAOS_SCENARIOS
    unknown = [s for s in chosen if s not in SERVICE_CHAOS_SCENARIOS]
    if unknown:
        raise ConfigurationError(
            f"unknown service-chaos scenario(s) {unknown}; expected "
            f"among {'/'.join(SERVICE_CHAOS_SCENARIOS)}"
        )
    if not chosen:
        raise ConfigurationError("no scenarios selected")
    population = build_requests(
        LoadgenConfig(requests=requests, systems=systems, seed=seed)
    )
    by_key, baseline_decisions = _baseline(population)
    rng = random.Random(seed ^ 0xC4A05)

    def run_in(workdir: Path) -> tuple[ScenarioResult, ...]:
        results = []
        for name in chosen:
            if name in ("torn-cache-tail", "truncated-cache-file"):
                results.append(
                    _scenario_cache_damage(
                        name,
                        workdir,
                        population,
                        by_key,
                        baseline_decisions,
                        rng,
                        concurrency,
                    )
                )
            elif name == "region-store-salvage":
                results.append(
                    _scenario_region_salvage(
                        workdir,
                        population,
                        by_key,
                        baseline_decisions,
                        rng,
                        concurrency,
                    )
                )
            elif name == "sqlite-corruption":
                results.append(
                    _scenario_sqlite_corruption(
                        workdir,
                        population,
                        by_key,
                        baseline_decisions,
                        rng,
                        concurrency,
                    )
                )
            else:  # shard-crash / slow-backend
                results.append(
                    _scenario_shard_failure(
                        name,
                        population,
                        baseline_decisions,
                        concurrency,
                    )
                )
        return tuple(results)

    if workdir is not None:
        results = run_in(Path(workdir))
    else:
        with tempfile.TemporaryDirectory(
            prefix="repro-service-chaos-"
        ) as scratch:
            results = run_in(Path(scratch))
    return ServiceChaosReport(
        seed=seed, requests=requests, results=results
    )
