"""Service-side observability: counters and latency percentiles.

:class:`ServiceMetrics` is deliberately dependency-free (no numpy): it
sits on the hot path of every admission, so recording must stay O(1)
and allocation-light.  Latencies go into a bounded reservoir; the
percentile estimator sorts on demand (reads are rare, writes are hot).
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

__all__ = ["ServiceMetrics", "percentile"]

#: Default bound on retained latency samples.  Beyond it the reservoir
#: degrades to keep-every-k-th sampling, which preserves the shape of
#: the distribution without unbounded growth.
_DEFAULT_RESERVOIR = 65536


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``samples`` (nearest-rank).

    ``fraction`` is in [0, 1].  Returns ``0.0`` for an empty sequence
    so dashboards render before the first request.
    """
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters + latency reservoir for one controller."""

    def __init__(self, reservoir: int = _DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._latencies: list[float] = []
        self._seen = 0
        self._requests = 0
        self._hits = 0
        self._misses = 0
        self._admitted = 0
        self._rejected = 0
        self._timeouts = 0
        self._retries = 0
        self._degraded = 0
        self._shed = 0
        self._coalesced = 0
        self._pool_rebuilds = 0
        self._region_hits = 0
        self._region_misses = 0
        self._region_fallbacks = 0
        self._region_builds = 0
        self._region_probes = 0
        self._records_salvaged = 0
        self._records_dropped = 0
        self._integrity_failures = 0
        self._breaker_opens = 0
        self._breaker_half_opens = 0
        self._breaker_restores = 0
        self._rerouted = 0
        self._drain_flushed = 0
        self._drain_shed = 0

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record(
        self,
        *,
        admitted: bool,
        cache_hit: bool,
        latency: float,
        region_hit: bool = False,
    ) -> None:
        """Account one served admission.

        A ``region_hit`` admission was served by the region tier: it
        counts as a request (and into ``region_hits`` via
        :meth:`record_region_hit`) but as neither a decision-cache hit
        nor miss, so the decision-cache hit rate keeps its meaning.
        """
        with self._lock:
            self._requests += 1
            if region_hit:
                pass
            elif cache_hit:
                self._hits += 1
            else:
                self._misses += 1
            if admitted:
                self._admitted += 1
            else:
                self._rejected += 1
            self._seen += 1
            if len(self._latencies) < self._reservoir:
                self._latencies.append(latency)
            else:
                # Deterministic decimation: keep every k-th overflow
                # sample by overwriting round-robin.
                self._latencies[self._seen % self._reservoir] = latency

    def record_timeout(self) -> None:
        """Account one admission computation abandoned at its deadline."""
        with self._lock:
            self._timeouts += 1

    def record_retry(self) -> None:
        """Account one resubmission of a failed or timed-out job."""
        with self._lock:
            self._retries += 1

    def record_degraded(self) -> None:
        """Account one decision degraded to a REJECT after retries ran out."""
        with self._lock:
            self._degraded += 1

    def record_shed(self) -> None:
        """Account one request shed by backpressure or quota (never served).

        Shed requests do *not* count into ``requests``: throughput is
        decisions actually served, and sheds are the explicit remainder.
        """
        with self._lock:
            self._shed += 1

    def record_coalesced(self) -> None:
        """Account one request served by another caller's in-flight compute."""
        with self._lock:
            self._coalesced += 1

    def record_pool_rebuild(self) -> None:
        """Account one worker-pool rebuild after a broken-pool event."""
        with self._lock:
            self._pool_rebuilds += 1

    def record_region_hit(self) -> None:
        """Account one admission served analysis-free by the region tier."""
        with self._lock:
            self._region_hits += 1

    def record_region_miss(self) -> None:
        """Account one lookup whose shape had no cached region."""
        with self._lock:
            self._region_misses += 1

    def record_region_fallback(self) -> None:
        """Account one lookup that found a region but fell back anyway
        (point outside a verified box, undetermined verdict, or a
        timebase mismatch) -- the explicit never-an-unsound-ACCEPT path."""
        with self._lock:
            self._region_fallbacks += 1

    def record_region_build(self, *, probes: int = 0) -> None:
        """Account one feasibility-region construction (and its probes)."""
        with self._lock:
            self._region_builds += 1
            self._region_probes += probes

    def record_recovery(self, *, salvaged: int = 0, dropped: int = 0) -> None:
        """Account one damaged-store load: records kept vs. discarded."""
        with self._lock:
            self._records_salvaged += salvaged
            self._records_dropped += dropped

    def record_integrity_failure(self, count: int = 1) -> None:
        """Account sqlite integrity-check failures (quarantine events)."""
        with self._lock:
            self._integrity_failures += count

    def record_breaker_open(self) -> None:
        """Account one shard breaker tripping open."""
        with self._lock:
            self._breaker_opens += 1

    def record_breaker_half_open(self) -> None:
        """Account one breaker entering its half-open probe window."""
        with self._lock:
            self._breaker_half_opens += 1

    def record_breaker_restore(self) -> None:
        """Account one breaker closing again after successful probes."""
        with self._lock:
            self._breaker_restores += 1

    def record_reroute(self) -> None:
        """Account one request routed around its open-breaker shard."""
        with self._lock:
            self._rerouted += 1

    def record_drain(self, *, flushed: int = 0, shed: int = 0) -> None:
        """Account queued jobs handled at shutdown: served vs. shed."""
        with self._lock:
            self._drain_flushed += flushed
            self._drain_shed += shed

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """All counters plus p50/p90/p99/max/mean latency, in seconds."""
        with self._lock:
            latencies = list(self._latencies)
            counters = {
                "requests": self._requests,
                "cache_hits": self._hits,
                "cache_misses": self._misses,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "timeouts": self._timeouts,
                "retries": self._retries,
                "degraded": self._degraded,
                "shed": self._shed,
                "coalesced": self._coalesced,
                "pool_rebuilds": self._pool_rebuilds,
                "region_hits": self._region_hits,
                "region_misses": self._region_misses,
                "region_fallbacks": self._region_fallbacks,
                "region_builds": self._region_builds,
                "region_probes": self._region_probes,
                "records_salvaged": self._records_salvaged,
                "records_dropped": self._records_dropped,
                "integrity_failures": self._integrity_failures,
                "breaker_opens": self._breaker_opens,
                "breaker_half_opens": self._breaker_half_opens,
                "breaker_restores": self._breaker_restores,
                "rerouted": self._rerouted,
                "drain_flushed": self._drain_flushed,
                "drain_shed": self._drain_shed,
            }
        counters["hit_rate"] = (
            counters["cache_hits"] / counters["requests"]
            if counters["requests"]
            else 0.0
        )
        counters["latency_p50"] = percentile(latencies, 0.50)
        counters["latency_p90"] = percentile(latencies, 0.90)
        counters["latency_p99"] = percentile(latencies, 0.99)
        counters["latency_p999"] = percentile(latencies, 0.999)
        counters["latency_max"] = max(latencies) if latencies else 0.0
        counters["latency_mean"] = (
            sum(latencies) / len(latencies) if latencies else 0.0
        )
        return counters

    def describe(self) -> str:
        """A compact multi-line report for CLI ``--stats`` output."""
        snap = self.snapshot()
        return "\n".join(
            [
                (
                    f"admissions: {snap['requests']} requests, "
                    f"{snap['admitted']} admitted, "
                    f"{snap['rejected']} rejected"
                ),
                (
                    f"cache: {snap['cache_hits']} hits, "
                    f"{snap['cache_misses']} misses "
                    f"(rate {snap['hit_rate']:.1%})"
                ),
                (
                    f"latency: p50 {snap['latency_p50'] * 1e3:.3f} ms, "
                    f"p90 {snap['latency_p90'] * 1e3:.3f} ms, "
                    f"p99 {snap['latency_p99'] * 1e3:.3f} ms, "
                    f"p999 {snap['latency_p999'] * 1e3:.3f} ms, "
                    f"max {snap['latency_max'] * 1e3:.3f} ms"
                ),
            ]
            + (
                [
                    f"robustness: {snap['timeouts']} timeout(s), "
                    f"{snap['retries']} retry(ies), "
                    f"{snap['degraded']} degraded decision(s), "
                    f"{snap['pool_rebuilds']} pool rebuild(s)"
                ]
                if snap["timeouts"]
                or snap["retries"]
                or snap["degraded"]
                or snap["pool_rebuilds"]
                else []
            )
            + (
                [
                    f"backpressure: {snap['shed']} shed, "
                    f"{snap['coalesced']} coalesced"
                ]
                if snap["shed"] or snap["coalesced"]
                else []
            )
            + (
                [
                    f"regions: {snap['region_hits']} hits, "
                    f"{snap['region_misses']} misses, "
                    f"{snap['region_fallbacks']} fallbacks, "
                    f"{snap['region_builds']} builds "
                    f"({snap['region_probes']} probes)"
                ]
                if snap["region_hits"]
                or snap["region_misses"]
                or snap["region_fallbacks"]
                or snap["region_builds"]
                else []
            )
            + (
                [
                    f"durability: {snap['records_salvaged']} record(s) "
                    f"salvaged, {snap['records_dropped']} dropped, "
                    f"{snap['integrity_failures']} integrity failure(s)"
                ]
                if snap["records_salvaged"]
                or snap["records_dropped"]
                or snap["integrity_failures"]
                else []
            )
            + (
                [
                    f"supervision: {snap['breaker_opens']} breaker "
                    f"open(s), {snap['breaker_half_opens']} half-open "
                    f"probe window(s), {snap['breaker_restores']} "
                    f"restore(s), {snap['rerouted']} rerouted"
                ]
                if snap["breaker_opens"]
                or snap["breaker_half_opens"]
                or snap["breaker_restores"]
                or snap["rerouted"]
                else []
            )
            + (
                [
                    f"drain: {snap['drain_flushed']} flushed, "
                    f"{snap['drain_shed']} shed"
                ]
                if snap["drain_flushed"] or snap["drain_shed"]
                else []
            )
        )
