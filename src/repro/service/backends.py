"""Pluggable decision-cache backends behind one interface.

The in-process :class:`~repro.service.cache.DecisionCache` is the
fastest backend but its contents die with the process and cannot be
shared between frontends.  :class:`SqliteDecisionCache` keeps the exact
same interface (``get``/``put``/``stats``/``save``/``load``/
``flights``/...) on top of a sqlite file in WAL mode, so

* a restarted service starts warm without replaying a JSONL file,
* several frontend processes on one host share one decision store, and
* the store survives crashes (WAL journalling, synchronous=NORMAL).

Recency is a monotonically increasing ``seq`` column bumped on every
hit, so eviction is LRU like the in-process backend.  Hit/miss/eviction
counters are process-local (counters are observability, not state).

:func:`make_cache` is the config-driven factory the frontend and the
CLI use: ``backend="memory"`` or ``backend="sqlite"``; anything else is
a configuration error, never a silent default.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.errors import ConfigurationError
from repro.service.cache import (
    _PERSIST_FORMAT,
    CacheStats,
    DecisionCache,
    SingleFlight,
)
from repro.service.durability import (
    RecoveryReport,
    atomic_write_text,
    frame_line,
    open_sqlite_checked,
)
from repro.service.requests import (
    AdmissionDecision,
    decision_from_dict,
    decision_to_dict,
)

__all__ = ["CACHE_BACKENDS", "SqliteDecisionCache", "make_cache"]

#: Recognized ``make_cache`` backend names.
CACHE_BACKENDS: tuple[str, ...] = ("memory", "sqlite")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS decisions (
    key TEXT PRIMARY KEY,
    decision TEXT NOT NULL,
    seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS decisions_seq ON decisions (seq);
"""


class SqliteDecisionCache:
    """LRU decision cache on sqlite/WAL; same interface as DecisionCache.

    Parameters
    ----------
    capacity:
        Maximum number of decisions retained (LRU eviction by ``seq``).
    db_path:
        The sqlite file.  ``":memory:"`` gives a private in-memory
        database (useful in tests); a real path is durable and shared.
    rebuild_from:
        Optional JSONL snapshot (a :meth:`save` file from any cache
        backend).  When opening ``db_path`` finds corruption (``PRAGMA
        integrity_check`` fails), the damaged file is quarantined, a
        fresh database is started, and -- if this snapshot exists --
        the cache rebuilds from it; ``last_recovery`` reports all of
        it and ``integrity_failures`` counts the corruption events.
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        db_path: str | Path = ":memory:",
        rebuild_from: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self.flights = SingleFlight()
        self._db_path = str(db_path)
        self._closed = False
        self.last_recovery: RecoveryReport | None = None
        self.integrity_failures = 0
        self._conn, quarantined = open_sqlite_checked(
            self._db_path, _SCHEMA
        )
        if quarantined is not None:
            self.integrity_failures += 1
            loaded = 0
            if (
                rebuild_from is not None
                and Path(rebuild_from).exists()
            ):
                loaded = self.load(rebuild_from)
            self.last_recovery = RecoveryReport(
                path=self._db_path,
                kind="sqlite",
                loaded=loaded,
                reason="integrity check failed; rebuilt from snapshot"
                if loaded
                else "integrity check failed; no snapshot to rebuild from",
                quarantined=quarantined,
            )

    # ------------------------------------------------------------------
    # Core map operations (DecisionCache interface)
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM decisions"
        ).fetchone()
        return int(row[0])

    def get(self, key: str) -> AdmissionDecision | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT decision FROM decisions WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self._misses += 1
                return None
            self._conn.execute(
                "UPDATE decisions SET seq = ? WHERE key = ?",
                (self._next_seq(), key),
            )
            self._conn.commit()
            self._hits += 1
            return decision_from_dict(json.loads(row[0]))

    def put(self, key: str, decision: AdmissionDecision) -> None:
        encoded = json.dumps(decision_to_dict(decision), sort_keys=True)
        with self._lock:
            self._conn.execute(
                "INSERT INTO decisions (key, decision, seq) "
                "VALUES (?, ?, ?) ON CONFLICT(key) DO UPDATE SET "
                "decision = excluded.decision, seq = excluded.seq",
                (key, encoded, self._next_seq()),
            )
            over = len(self) - self._capacity
            if over > 0:
                self._conn.execute(
                    "DELETE FROM decisions WHERE key IN ("
                    "SELECT key FROM decisions ORDER BY seq LIMIT ?)",
                    (over,),
                )
                self._evictions += over
            self._conn.commit()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM decisions WHERE key = ?", (key,)
            ).fetchone()
            return row is not None

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM decisions"
            ).fetchone()
            return int(row[0])

    def keys(self) -> tuple[str, ...]:
        """Current keys, least recently used first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM decisions ORDER BY seq"
            ).fetchall()
            return tuple(row[0] for row in rows)

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM decisions")
            self._conn.commit()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self),
                capacity=self._capacity,
                coalesced=self.flights.coalesced,
            )

    # ------------------------------------------------------------------
    # Persistence interop (JSONL, compatible with DecisionCache files)
    # ------------------------------------------------------------------
    def save(self, path: str | Path, *, fsync: str = "data") -> Path:
        """Export to the DecisionCache JSONL format (LRU first).

        CRC-framed and written atomically, like
        :meth:`repro.service.cache.DecisionCache.save` -- the snapshot
        is also what :class:`SqliteDecisionCache` rebuilds from after
        quarantining a corrupt database.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, decision FROM decisions ORDER BY seq"
            ).fetchall()
        lines = [
            frame_line(
                json.dumps(
                    {
                        "format": _PERSIST_FORMAT,
                        "key": key,
                        "decision": json.loads(encoded),
                    },
                    sort_keys=True,
                )
            )
            for key, encoded in rows
        ]
        return atomic_write_text(
            path, "\n".join(lines) + ("\n" if lines else ""), fsync=fsync
        )

    def load(self, path: str | Path) -> int:
        """Merge a DecisionCache JSONL file; returns entries loaded.

        Same salvage semantics as the in-process cache (the staging
        cache does the framing/validation work); the staging load's
        :class:`RecoveryReport` is surfaced as ``last_recovery``.
        """
        # Reuse the reference implementation's line validation by
        # staging through an in-process cache, then bulk-insert.
        staging = DecisionCache(capacity=max(1, self._capacity))
        loaded = staging.load(path)
        for key in staging.keys():
            decision = staging.get(key)
            assert decision is not None
            self.put(key, decision)
        self.last_recovery = staging.last_recovery
        return loaded

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent; safe on error paths)."""
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True

    def __enter__(self) -> "SqliteDecisionCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_cache(
    backend: str = "memory",
    *,
    capacity: int = 4096,
    path: str | Path | None = None,
    fsync: str = "data",
    rebuild_from: str | Path | None = None,
) -> DecisionCache | SqliteDecisionCache:
    """Build a decision cache from configuration.

    ``backend="memory"`` gives the in-process LRU (``path`` is its JSONL
    warm-start/persistence file, ``fsync`` its snapshot policy);
    ``backend="sqlite"`` gives the shared WAL-backed store (``path`` is
    the database file, default private in-memory; ``rebuild_from`` an
    optional JSONL snapshot to rebuild from after quarantining a
    corrupt database).
    """
    if backend == "memory":
        return DecisionCache(capacity=capacity, path=path, fsync=fsync)
    if backend == "sqlite":
        return SqliteDecisionCache(
            capacity=capacity,
            db_path=":memory:" if path is None else path,
            rebuild_from=rebuild_from,
        )
    raise ConfigurationError(
        f"unknown cache backend {backend!r}; expected one of "
        f"{'/'.join(CACHE_BACKENDS)}"
    )
