"""A thread-safe LRU cache of admission decisions.

The cache is the service's scaling lever: admission traffic is heavily
repetitive (the same task set is re-submitted on every reconfiguration
attempt, rolling restart, or what-if probe), and a decision is a pure
function of the request content, so a hit replaces a full SA/PM +
SA/DS run with a dictionary lookup.

Keys are the canonical content hashes of :mod:`repro.service.hashing`.
Eviction is least-recently-used over a fixed capacity.  Hit, miss and
eviction counters are kept for capacity planning.  The cache can
persist itself to a JSONL file (one ``{"key": ..., "decision": ...}``
object per line) and warm-start from it, so a restarted service reaches
its steady-state hit rate immediately.

The cache also owns the service's *single-flight* table
(:class:`SingleFlight`, exposed as ``cache.flights``): when several
concurrent callers -- two batches, two shards, two threads -- miss on
the same key at the same time, exactly one of them (the *leader*)
computes while the rest wait for the published result instead of
recomputing it.  In-flight tracking lives at the cache layer because
that is the only place all concurrent misses for one key meet,
whatever path (batch, frontend shard, direct admit) produced them.

Alternative backends (sqlite/WAL) live in
:mod:`repro.service.backends`; they expose this same interface, which
is what makes them drop-in behind :class:`AdmissionController` and the
sharded frontend.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.service.durability import (
    FSYNC_POLICIES,
    RecoveryReport,
    atomic_write_text,
    frame_line,
    load_jsonl_salvaging,
)
from repro.service.requests import (
    AdmissionDecision,
    decision_from_dict,
    decision_to_dict,
)

__all__ = ["CacheStats", "DecisionCache", "SingleFlight"]

_PERSIST_FORMAT = "repro-admission-cache-v1"


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache's counters.

    ``coalesced`` counts lookups that found the key *in flight* rather
    than resident: the caller waited for the leader's computation
    instead of starting its own (see :class:`SingleFlight`).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    coalesced: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        extra = (
            f", {self.coalesced} coalesced" if self.coalesced else ""
        )
        return (
            f"cache: {self.size}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"(rate {self.hit_rate:.1%}), {self.evictions} evictions"
            f"{extra}"
        )


class _Flight:
    """One in-flight computation: an event plus its published outcome."""

    __slots__ = ("event", "decision", "degraded")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.decision: AdmissionDecision | None = None
        self.degraded = False


class SingleFlight:
    """Per-key in-flight tracking: one computation, many waiters.

    Two concurrent batches (or shards, or threads) that miss on the
    same key used to recompute it independently -- the within-batch
    deduplication of :func:`repro.service.batch.admit_batch` never saw
    across batch boundaries.  This table closes that hole:

    * :meth:`begin` claims a key.  The first claimant becomes the
      *leader* and must eventually call :meth:`finish` (use
      ``try/finally``); later claimants get the leader's flight to
      :meth:`wait` on.
    * :meth:`finish` publishes the outcome and wakes every waiter.  A
      leader that could not produce a cacheable decision publishes
      ``decision=None`` (or ``degraded=True``); waiters then fall back
      to computing for themselves, so a crashed or degraded leader can
      never wedge its followers.

    The table holds no decision history: a finished flight is removed,
    and the *cache* is what remembers the result.  Waiting is
    event-based (no polling); the leader's ``finally`` guarantees
    every waiter wakes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._coalesced = 0

    def begin(self, key: str) -> tuple[bool, _Flight]:
        """Claim ``key``: (True, flight) for the leader, else
        (False, the leader's flight) to :meth:`wait` on."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                self._coalesced += 1
                return False, flight
            flight = _Flight()
            self._flights[key] = flight
            return True, flight

    def finish(
        self,
        key: str,
        decision: AdmissionDecision | None,
        *,
        degraded: bool = False,
    ) -> None:
        """Publish the leader's outcome and wake every waiter."""
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.decision = decision
            flight.degraded = degraded
            flight.event.set()

    @staticmethod
    def wait(
        flight: _Flight, timeout: float | None = None
    ) -> tuple[AdmissionDecision | None, bool]:
        """Block until the flight publishes; (decision, degraded?).

        ``(None, False)`` means the leader finished without a usable
        decision (or ``timeout`` expired); the caller should compute
        for itself.
        """
        flight.event.wait(timeout)
        return flight.decision, flight.degraded

    def in_flight(self) -> int:
        """Number of keys currently being computed somewhere."""
        with self._lock:
            return len(self._flights)

    @property
    def coalesced(self) -> int:
        """Total lookups that joined an existing flight."""
        with self._lock:
            return self._coalesced


class DecisionCache:
    """LRU-bounded, thread-safe map from content key to decision.

    Parameters
    ----------
    capacity:
        Maximum number of decisions retained; the least recently *used*
        (looked up or stored) entry is evicted first.
    path:
        Optional persistence file.  When given and present, the cache
        warm-starts from it on construction; :meth:`save` rewrites it
        (atomically; see :mod:`repro.service.durability`).
    fsync:
        Snapshot fsync policy, one of
        :data:`repro.service.durability.FSYNC_POLICIES`.

    Every cache carries a :class:`SingleFlight` table as ``flights``,
    which the batch layer and the sharded frontend use to collapse
    concurrent misses on one key into a single computation.  After a
    warm start, ``last_recovery`` holds the load's
    :class:`~repro.service.durability.RecoveryReport` (salvage counts
    for a torn file, or a clean report).
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        path: str | Path | None = None,
        fsync: str = "data",
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{'/'.join(FSYNC_POLICIES)}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[str, AdmissionDecision] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self.flights = SingleFlight()
        self._fsync = fsync
        self.last_recovery: RecoveryReport | None = None
        self.integrity_failures = 0  # uniform backend-health surface
        self._path = None if path is None else Path(path)
        if self._path is not None and self._path.exists():
            self.load(self._path)

    # ------------------------------------------------------------------
    # Core map operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> AdmissionDecision | None:
        """The cached decision for ``key``, or None; counts hit/miss."""
        with self._lock:
            decision = self._entries.get(key)
            if decision is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return decision

    def put(self, key: str, decision: AdmissionDecision) -> None:
        """Store (or refresh) a decision, evicting LRU entries if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = decision
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        """Membership without touching recency or the counters."""
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> tuple[str, ...]:
        """Current keys, least recently used first."""
        with self._lock:
            return tuple(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
                coalesced=self.flights.coalesced,
            )

    # ------------------------------------------------------------------
    # Persistence (warm restarts)
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Snapshot every entry as CRC-framed JSONL, LRU first (so a
        smaller-capacity reload keeps the hottest entries).

        The write is atomic (temp file + rename under the constructor's
        fsync policy): a crash mid-save leaves the previous complete
        snapshot, never a torn file.  Returns the path written.
        """
        target = Path(path) if path is not None else self._path
        if target is None:
            raise ConfigurationError(
                "no persistence path: pass one to save() or the constructor"
            )
        with self._lock:
            lines = [
                frame_line(
                    json.dumps(
                        {
                            "format": _PERSIST_FORMAT,
                            "key": key,
                            "decision": decision_to_dict(decision),
                        },
                        sort_keys=True,
                    )
                )
                for key, decision in self._entries.items()
            ]
        return atomic_write_text(
            target,
            "\n".join(lines) + ("\n" if lines else ""),
            fsync=self._fsync,
        )

    def load(self, path: str | Path) -> int:
        """Merge entries from a :meth:`save` file; returns the count.

        Lines are applied in file order, so the file's most recently
        used entries end up most recently used here too.  A torn or
        truncated tail (crash mid-append) is *salvaged*: the valid
        prefix loads, the damage is logged and reported in
        ``last_recovery``.  A parseable line of a foreign format, or a
        well-formed record this cache cannot apply, still raises
        :class:`ConfigurationError` -- those are configuration/writer
        bugs, not storage damage.  Legacy unframed files load too.
        """

        def apply(entry: dict) -> None:
            self.put(entry["key"], decision_from_dict(entry["decision"]))

        report = load_jsonl_salvaging(
            path,
            expected_format=_PERSIST_FORMAT,
            apply=apply,
            label="cache",
        )
        self.last_recovery = report
        return report.loaded

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush to the constructor's persistence path, if any.

        Idempotent; a path-less cache has nothing to do.  This is what
        makes ``with DecisionCache(path=...) as cache:`` crash-restart
        friendly: normal teardown leaves a complete snapshot behind.
        """
        if self._path is not None:
            self.save()

    def __enter__(self) -> "DecisionCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
