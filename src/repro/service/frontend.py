"""The sharded asyncio admission frontend: socket to decision.

This is the production shape of the admission service.  One process
runs one event loop; inside it,

* an :class:`AdmissionFrontend` accepts requests (from code, or from
  the JSONL-over-TCP server of :func:`serve_frontend`),
* per-tenant **token-bucket quotas** and per-shard **bounded queues**
  shed overload *explicitly* -- a shed is a first-class
  :class:`~repro.service.requests.AdmissionDecision` with rationale
  prefixed ``service shed:`` (the HTTP-429 of this API), never a
  silent drop, and never cached,
* N **worker shards** own disjoint slices of the keyspace via the
  consistent-hash ring of :mod:`repro.service.sharding`, routed on the
  request's content hash -- identical content always lands on the same
  shard, which keeps that shard's slice of the cache hot and lets the
  cache's single-flight table collapse concurrent duplicates,
* each shard computes misses on its own executor (``"thread"`` or
  ``"process"``; processes sidestep the GIL for CPU-bound analysis,
  threads are cheaper and overlap stall-bound work), policed by the
  same **retry-ladder / degraded-REJECT machinery** as the batch path:
  per-job timeout, ``max_retries`` with exponential backoff, a broken
  process pool rebuilt without charging the stranded job's budget, and
  a final fail-closed degraded REJECT,
* a shared :class:`~repro.service.metrics.ServiceMetrics` aggregate
  plus one per shard expose p50/p99/p999 latency, queue depth,
  shed/degraded/coalesced/cache-hit counters.

Decisions remain pure functions of request content, so the same
requests produce the same decisions for *any* shard count, executor
width, or cache backend -- the property tests assert exactly that.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.service.backends import CACHE_BACKENDS, make_cache
from repro.service.batch import _compute_job, _degraded_decision
from repro.service.cache import SingleFlight
from repro.service.durability import FSYNC_POLICIES
from repro.service.hashing import request_key
from repro.service.metrics import ServiceMetrics
from repro.service.supervision import BreakerConfig, CircuitBreaker
from repro.service.requests import (
    AdmissionDecision,
    AdmissionRequest,
    decision_to_dict,
    request_from_dict,
)
from repro.service.sharding import ShardRing

__all__ = [
    "AdmissionFrontend",
    "DRAIN_MODES",
    "FrontendConfig",
    "TenantQuota",
    "serve_frontend",
]

#: Recognized shard executor kinds.
EXECUTORS: tuple[str, ...] = ("thread", "process")

#: What :meth:`AdmissionFrontend.stop` does with queued jobs:
#: ``"flush"`` serves them before teardown, ``"shed"`` resolves them
#: as explicit shed decisions immediately (fast stop, never silent).
DRAIN_MODES: tuple[str, ...] = ("flush", "shed")


def _shard_compute(job):
    """Shard worker body; module-level so process pools can pickle it.

    Indirection point: tests and benchmarks patch this to stage slow,
    crashing, or stall-bound decision computations.
    """
    return _compute_job(job)


@dataclass(frozen=True)
class TenantQuota:
    """A token bucket: sustained ``rate`` requests/s, ``burst`` depth."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0 or not math.isfinite(self.rate):
            raise ConfigurationError(
                f"quota rate must be finite and > 0, got {self.rate!r}"
            )
        if self.burst < 1 or not math.isfinite(self.burst):
            raise ConfigurationError(
                f"quota burst must be finite and >= 1, got {self.burst!r}"
            )


class _TokenBucket:
    """Classic leaky-bucket admission meter (clock injectable)."""

    __slots__ = ("quota", "tokens", "last", "_clock")

    def __init__(
        self, quota: TenantQuota, clock: Callable[[], float]
    ) -> None:
        self.quota = quota
        self.tokens = quota.burst
        self._clock = clock
        self.last = clock()

    def try_take(self) -> bool:
        now = self._clock()
        self.tokens = min(
            self.quota.burst,
            self.tokens + (now - self.last) * self.quota.rate,
        )
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class FrontendConfig:
    """Deployment shape of one :class:`AdmissionFrontend`.

    ``shards`` workers each own a bounded queue of ``queue_capacity``
    and an executor of ``workers_per_shard`` threads or processes.
    ``cache_backend`` selects the shared decision store
    (``"memory"``/``"sqlite"``/``None`` for uncached).  ``default_quota``
    applies to tenants without an entry in ``tenant_quotas``; ``None``
    means unlimited.  The timeout/retry knobs mirror
    :func:`repro.service.batch.admit_batch`.

    ``region_backend`` enables the feasibility-region tier above the
    decision cache (see :mod:`repro.regions`): ``None`` (default) keeps
    it off -- and every historical decision, metric and load-generator
    digest byte-identical -- while ``"memory"``/``"sqlite"`` serve
    repeat-shape admissions analysis-free once a shape has been
    computed ``region_build_threshold`` times.

    Supervision (see :mod:`repro.service.supervision`):
    ``breaker_failures`` consecutive compute failures open a shard's
    circuit breaker (``0`` disables supervision), after which its
    keyspace is routed to ring neighbors until, ``breaker_recovery``
    seconds later, half-open probes restore it.  ``drain`` is what
    :meth:`AdmissionFrontend.stop` does with queued jobs
    (``"flush"``/``"shed"``), and ``fsync`` the snapshot policy for
    file-backed stores (see :mod:`repro.service.durability`).
    """

    shards: int = 1
    queue_capacity: int = 256
    executor: str = "thread"
    workers_per_shard: int = 1
    cache_backend: str | None = "memory"
    cache_capacity: int = 4096
    cache_path: str | Path | None = None
    default_quota: TenantQuota | None = None
    tenant_quotas: Mapping[str, TenantQuota] = field(default_factory=dict)
    job_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    ring_replicas: int = 64
    region_backend: str | None = None
    region_capacity: int = 1024
    region_path: str | Path | None = None
    region_build_threshold: int = 2
    breaker_failures: int = 5
    breaker_recovery: float = 1.0
    breaker_probes: int = 1
    drain: str = "flush"
    fsync: str = "data"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{'/'.join(EXECUTORS)}"
            )
        if self.workers_per_shard < 1:
            raise ConfigurationError(
                f"workers_per_shard must be >= 1, "
                f"got {self.workers_per_shard}"
            )
        if self.cache_backend is not None and (
            self.cache_backend not in CACHE_BACKENDS
        ):
            raise ConfigurationError(
                f"unknown cache backend {self.cache_backend!r}; "
                f"expected one of {'/'.join(CACHE_BACKENDS)} or None"
            )
        if self.job_timeout is not None and not (
            self.job_timeout > 0 and math.isfinite(self.job_timeout)
        ):
            raise ConfigurationError(
                f"job_timeout must be finite and > 0, "
                f"got {self.job_timeout!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0 or not math.isfinite(
            self.retry_backoff
        ):
            raise ConfigurationError(
                f"retry_backoff must be finite and >= 0, "
                f"got {self.retry_backoff!r}"
            )
        if self.region_backend is not None:
            from repro.regions.store import REGION_BACKENDS

            if self.region_backend not in REGION_BACKENDS:
                raise ConfigurationError(
                    f"unknown region backend {self.region_backend!r}; "
                    f"expected one of {'/'.join(REGION_BACKENDS)} or None"
                )
        if self.region_build_threshold < 1:
            raise ConfigurationError(
                f"region_build_threshold must be >= 1, "
                f"got {self.region_build_threshold}"
            )
        if self.breaker_failures > 0:
            # Validates recovery/probes too (same rules as the breaker).
            BreakerConfig(
                failure_threshold=self.breaker_failures,
                recovery_time=self.breaker_recovery,
                probe_budget=self.breaker_probes,
            )
        elif self.breaker_failures < 0:
            raise ConfigurationError(
                f"breaker_failures must be >= 0 (0 disables "
                f"supervision), got {self.breaker_failures}"
            )
        if self.drain not in DRAIN_MODES:
            raise ConfigurationError(
                f"unknown drain mode {self.drain!r}; expected one of "
                f"{'/'.join(DRAIN_MODES)}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown fsync policy {self.fsync!r}; expected one of "
                f"{'/'.join(FSYNC_POLICIES)}"
            )


def _shed_decision(
    request: AdmissionRequest, key: str, reason: str
) -> AdmissionDecision:
    """An explicit 429-style refusal: not admitted, not analyzed.

    Sheds fail closed like degraded decisions but carry their own
    rationale prefix (``service shed:``) so callers can tell "try
    again later, you were rate-limited" from "the analysis could not
    be completed".  Never cached.
    """
    return AdmissionDecision(
        admitted=False,
        protocol=None,
        rationale=f"service shed: {reason}",
        schedulable={p: False for p in request.protocols},
        task_bounds={},
        worst_bound_ratio=math.inf,
        key=key,
        system_name=request.system.name,
        request_id=request.request_id,
    )


class _Shard:
    """One worker shard: bounded queue + executor + metrics + breaker."""

    def __init__(self, index: int, config: FrontendConfig) -> None:
        self.index = index
        self.config = config
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=config.queue_capacity
        )
        self.metrics = ServiceMetrics()
        self.executor = self._make_executor()
        self.workers: list[asyncio.Task] = []
        self.breaker: CircuitBreaker | None = None  # set by the frontend

    def _make_executor(self):
        if self.config.executor == "process":
            return ProcessPoolExecutor(
                max_workers=self.config.workers_per_shard
            )
        return ThreadPoolExecutor(
            max_workers=self.config.workers_per_shard,
            thread_name_prefix=f"repro-shard-{self.index}",
        )

    def rebuild_executor(self) -> None:
        """Replace a broken process pool (thread pools cannot break)."""
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.executor = self._make_executor()

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


class AdmissionFrontend:
    """Sharded async admission service (see module docstring).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        async with AdmissionFrontend(FrontendConfig(shards=4)) as fe:
            decision = await fe.admit(request)

    Parameters
    ----------
    config:
        The deployment shape.
    cache:
        Override the config-built cache with a ready instance (any
        object with the :class:`~repro.service.cache.DecisionCache`
        interface, including a shared
        :class:`~repro.service.backends.SqliteDecisionCache`).
    clock:
        Monotonic clock for the quota buckets (injectable for tests).
    """

    def __init__(
        self,
        config: FrontendConfig | None = None,
        *,
        cache=None,
        region_tier=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else FrontendConfig()
        self._owns_cache = False
        self._owns_regions = False
        if cache is not None:
            self.cache = cache
        elif self.config.cache_backend is None:
            self.cache = None
        else:
            self.cache = make_cache(
                self.config.cache_backend,
                capacity=self.config.cache_capacity,
                path=self.config.cache_path,
                fsync=self.config.fsync,
            )
            self._owns_cache = True
        self.metrics = ServiceMetrics()  # fleet-wide aggregate
        if region_tier is not None:
            self.regions = region_tier
            if self.regions.metrics is None:
                self.regions.metrics = self.metrics
        elif self.config.region_backend is None:
            self.regions = None
        else:
            from repro.regions.tier import RegionTier

            self.regions = RegionTier(
                backend=self.config.region_backend,
                capacity=self.config.region_capacity,
                path=self.config.region_path,
                build_threshold=self.config.region_build_threshold,
                metrics=self.metrics,
                fsync=self.config.fsync,
            )
            self._owns_regions = True
        self.ring = ShardRing(
            self.config.shards, replicas=self.config.ring_replicas
        )
        self._clock = clock
        self._buckets: dict[str, _TokenBucket] = {}
        self._shards: list[_Shard] = []
        self._wait_pool: ThreadPoolExecutor | None = None
        self._started = False
        # Surface warm-start damage (salvage/quarantine) in metrics so
        # --stats shows it even when recovery succeeded silently.
        self._absorb_store_health(self.cache)
        self._absorb_store_health(
            self.regions.store if self.regions is not None else None
        )

    def _absorb_store_health(self, store) -> None:
        """Fold a backend's recovery/integrity state into the metrics."""
        if store is None:
            return
        report = getattr(store, "last_recovery", None)
        if report is not None and not report.clean:
            self.metrics.record_recovery(
                salvaged=report.salvaged, dropped=report.dropped
            )
        failures = getattr(store, "integrity_failures", 0)
        if failures:
            self.metrics.record_integrity_failure(failures)

    def _make_breaker(self, shard: _Shard) -> CircuitBreaker | None:
        if self.config.breaker_failures <= 0:
            return None

        def on_transition(
            old: str, new: str, shard: _Shard = shard
        ) -> None:
            for sink in (self.metrics, shard.metrics):
                if new == "open":
                    sink.record_breaker_open()
                elif new == "half_open":
                    sink.record_breaker_half_open()
                elif new == "closed":
                    sink.record_breaker_restore()

        return CircuitBreaker(
            BreakerConfig(
                failure_threshold=self.config.breaker_failures,
                recovery_time=self.config.breaker_recovery,
                probe_budget=self.config.breaker_probes,
            ),
            clock=self._clock,
            on_transition=on_transition,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AdmissionFrontend":
        if self._started:
            raise ConfigurationError("frontend already started")
        self._shards = [
            _Shard(index, self.config)
            for index in range(self.config.shards)
        ]
        for shard in self._shards:
            shard.breaker = self._make_breaker(shard)
        self._wait_pool = ThreadPoolExecutor(
            max_workers=max(4, self.config.shards),
            thread_name_prefix="repro-flight-wait",
        )
        for shard in self._shards:
            shard.workers = [
                asyncio.create_task(self._run_worker(shard))
                for _ in range(self.config.workers_per_shard)
            ]
        self._started = True
        return self

    async def stop(self, *, drain: str | None = None) -> None:
        """Graceful teardown: stop intake, drain, close every backend.

        ``drain`` overrides the config's mode: ``"flush"`` serves every
        queued job before teardown (the shutdown sentinels queue behind
        them); ``"shed"`` resolves queued jobs as explicit shed
        decisions immediately -- a fast stop that still never drops a
        request silently.  Either way, an ``admit`` arriving after
        ``stop`` began raises instead of waiting forever on a queue
        nobody drains, executors are shut down, and backends the
        frontend built are closed (flushing file-backed stores) even if
        a worker fails mid-drain.
        """
        if not self._started:
            return
        self._started = False  # late admits fail fast, never hang
        mode = drain if drain is not None else self.config.drain
        if mode not in DRAIN_MODES:
            raise ConfigurationError(
                f"unknown drain mode {mode!r}; expected one of "
                f"{'/'.join(DRAIN_MODES)}"
            )
        try:
            for shard in self._shards:
                if mode == "shed":
                    self._shed_queue(shard)
                else:
                    depth = shard.queue.qsize()
                    if depth:
                        self.metrics.record_drain(flushed=depth)
                        shard.metrics.record_drain(flushed=depth)
                for _ in shard.workers:
                    await shard.queue.put(None)  # one sentinel per worker
            for shard in self._shards:
                for worker in shard.workers:
                    await worker
        finally:
            try:
                for shard in self._shards:
                    shard.shutdown()
            finally:
                if self._wait_pool is not None:
                    self._wait_pool.shutdown(
                        wait=False, cancel_futures=True
                    )
                self._close_backends()

    def _shed_queue(self, shard: _Shard) -> None:
        """Resolve everything queued on ``shard`` as explicit sheds."""
        while True:
            try:
                item = shard.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is None:
                continue
            request, key, future, _started_at = item
            for sink in (self.metrics, shard.metrics):
                sink.record_shed()
                sink.record_drain(shed=1)
            if shard.breaker is not None:
                shard.breaker.record_void()
            if not future.done():
                future.set_result(
                    _shed_decision(
                        request,
                        key,
                        "frontend stopping -- queued request shed "
                        "at drain",
                    )
                )

    def _close_backends(self) -> None:
        """Close stores this frontend built (caller-passed ones are
        the caller's to close); ``try/finally`` so one failure cannot
        leak the other backend."""
        try:
            if self._owns_cache and self.cache is not None:
                close = getattr(self.cache, "close", None)
                if close is not None:
                    close()
        finally:
            if self._owns_regions and self.regions is not None:
                self.regions.close()

    async def __aenter__(self) -> "AdmissionFrontend":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------
    def _take_token(self, tenant: str) -> bool:
        quota = self.config.tenant_quotas.get(
            tenant, self.config.default_quota
        )
        if quota is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None or bucket.quota is not quota:
            bucket = self._buckets[tenant] = _TokenBucket(
                quota, self._clock
            )
        return bucket.try_take()

    def _route(self, key: str) -> _Shard:
        """The healthiest shard for ``key``: its ring owner when that
        shard's breaker admits traffic, else the first ring neighbor
        whose breaker does.

        Supervision is advisory, never load-bearing for liveness: if
        *every* breaker refuses, the primary gets the request anyway --
        turning an all-unhealthy detector verdict into a total outage
        would be worse than trying.
        """
        primary = self.ring.shard_for(key)
        shard = self._shards[primary]
        if shard.breaker is None or shard.breaker.allow():
            return shard
        count = len(self._shards)
        for offset in range(1, count):
            candidate = self._shards[(primary + offset) % count]
            if candidate.breaker is None or candidate.breaker.allow():
                self.metrics.record_reroute()
                candidate.metrics.record_reroute()
                return candidate
        return shard

    async def admit(
        self, request: AdmissionRequest
    ) -> AdmissionDecision:
        """Decide one request through quotas, cache, and its shard.

        Always returns a decision: a real verdict, a degraded REJECT
        (ladder exhausted), or an explicit shed (quota or queue full).
        """
        if not self._started:
            raise ConfigurationError(
                "frontend not started (use 'async with' or await start())"
            )
        started = time.perf_counter()
        if not self._take_token(request.tenant):
            self.metrics.record_shed()
            return _shed_decision(
                request,
                "",
                f"tenant {request.tenant or 'default'!r} quota "
                "exceeded (429, retry later)",
            )
        key = request_key(request)
        shard = self._route(key)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                if shard.breaker is not None:
                    # A cache hit never touches the executor: return
                    # any half-open probe permit unspent.
                    shard.breaker.record_void()
                latency = time.perf_counter() - started
                for sink in (self.metrics, shard.metrics):
                    sink.record(
                        admitted=cached.admitted,
                        cache_hit=True,
                        latency=latency,
                    )
                return replace(cached, request_id=request.request_id)
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        try:
            shard.queue.put_nowait((request, key, future, started))
        except asyncio.QueueFull:
            if shard.breaker is not None:
                shard.breaker.record_void()
            self.metrics.record_shed()
            shard.metrics.record_shed()
            return _shed_decision(
                request,
                key,
                f"shard {shard.index} queue full "
                f"({self.config.queue_capacity} deep) -- backpressure",
            )
        return await future

    # ------------------------------------------------------------------
    # Shard workers
    # ------------------------------------------------------------------
    async def _run_worker(self, shard: _Shard) -> None:
        while True:
            item = await shard.queue.get()
            if item is None:  # shutdown sentinel
                return
            request, key, future, started = item
            try:
                decision, degraded, source = await self._decide(
                    shard, request, key
                )
            except Exception as exc:  # noqa: BLE001 - fail closed
                decision = _degraded_decision(
                    request, key, f"shard worker error: {exc}"
                )
                degraded, source = True, "computed"
            if shard.breaker is not None:
                # Only *computed* outcomes prove anything about this
                # shard's executor; cache/region/coalesced resolutions
                # must neither reset the failure streak nor count as
                # half-open probes.
                if source == "computed":
                    if degraded:
                        shard.breaker.record_failure()
                    else:
                        shard.breaker.record_success()
                else:
                    shard.breaker.record_void()
            latency = time.perf_counter() - started
            for sink in (self.metrics, shard.metrics):
                sink.record(
                    admitted=decision.admitted,
                    cache_hit=source == "cache",
                    region_hit=source == "region",
                    latency=latency,
                )
                if degraded:
                    sink.record_degraded()
            if not future.done():
                future.set_result(
                    replace(decision, request_id=request.request_id)
                )

    async def _decide(
        self, shard: _Shard, request: AdmissionRequest, key: str
    ) -> tuple[AdmissionDecision, bool, str]:
        """(decision, degraded?, source) for one queued miss.

        ``source`` is ``"cache"`` (exact-request hit on the re-check or
        via a coalesced flight), ``"region"`` (served analysis-free by
        the region tier) or ``"computed"``.
        """
        cache = self.cache
        flights = cache.flights if cache is not None else None
        leader_flight = None
        if cache is not None:
            # Re-check: the decision may have landed while we queued.
            cached = cache.get(key)
            if cached is not None:
                return cached, False, "cache"
        if self.regions is not None:
            # The region tier sits between the exact-request cache and
            # the analysis: a shape hit needs no executor, no flight.
            regional = self.regions.lookup(request, key=key)
            if regional is not None:
                return regional, False, "region"
        if flights is not None:
            leader, flight = flights.begin(key)
            if leader:
                leader_flight = flight
            else:
                loop = asyncio.get_running_loop()
                decision, degraded = await loop.run_in_executor(
                    self._wait_pool, SingleFlight.wait, flight
                )
                if decision is not None:
                    for sink in (self.metrics, shard.metrics):
                        sink.record_coalesced()
                    return decision, degraded, "cache"
                # The leader vanished without publishing: compute for
                # ourselves (unclaimed -- no flight to finish).
        published = False
        try:
            decision, degraded = await self._compute_with_ladder(
                shard, request, key
            )
            if cache is not None and not degraded:
                cache.put(key, decision)
            if leader_flight is not None:
                flights.finish(key, decision, degraded=degraded)
                published = True
            if self.regions is not None and not degraded:
                # Region building can cost hundreds of probes; keep it
                # off the event loop.  Awaited, so the build (when the
                # threshold trips) lands before this decision returns
                # -- deterministic and simple; the cost is counted and
                # amortized by every later shape hit.
                await asyncio.get_running_loop().run_in_executor(
                    self._wait_pool, self.regions.observe, request
                )
            return decision, degraded, "computed"
        finally:
            if leader_flight is not None and not published:
                flights.finish(key, None)

    async def _compute_with_ladder(
        self, shard: _Shard, request: AdmissionRequest, key: str
    ) -> tuple[AdmissionDecision, bool]:
        """The batch path's retry ladder, asyncio-shaped.

        Timeouts abandon the executor slot (the thread/process may
        still be busy; the executor absorbs it), failures retry with
        exponential backoff, a broken process pool is rebuilt without
        charging the job's budget, and an exhausted ladder degrades to
        the same fail-closed REJECT as the batch path.
        """
        config = self.config
        loop = asyncio.get_running_loop()
        attempt = 0
        breaks = 0
        while True:
            try:
                computation = loop.run_in_executor(
                    shard.executor, _shard_compute, (key, request)
                )
                if config.job_timeout is not None:
                    _key, decision, _elapsed = await asyncio.wait_for(
                        computation, timeout=config.job_timeout
                    )
                else:
                    _key, decision, _elapsed = await computation
                return decision, False
            except asyncio.TimeoutError:
                shard.metrics.record_timeout()
                self.metrics.record_timeout()
                reason = f"timed out after {config.job_timeout:g} s"
            except BrokenProcessPool:
                # The pool died under us; rebuild and resubmit without
                # consuming this job's retry budget (bounded: a job
                # that keeps riding pools down is the likely culprit).
                shard.rebuild_executor()
                shard.metrics.record_pool_rebuild()
                self.metrics.record_pool_rebuild()
                breaks += 1
                if breaks <= config.max_retries + 1:
                    continue
                return (
                    _degraded_decision(
                        request,
                        key,
                        f"worker pool broke {breaks} time(s) under "
                        "this job",
                    ),
                    True,
                )
            except Exception as exc:  # noqa: BLE001 - ladder
                reason = f"computation failed: {exc}"
            if attempt >= config.max_retries:
                return (
                    _degraded_decision(
                        request,
                        key,
                        f"{reason} (after {attempt + 1} attempt(s))",
                    ),
                    True,
                )
            attempt += 1
            shard.metrics.record_retry()
            self.metrics.record_retry()
            if config.retry_backoff:
                await asyncio.sleep(
                    config.retry_backoff * (2 ** (attempt - 1))
                )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def queue_depths(self) -> list[int]:
        """Current queue depth per shard."""
        return [shard.queue.qsize() for shard in self._shards]

    def snapshot(self) -> dict:
        """Aggregate + per-shard metrics, queue depths, cache stats."""
        result = {
            "aggregate": self.metrics.snapshot(),
            "shards": [
                shard.metrics.snapshot() for shard in self._shards
            ],
            "queue_depths": self.queue_depths(),
            "breakers": [
                None if shard.breaker is None else shard.breaker.snapshot()
                for shard in self._shards
            ],
        }
        if self.cache is not None:
            stats = self.cache.stats()
            result["cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "capacity": stats.capacity,
                "coalesced": stats.coalesced,
            }
        if self.regions is not None:
            stats = self.regions.stats()
            result["regions"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "capacity": stats.capacity,
            }
        return result

    def describe(self) -> str:
        """Aggregate metrics, one line per shard, cache counters."""
        lines = [self.metrics.describe()]
        for shard, depth in zip(self._shards, self.queue_depths()):
            snap = shard.metrics.snapshot()
            breaker = (
                ""
                if shard.breaker is None
                else f", {shard.breaker.describe()}"
            )
            lines.append(
                f"shard {shard.index}: {snap['requests']} requests, "
                f"{snap['cache_hits']} hits, "
                f"{snap['shed']} shed, {snap['degraded']} degraded, "
                f"queue depth {depth}, "
                f"p99 {snap['latency_p99'] * 1e3:.3f} ms"
                f"{breaker}"
            )
        if self.cache is not None:
            lines.append(self.cache.stats().describe())
        if self.regions is not None:
            lines.append(self.regions.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSONL-over-TCP server: the socket in "socket to decision"
# ---------------------------------------------------------------------------


async def serve_frontend(
    frontend: AdmissionFrontend,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Expose a started frontend over newline-delimited JSON on TCP.

    Each request line is a ``repro-admission-request-v1`` (or bare
    ``repro-system-v1``) document; each response line is the decision
    document, in request order per connection.  Malformed lines get an
    ``{"error": ...}`` line instead of killing the connection.  The
    returned server is started; callers own its lifetime
    (``server.close()`` / ``await server.wait_closed()``).
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                try:
                    request = request_from_dict(json.loads(text))
                except (
                    ConfigurationError,
                    ValueError,
                    KeyError,
                    TypeError,
                ) as exc:
                    payload: dict = {"error": f"bad request line: {exc}"}
                else:
                    decision = await frontend.admit(request)
                    payload = decision_to_dict(decision)
                writer.write(
                    (json.dumps(payload, sort_keys=True) + "\n").encode(
                        "utf-8"
                    )
                )
                await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)
