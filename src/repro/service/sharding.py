"""Consistent-hash routing of admission keys onto worker shards.

The sharded frontend routes every request by its *content hash* (the
same :func:`repro.service.hashing.request_key` the decision cache keys
on), so identical content always lands on the same shard -- that is
what lets a shard coalesce concurrent duplicates locally and keeps its
share of the cache hot.

Routing is a classic consistent-hash ring with virtual nodes:

* each shard owns ``replicas`` points on a 64-bit ring, placed by
  SHA-256 of a stable label (``"shard-<i>/<r>"``) -- no process salt,
  no randomness, so every frontend in a fleet routes identically;
* a key maps to the first ring point at or after its own 64-bit
  position (wrapping);
* growing the ring from N to N+1 shards moves only ~1/(N+1) of the
  keyspace (tested), so a resize mostly preserves shard-local cache
  residency -- the property a plain ``hash(key) % N`` lacks.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["ShardRing"]

#: Ring positions and key positions are 64-bit: the leading 16 hex
#: digits of a SHA-256 digest.
_POSITION_BITS = 64


def _position(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).hexdigest()
    return int(digest[: _POSITION_BITS // 4], 16)


class ShardRing:
    """Deterministic consistent-hash ring over ``shards`` workers.

    Parameters
    ----------
    shards:
        Number of shards (>= 1).
    replicas:
        Virtual nodes per shard.  More replicas smooth the load split
        (at 64 the max/min shard share stays within a few tens of
        percent); the default is plenty for single-digit shard counts.
    """

    def __init__(self, shards: int, *, replicas: int = 64) -> None:
        if shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {shards}"
            )
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}"
            )
        self.shards = shards
        self.replicas = replicas
        points = [
            (_position(f"shard-{shard}/{replica}"), shard)
            for shard in range(shards)
            for replica in range(replicas)
        ]
        points.sort()
        self._positions = [position for position, _shard in points]
        self._owners = [shard for _position, shard in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (a request-key hex digest)."""
        position = int(key[: _POSITION_BITS // 4], 16)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):  # wrap past the last point
            index = 0
        return self._owners[index]

    def distribution(
        self, keys: Iterable[str]
    ) -> dict[int, int]:
        """How many of ``keys`` each shard owns (all shards present)."""
        counts: Counter[int] = Counter(
            self.shard_for(key) for key in keys
        )
        return {shard: counts.get(shard, 0) for shard in range(self.shards)}

    @staticmethod
    def moved_fraction(
        before: "ShardRing", after: "ShardRing", keys: Sequence[str]
    ) -> float:
        """Fraction of ``keys`` whose owner differs between two rings."""
        if not keys:
            return 0.0
        moved = sum(
            1
            for key in keys
            if before.shard_for(key) != after.shard_for(key)
        )
        return moved / len(keys)
