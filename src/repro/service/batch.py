"""Batch admission: fan cache misses over a process pool.

Mirrors the idiom of :mod:`repro.experiments.parallel`: jobs are pure
functions of picklable inputs, and all randomness-free computation makes
the result independent of the worker count.  On top of that, the batch
layer

* serves every request already in the cache without touching the pool,
* deduplicates identical content *within* the batch (each distinct key
  is computed exactly once, however often it recurs),
* deduplicates identical content *across* concurrent batches through
  the cache's single-flight table
  (:class:`repro.service.cache.SingleFlight`): the first batch to claim
  a key computes it, later batches wait for the published decision
  instead of recomputing -- and fall back to computing for themselves
  if the leader could not publish, so coalescing can never wedge,
* polices the pool: a job may be bounded by a wall-clock ``job_timeout``
  and is retried (with exponential backoff) when it times out, raises,
  or loses its worker process -- after ``max_retries`` failed attempts
  the batch *degrades* that one decision to a safe REJECT instead of
  hanging or failing the whole batch.  A *broken pool* (a worker
  process died) is rebuilt once per break and the jobs stranded on it
  are resubmitted **without** consuming their retry budget -- the break
  is the pool's failure, not theirs; only a job that rides the pool
  down repeatedly (more than ``max_retries + 1`` breaks) is treated as
  the culprit and failed closed, and
* reassembles decisions in request order, so output is deterministic
  with caching on, off, or warm-started from disk.

Degraded decisions are never cached: the next batch retries the
computation from scratch.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.service.cache import DecisionCache, SingleFlight
from repro.service.engine import compute_decision
from repro.service.hashing import request_key
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionDecision, AdmissionRequest

__all__ = ["admit_batch"]


def _compute_job(
    job: tuple[str, AdmissionRequest]
) -> tuple[str, AdmissionDecision, float]:
    """Worker body: (key, request) -> (key, decision, seconds spent)."""
    key, request = job
    started = time.perf_counter()
    decision = compute_decision(request, key=key)
    return key, decision, time.perf_counter() - started


def _degraded_decision(
    request: AdmissionRequest, key: str, reason: str
) -> AdmissionDecision:
    """A safe REJECT standing in for a decision the pool never produced.

    Admission control must fail *closed*: a system whose analysis could
    not be completed is not certified, so it is not admitted.  The
    rationale carries the failure so callers can distinguish a degraded
    verdict from an analytical rejection and retry later.
    """
    return AdmissionDecision(
        admitted=False,
        protocol=None,
        rationale=f"service degraded: {reason}",
        schedulable={p: False for p in request.protocols},
        task_bounds={},
        worst_bound_ratio=math.inf,
        key=key,
        system_name=request.system.name,
        request_id=request.request_id,
    )


def _compute_serial(
    key: str,
    request: AdmissionRequest,
    *,
    max_retries: int,
    retry_backoff: float,
    metrics: ServiceMetrics | None,
) -> tuple[AdmissionDecision, float, bool]:
    """In-process attempt ladder: (decision, seconds, degraded?).

    No pool means no timeout enforcement (a thread cannot interrupt its
    own computation); only the retry/degrade ladder applies.
    """
    attempt = 0
    while True:
        started = time.perf_counter()
        try:
            _key, decision, elapsed = _compute_job((key, request))
            return decision, elapsed, False
        except Exception as exc:  # noqa: BLE001 - degrade, don't crash
            if attempt >= max_retries:
                return (
                    _degraded_decision(
                        request,
                        key,
                        f"computation failed after {attempt + 1} "
                        f"attempt(s): {exc}",
                    ),
                    time.perf_counter() - started,
                    True,
                )
            attempt += 1
            if metrics is not None:
                metrics.record_retry()
            if retry_backoff:
                time.sleep(retry_backoff * (2 ** (attempt - 1)))


def _next_wakeup(
    queue: deque[tuple[str, int, float]],
    in_flight: Mapping,
    job_timeout: float | None,
    now: float,
    *,
    capacity: int,
) -> float | None:
    """Seconds until the earliest scheduler deadline, or None when idle.

    Two deadline families feed the wakeup:

    * queued jobs' resubmission instants -- but only when ``capacity``
      slots are free to actually submit into (with a full window an
      expired backoff deadline is unactionable, and honouring it would
      busy-spin ``wait(timeout=0)`` until a worker finished), and
    * in-flight jobs' ``job_timeout`` expiries.

    Expired instants count, clamping the result to 0.0 (wake *now*).
    The pre-fix code instead filtered expired instants out of the
    wakeup set, so when the clock ticked past a backoff deadline
    between the submission scan and this computation, the scheduler
    slept until the *next* deadline -- oversleeping the expired one by
    an arbitrary margin.
    """
    deadlines = (
        [not_before for (_key, _attempt, not_before) in queue]
        if capacity > 0
        else []
    )
    if job_timeout is not None:
        deadlines.extend(
            submitted + job_timeout
            for (_key, _attempt, submitted) in in_flight.values()
        )
    if not deadlines:
        return None
    return max(0.0, min(deadlines) - now)


def _compute_pooled(
    jobs: Mapping[str, AdmissionRequest],
    *,
    worker_count: int,
    job_timeout: float | None,
    max_retries: int,
    retry_backoff: float,
    metrics: ServiceMetrics | None,
) -> dict[str, tuple[AdmissionDecision, float, bool]]:
    """Pool scheduler with per-job deadlines and a bounded retry queue.

    Jobs are submitted at most ``worker_count`` at a time so a job's
    submission instant approximates its start instant -- that is what
    makes the wall-clock ``job_timeout`` meaningful.  A timed-out
    future cannot be interrupted (the worker may be wedged in native
    code); it is *abandoned*: dropped from tracking, its slot written
    off, and the job resubmitted or degraded.

    A broken pool (worker process died) is rebuilt once per break and
    every job stranded on it -- in flight or mid-submission -- is
    resubmitted at its *current* attempt count: a pool break is the
    pool's failure, not the job's, so it never consumes retry budget.
    Only a job present at more than ``max_retries + 1`` consecutive
    breaks is treated as the likely culprit (it keeps killing its
    worker) and failed closed.
    """
    outcomes: dict[str, tuple[AdmissionDecision, float, bool]] = {}
    #: (key, attempt, earliest resubmission instant) awaiting a slot.
    queue: deque[tuple[str, int, float]] = deque(
        (key, 0, 0.0) for key in jobs
    )
    #: future -> (key, attempt, submission instant).
    in_flight: dict = {}
    abandoned = 0  # slots still occupied by timed-out computations
    breaks: dict[str, int] = {}  # pool breaks each key has ridden down

    def resolve_failure(key: str, attempt: int, reason: str) -> None:
        if attempt >= max_retries:
            outcomes[key] = (
                _degraded_decision(
                    jobs[key],
                    key,
                    f"{reason} (after {attempt + 1} attempt(s))",
                ),
                0.0,
                True,
            )
            return
        if metrics is not None:
            metrics.record_retry()
        delay = retry_backoff * (2 ** attempt) if retry_backoff else 0.0
        queue.append((key, attempt + 1, time.monotonic() + delay))

    pool = ProcessPoolExecutor(max_workers=worker_count)
    try:
        while queue or in_flight:
            broken = False
            #: jobs whose future died with the pool, not on their own.
            stranded: list[tuple[str, int]] = []

            # Keep the live part of the pool full; respect backoff.
            window = max(1, worker_count - abandoned)
            now = time.monotonic()
            backing_off: deque[tuple[str, int, float]] = deque()
            while queue and len(in_flight) < window:
                key, attempt, not_before = queue.popleft()
                if now < not_before:
                    backing_off.append((key, attempt, not_before))
                    continue
                try:
                    future = pool.submit(_compute_job, (key, jobs[key]))
                except BrokenProcessPool:
                    # Submitting against a dead pool is not the job's
                    # failure: keep it queued untouched and rebuild.
                    backing_off.append((key, attempt, not_before))
                    broken = True
                    break
                in_flight[future] = (key, attempt, time.monotonic())
            queue.extend(backing_off)

            if not broken:
                # Block until a completion, a deadline, or a backoff
                # expiry -- whichever comes first.
                now = time.monotonic()
                timeout = _next_wakeup(
                    queue,
                    in_flight,
                    job_timeout,
                    now,
                    capacity=window - len(in_flight),
                )
                if in_flight:
                    done, _ = wait(
                        set(in_flight),
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    done = set()
                    if timeout is not None and timeout > 0.0:
                        time.sleep(timeout)

                for future in done:
                    key, attempt, _sub = in_flight.pop(future)
                    try:
                        _key, decision, elapsed = future.result()
                    except BrokenProcessPool:
                        broken = True
                        stranded.append((key, attempt))
                    except Exception as exc:  # noqa: BLE001 - degrade
                        resolve_failure(
                            key, attempt, f"computation failed: {exc}"
                        )
                    else:
                        outcomes[key] = (decision, elapsed, False)

                if not broken and job_timeout is not None:
                    now = time.monotonic()
                    overdue = [
                        future
                        for future, (_k, _a, sub) in in_flight.items()
                        if now - sub >= job_timeout
                    ]
                    for future in overdue:
                        key, attempt, _sub = in_flight.pop(future)
                        if not future.cancel():
                            # Already running: the worker stays busy
                            # until (if ever) it finishes; write the
                            # slot off.
                            abandoned += 1
                        if metrics is not None:
                            metrics.record_timeout()
                        resolve_failure(
                            key,
                            attempt,
                            f"timed out after {job_timeout:g} s",
                        )

            if broken:
                # Rebuild once, resubmit every stranded job at its
                # current attempt -- the break consumed no retry budget.
                # Results that finished before the break are still good.
                for future, (key, attempt, _sub) in in_flight.items():
                    if future.done():
                        try:
                            _key, decision, elapsed = future.result()
                        except Exception:  # noqa: BLE001 - died with pool
                            stranded.append((key, attempt))
                        else:
                            outcomes[key] = (decision, elapsed, False)
                            continue
                    else:
                        stranded.append((key, attempt))
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=worker_count)
                abandoned = 0
                if metrics is not None:
                    metrics.record_pool_rebuild()
                for key, attempt in stranded:
                    count = breaks.get(key, 0) + 1
                    breaks[key] = count
                    if count > max_retries + 1:
                        outcomes[key] = (
                            _degraded_decision(
                                jobs[key],
                                key,
                                f"worker pool broke {count} time(s) "
                                "under this job",
                            ),
                            0.0,
                            True,
                        )
                    else:
                        queue.append((key, attempt, 0.0))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return outcomes


def admit_batch(
    requests: Sequence[AdmissionRequest] | Iterable[AdmissionRequest],
    *,
    cache: DecisionCache | None = None,
    metrics: ServiceMetrics | None = None,
    workers: int | None = None,
    progress: Callable[[str], None] | None = None,
    job_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
) -> list[AdmissionDecision]:
    """Decide a batch of requests; returns decisions in request order.

    ``workers`` defaults to the CPU count; ``workers=1`` computes in
    process (no pool), which is fastest for small batches.  Duplicate
    request content inside the batch is computed once and accounted as
    cache hits for the duplicates; duplicate content across
    *concurrent* batches sharing one cache is computed once too, via
    the cache's single-flight table (waiters are accounted as hits and
    counted on ``ServiceMetrics.coalesced``).  ``progress`` (when
    given) receives one line per computed (non-cached) decision.

    ``job_timeout`` bounds the wall-clock seconds any one decision may
    take on the pool; a job that exceeds it is abandoned (the hung
    worker is written off) and resubmitted.  Any failed attempt --
    timeout, raised exception, dead worker -- is retried up to
    ``max_retries`` times with exponential backoff starting at
    ``retry_backoff`` seconds; a job that exhausts its ladder yields a
    *degraded* REJECT decision (rationale prefixed
    ``service degraded:``) rather than hanging or failing the batch.
    Degraded decisions are never cached.  Timeout enforcement needs the
    pool: with ``workers=1`` only the retry/degrade ladder applies.
    """
    request_list = list(requests)
    worker_count = workers if workers is not None else (os.cpu_count() or 1)
    if worker_count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if job_timeout is not None and not (
        job_timeout > 0 and math.isfinite(job_timeout)
    ):
        raise ConfigurationError(
            f"job_timeout must be finite and > 0, got {job_timeout!r}"
        )
    if max_retries < 0:
        raise ConfigurationError(
            f"max_retries must be >= 0, got {max_retries}"
        )
    if retry_backoff < 0 or not math.isfinite(retry_backoff):
        raise ConfigurationError(
            f"retry_backoff must be finite and >= 0, got {retry_backoff!r}"
        )
    if not request_list:
        return []

    decisions: list[AdmissionDecision | None] = [None] * len(request_list)
    # key -> indices still needing a decision, in first-appearance order.
    pending: dict[str, list[int]] = {}
    for index, request in enumerate(request_list):
        started = time.perf_counter()
        key = request_key(request)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            decisions[index] = replace(
                cached, request_id=request.request_id
            )
            if metrics is not None:
                metrics.record(
                    admitted=cached.admitted,
                    cache_hit=True,
                    latency=time.perf_counter() - started,
                )
        else:
            pending.setdefault(key, []).append(index)

    jobs = {
        key: request_list[indices[0]] for key, indices in pending.items()
    }

    # Cross-batch single-flight: claim every distinct key at the cache's
    # in-flight table.  Keys another batch (or shard, or thread) is
    # already computing are *awaited* instead of recomputed; the rest
    # are *owned* and computed here.  Without a cache there is no
    # shared layer for concurrent batches to meet at, so every key is
    # owned.
    flights = cache.flights if cache is not None else None
    owned: dict[str, AdmissionRequest] = {}
    awaited: dict[str, object] = {}
    if flights is None:
        owned = dict(jobs)
    else:
        for key, request in jobs.items():
            leader, flight = flights.begin(key)
            if leader:
                owned[key] = request
            else:
                awaited[key] = flight

    outcomes: dict[str, tuple[AdmissionDecision, float, bool]] = {}
    if owned:
        try:
            if worker_count == 1 or (
                len(owned) == 1 and job_timeout is None
            ):
                for key, request in owned.items():
                    outcomes[key] = _compute_serial(
                        key,
                        request,
                        max_retries=max_retries,
                        retry_backoff=retry_backoff,
                        metrics=metrics,
                    )
            else:
                outcomes = _compute_pooled(
                    owned,
                    worker_count=worker_count,
                    job_timeout=job_timeout,
                    max_retries=max_retries,
                    retry_backoff=retry_backoff,
                    metrics=metrics,
                )
        finally:
            # The leader MUST publish every claimed key, decisions and
            # failures alike, or waiters would block forever.
            if flights is not None:
                for key in owned:
                    outcome = outcomes.get(key)
                    if outcome is None:
                        flights.finish(key, None)
                    else:
                        flights.finish(
                            key, outcome[0], degraded=outcome[2]
                        )

    coalesced: set[str] = set()
    for key, flight in awaited.items():
        started = time.perf_counter()
        decision, degraded = SingleFlight.wait(flight)
        if decision is None:
            # The leader finished without publishing a decision (its
            # batch died mid-compute); fall back to computing locally
            # rather than failing or waiting forever.
            outcomes[key] = _compute_serial(
                key,
                jobs[key],
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                metrics=metrics,
            )
        else:
            outcomes[key] = (
                decision,
                time.perf_counter() - started,
                degraded,
            )
            coalesced.add(key)
            if metrics is not None:
                metrics.record_coalesced()

    computed = 0
    for key in pending:
        decision, elapsed, degraded = outcomes[key]
        if cache is not None and not degraded and key not in coalesced:
            cache.put(key, decision)
        for position, index in enumerate(pending[key]):
            decisions[index] = replace(
                decision, request_id=request_list[index].request_id
            )
            if metrics is not None:
                # The first occurrence paid the computation; batch
                # duplicates (and coalesced keys, computed by another
                # batch) ride along as in-flight hits.
                metrics.record(
                    admitted=decision.admitted,
                    cache_hit=position > 0 or key in coalesced,
                    latency=elapsed if position == 0 else 0.0,
                )
        if metrics is not None and degraded:
            metrics.record_degraded()
        computed += 1
        if progress is not None:
            verdict = " (degraded)" if degraded else ""
            if key in coalesced:
                verdict = " (coalesced)"
            progress(
                f"{computed}/{len(jobs)} admission decisions "
                f"computed{verdict}"
            )

    missing = [i for i, d in enumerate(decisions) if d is None]
    if missing:  # pragma: no cover - guards the reassembly invariant
        raise ConfigurationError(
            f"batch admission lost {len(missing)} decision(s), "
            f"first index {missing[0]}"
        )
    return decisions  # type: ignore[return-value]
