"""Batch admission: fan cache misses over a process pool.

Mirrors the idiom of :mod:`repro.experiments.parallel`: jobs are pure
functions of picklable inputs, ``ProcessPoolExecutor.map`` preserves
submission order, and all randomness-free computation makes the result
independent of the worker count.  On top of that, the batch layer

* serves every request already in the cache without touching the pool,
* deduplicates identical content *within* the batch (each distinct key
  is computed exactly once, however often it recurs), and
* reassembles decisions in request order, so output is deterministic
  with caching on, off, or warm-started from disk.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.service.cache import DecisionCache
from repro.service.engine import compute_decision
from repro.service.hashing import request_key
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionDecision, AdmissionRequest

__all__ = ["admit_batch"]


def _compute_job(
    job: tuple[str, AdmissionRequest]
) -> tuple[str, AdmissionDecision, float]:
    """Worker body: (key, request) -> (key, decision, seconds spent)."""
    key, request = job
    started = time.perf_counter()
    decision = compute_decision(request, key=key)
    return key, decision, time.perf_counter() - started


def admit_batch(
    requests: Sequence[AdmissionRequest] | Iterable[AdmissionRequest],
    *,
    cache: DecisionCache | None = None,
    metrics: ServiceMetrics | None = None,
    workers: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[AdmissionDecision]:
    """Decide a batch of requests; returns decisions in request order.

    ``workers`` defaults to the CPU count; ``workers=1`` computes in
    process (no pool), which is fastest for small batches.  Duplicate
    request content inside the batch is computed once and accounted as
    cache hits for the duplicates.  ``progress`` (when given) receives
    one line per computed (non-cached) decision.
    """
    request_list = list(requests)
    worker_count = workers if workers is not None else (os.cpu_count() or 1)
    if worker_count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if not request_list:
        return []

    decisions: list[AdmissionDecision | None] = [None] * len(request_list)
    # key -> indices still needing a decision, in first-appearance order.
    pending: dict[str, list[int]] = {}
    for index, request in enumerate(request_list):
        started = time.perf_counter()
        key = request_key(request)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            decisions[index] = replace(
                cached, request_id=request.request_id
            )
            if metrics is not None:
                metrics.record(
                    admitted=cached.admitted,
                    cache_hit=True,
                    latency=time.perf_counter() - started,
                )
        else:
            pending.setdefault(key, []).append(index)

    jobs = [
        (key, request_list[indices[0]]) for key, indices in pending.items()
    ]
    if worker_count == 1 or len(jobs) == 1:
        outcomes = map(_compute_job, jobs)
    else:
        pool = ProcessPoolExecutor(max_workers=worker_count)
        outcomes = pool.map(
            _compute_job,
            jobs,
            chunksize=max(1, len(jobs) // (8 * worker_count)),
        )

    computed = 0
    try:
        for key, decision, elapsed in outcomes:
            if cache is not None:
                cache.put(key, decision)
            for position, index in enumerate(pending[key]):
                decisions[index] = replace(
                    decision, request_id=request_list[index].request_id
                )
                if metrics is not None:
                    # The first occurrence paid the computation; batch
                    # duplicates ride along as (in-flight) hits.
                    metrics.record(
                        admitted=decision.admitted,
                        cache_hit=position > 0,
                        latency=elapsed if position == 0 else 0.0,
                    )
            computed += 1
            if progress is not None:
                progress(
                    f"{computed}/{len(jobs)} admission decisions computed"
                )
    finally:
        if worker_count > 1 and len(jobs) > 1:
            pool.shutdown()

    missing = [i for i, d in enumerate(decisions) if d is None]
    if missing:  # pragma: no cover - guards the reassembly invariant
        raise ConfigurationError(
            f"batch admission lost {len(missing)} decision(s), "
            f"first index {missing[0]}"
        )
    return decisions  # type: ignore[return-value]
