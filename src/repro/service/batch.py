"""Batch admission: fan cache misses over a process pool.

Mirrors the idiom of :mod:`repro.experiments.parallel`: jobs are pure
functions of picklable inputs, and all randomness-free computation makes
the result independent of the worker count.  On top of that, the batch
layer

* serves every request already in the cache without touching the pool,
* deduplicates identical content *within* the batch (each distinct key
  is computed exactly once, however often it recurs),
* polices the pool: a job may be bounded by a wall-clock ``job_timeout``
  and is retried (with exponential backoff) when it times out, raises,
  or loses its worker process -- after ``max_retries`` failed attempts
  the batch *degrades* that one decision to a safe REJECT instead of
  hanging or failing the whole batch, and
* reassembles decisions in request order, so output is deterministic
  with caching on, off, or warm-started from disk.

Degraded decisions are never cached: the next batch retries the
computation from scratch.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.service.cache import DecisionCache
from repro.service.engine import compute_decision
from repro.service.hashing import request_key
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionDecision, AdmissionRequest

__all__ = ["admit_batch"]


def _compute_job(
    job: tuple[str, AdmissionRequest]
) -> tuple[str, AdmissionDecision, float]:
    """Worker body: (key, request) -> (key, decision, seconds spent)."""
    key, request = job
    started = time.perf_counter()
    decision = compute_decision(request, key=key)
    return key, decision, time.perf_counter() - started


def _degraded_decision(
    request: AdmissionRequest, key: str, reason: str
) -> AdmissionDecision:
    """A safe REJECT standing in for a decision the pool never produced.

    Admission control must fail *closed*: a system whose analysis could
    not be completed is not certified, so it is not admitted.  The
    rationale carries the failure so callers can distinguish a degraded
    verdict from an analytical rejection and retry later.
    """
    return AdmissionDecision(
        admitted=False,
        protocol=None,
        rationale=f"service degraded: {reason}",
        schedulable={p: False for p in request.protocols},
        task_bounds={},
        worst_bound_ratio=math.inf,
        key=key,
        system_name=request.system.name,
        request_id=request.request_id,
    )


def _compute_serial(
    key: str,
    request: AdmissionRequest,
    *,
    max_retries: int,
    retry_backoff: float,
    metrics: ServiceMetrics | None,
) -> tuple[AdmissionDecision, float, bool]:
    """In-process attempt ladder: (decision, seconds, degraded?).

    No pool means no timeout enforcement (a thread cannot interrupt its
    own computation); only the retry/degrade ladder applies.
    """
    attempt = 0
    while True:
        started = time.perf_counter()
        try:
            _key, decision, elapsed = _compute_job((key, request))
            return decision, elapsed, False
        except Exception as exc:  # noqa: BLE001 - degrade, don't crash
            if attempt >= max_retries:
                return (
                    _degraded_decision(
                        request,
                        key,
                        f"computation failed after {attempt + 1} "
                        f"attempt(s): {exc}",
                    ),
                    time.perf_counter() - started,
                    True,
                )
            attempt += 1
            if metrics is not None:
                metrics.record_retry()
            if retry_backoff:
                time.sleep(retry_backoff * (2 ** (attempt - 1)))


def _compute_pooled(
    jobs: Mapping[str, AdmissionRequest],
    *,
    worker_count: int,
    job_timeout: float | None,
    max_retries: int,
    retry_backoff: float,
    metrics: ServiceMetrics | None,
) -> dict[str, tuple[AdmissionDecision, float, bool]]:
    """Pool scheduler with per-job deadlines and a bounded retry queue.

    Jobs are submitted at most ``worker_count`` at a time so a job's
    submission instant approximates its start instant -- that is what
    makes the wall-clock ``job_timeout`` meaningful.  A timed-out
    future cannot be interrupted (the worker may be wedged in native
    code); it is *abandoned*: dropped from tracking, its slot written
    off, and the job resubmitted or degraded.  A broken pool (worker
    process died) is rebuilt and its in-flight jobs retried.
    """
    outcomes: dict[str, tuple[AdmissionDecision, float, bool]] = {}
    #: (key, attempt, earliest resubmission instant) awaiting a slot.
    queue: deque[tuple[str, int, float]] = deque(
        (key, 0, 0.0) for key in jobs
    )
    #: future -> (key, attempt, submission instant).
    in_flight: dict = {}
    abandoned = 0  # slots still occupied by timed-out computations

    def resolve_failure(key: str, attempt: int, reason: str) -> None:
        if attempt >= max_retries:
            outcomes[key] = (
                _degraded_decision(
                    jobs[key],
                    key,
                    f"{reason} (after {attempt + 1} attempt(s))",
                ),
                0.0,
                True,
            )
            return
        if metrics is not None:
            metrics.record_retry()
        delay = retry_backoff * (2 ** attempt) if retry_backoff else 0.0
        queue.append((key, attempt + 1, time.monotonic() + delay))

    pool = ProcessPoolExecutor(max_workers=worker_count)
    try:
        while queue or in_flight:
            # Keep the live part of the pool full; respect backoff.
            window = max(1, worker_count - abandoned)
            now = time.monotonic()
            backing_off: deque[tuple[str, int, float]] = deque()
            while queue and len(in_flight) < window:
                key, attempt, not_before = queue.popleft()
                if now < not_before:
                    backing_off.append((key, attempt, not_before))
                    continue
                future = pool.submit(_compute_job, (key, jobs[key]))
                in_flight[future] = (key, attempt, time.monotonic())
            queue.extend(backing_off)

            # Block until a completion, a deadline, or a backoff expiry.
            now = time.monotonic()
            wakeups = [nb for (_k, _a, nb) in queue if nb > now]
            if job_timeout is not None:
                wakeups.extend(
                    sub + job_timeout for (_k, _a, sub) in in_flight.values()
                )
            timeout = (
                max(0.0, min(wakeups) - now) if wakeups else None
            )
            if in_flight:
                done, _ = wait(
                    set(in_flight),
                    timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
            else:
                done = set()
                if timeout:
                    time.sleep(timeout)

            broken = False
            for future in done:
                key, attempt, _sub = in_flight.pop(future)
                try:
                    _key, decision, elapsed = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    resolve_failure(key, attempt, f"worker died: {exc}")
                except Exception as exc:  # noqa: BLE001 - degrade
                    resolve_failure(
                        key, attempt, f"computation failed: {exc}"
                    )
                else:
                    outcomes[key] = (decision, elapsed, False)

            if job_timeout is not None:
                now = time.monotonic()
                overdue = [
                    future
                    for future, (_k, _a, sub) in in_flight.items()
                    if now - sub >= job_timeout
                ]
                for future in overdue:
                    key, attempt, _sub = in_flight.pop(future)
                    if not future.cancel():
                        # Already running: the worker stays busy until
                        # (if ever) it finishes; write the slot off.
                        abandoned += 1
                    if metrics is not None:
                        metrics.record_timeout()
                    resolve_failure(
                        key,
                        attempt,
                        f"timed out after {job_timeout:g} s",
                    )

            if broken:
                # The pool is unusable; every remaining in-flight job
                # failed with it.  Rebuild and resubmit via the queue.
                for key, attempt, _sub in in_flight.values():
                    resolve_failure(key, attempt, "worker pool broke")
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=worker_count)
                abandoned = 0
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return outcomes


def admit_batch(
    requests: Sequence[AdmissionRequest] | Iterable[AdmissionRequest],
    *,
    cache: DecisionCache | None = None,
    metrics: ServiceMetrics | None = None,
    workers: int | None = None,
    progress: Callable[[str], None] | None = None,
    job_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
) -> list[AdmissionDecision]:
    """Decide a batch of requests; returns decisions in request order.

    ``workers`` defaults to the CPU count; ``workers=1`` computes in
    process (no pool), which is fastest for small batches.  Duplicate
    request content inside the batch is computed once and accounted as
    cache hits for the duplicates.  ``progress`` (when given) receives
    one line per computed (non-cached) decision.

    ``job_timeout`` bounds the wall-clock seconds any one decision may
    take on the pool; a job that exceeds it is abandoned (the hung
    worker is written off) and resubmitted.  Any failed attempt --
    timeout, raised exception, dead worker -- is retried up to
    ``max_retries`` times with exponential backoff starting at
    ``retry_backoff`` seconds; a job that exhausts its ladder yields a
    *degraded* REJECT decision (rationale prefixed
    ``service degraded:``) rather than hanging or failing the batch.
    Degraded decisions are never cached.  Timeout enforcement needs the
    pool: with ``workers=1`` only the retry/degrade ladder applies.
    """
    request_list = list(requests)
    worker_count = workers if workers is not None else (os.cpu_count() or 1)
    if worker_count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if job_timeout is not None and not (
        job_timeout > 0 and math.isfinite(job_timeout)
    ):
        raise ConfigurationError(
            f"job_timeout must be finite and > 0, got {job_timeout!r}"
        )
    if max_retries < 0:
        raise ConfigurationError(
            f"max_retries must be >= 0, got {max_retries}"
        )
    if retry_backoff < 0 or not math.isfinite(retry_backoff):
        raise ConfigurationError(
            f"retry_backoff must be finite and >= 0, got {retry_backoff!r}"
        )
    if not request_list:
        return []

    decisions: list[AdmissionDecision | None] = [None] * len(request_list)
    # key -> indices still needing a decision, in first-appearance order.
    pending: dict[str, list[int]] = {}
    for index, request in enumerate(request_list):
        started = time.perf_counter()
        key = request_key(request)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            decisions[index] = replace(
                cached, request_id=request.request_id
            )
            if metrics is not None:
                metrics.record(
                    admitted=cached.admitted,
                    cache_hit=True,
                    latency=time.perf_counter() - started,
                )
        else:
            pending.setdefault(key, []).append(index)

    jobs = {
        key: request_list[indices[0]] for key, indices in pending.items()
    }
    if worker_count == 1 or (len(jobs) == 1 and job_timeout is None):
        outcomes = {
            key: _compute_serial(
                key,
                request,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                metrics=metrics,
            )
            for key, request in jobs.items()
        }
    elif jobs:
        outcomes = _compute_pooled(
            jobs,
            worker_count=worker_count,
            job_timeout=job_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            metrics=metrics,
        )
    else:
        outcomes = {}

    computed = 0
    for key in pending:
        decision, elapsed, degraded = outcomes[key]
        if cache is not None and not degraded:
            cache.put(key, decision)
        for position, index in enumerate(pending[key]):
            decisions[index] = replace(
                decision, request_id=request_list[index].request_id
            )
            if metrics is not None:
                # The first occurrence paid the computation; batch
                # duplicates ride along as (in-flight) hits.
                metrics.record(
                    admitted=decision.admitted,
                    cache_hit=position > 0,
                    latency=elapsed if position == 0 else 0.0,
                )
        if metrics is not None and degraded:
            metrics.record_degraded()
        computed += 1
        if progress is not None:
            verdict = " (degraded)" if degraded else ""
            progress(
                f"{computed}/{len(jobs)} admission decisions "
                f"computed{verdict}"
            )

    missing = [i for i, d in enumerate(decisions) if d is None]
    if missing:  # pragma: no cover - guards the reassembly invariant
        raise ConfigurationError(
            f"batch admission lost {len(missing)} decision(s), "
            f"first index {missing[0]}"
        )
    return decisions  # type: ignore[return-value]
