"""Admission control: schedulability analysis served as a decision API.

The paper's analyses decide *offline* whether a distributed task set is
schedulable under DS/PM/MPM/RG; an online admission controller answers
exactly that query, at scale.  This package productizes the decision
procedure:

* :mod:`repro.service.requests` -- request/decision dataclasses with
  JSON(L) codecs;
* :mod:`repro.service.hashing` -- canonical, process-stable content
  keys (SHA-256 over canonical JSON);
* :mod:`repro.service.cache` -- a thread-safe LRU decision cache with
  stats and JSONL persistence for warm restarts;
* :mod:`repro.service.engine` -- the :class:`AdmissionController`
  (analyses + Section 6 advisor behind the cache);
* :mod:`repro.service.batch` -- batch admission over a process pool
  with deterministic output order;
* :mod:`repro.service.metrics` -- counters and latency percentiles.

Quickstart::

    from repro.service import AdmissionController, AdmissionRequest

    controller = AdmissionController()
    decision = controller.admit(AdmissionRequest(system=my_system))
    if decision.admitted:
        deploy(my_system, protocol=decision.protocol)
"""

from repro.service.batch import admit_batch
from repro.service.cache import CacheStats, DecisionCache
from repro.service.engine import AdmissionController, compute_decision
from repro.service.hashing import request_key, system_key
from repro.service.metrics import ServiceMetrics
from repro.service.requests import (
    ALL_PROTOCOLS,
    AdmissionDecision,
    AdmissionRequest,
    decision_from_dict,
    decision_to_dict,
    load_decisions_jsonl,
    load_requests_jsonl,
    request_from_dict,
    request_to_dict,
    save_decisions_jsonl,
)

__all__ = [
    "ALL_PROTOCOLS",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRequest",
    "CacheStats",
    "DecisionCache",
    "ServiceMetrics",
    "admit_batch",
    "compute_decision",
    "decision_from_dict",
    "decision_to_dict",
    "load_decisions_jsonl",
    "load_requests_jsonl",
    "request_from_dict",
    "request_key",
    "request_to_dict",
    "save_decisions_jsonl",
    "system_key",
]
