"""Admission control: schedulability analysis served as a decision API.

The paper's analyses decide *offline* whether a distributed task set is
schedulable under DS/PM/MPM/RG; an online admission controller answers
exactly that query, at scale.  This package productizes the decision
procedure:

* :mod:`repro.service.requests` -- request/decision dataclasses with
  JSON(L) codecs;
* :mod:`repro.service.hashing` -- canonical, process-stable content
  keys (SHA-256 over canonical JSON);
* :mod:`repro.service.cache` -- a thread-safe LRU decision cache with
  stats, JSONL persistence for warm restarts, and a single-flight
  table that collapses concurrent misses on one key;
* :mod:`repro.service.backends` -- pluggable cache backends behind the
  same interface (in-proc LRU, sqlite/WAL) via :func:`make_cache`;
* :mod:`repro.service.engine` -- the :class:`AdmissionController`
  (analyses + Section 6 advisor behind the cache);
* :mod:`repro.service.batch` -- batch admission over a process pool
  with deterministic output order;
* :mod:`repro.service.sharding` -- the consistent-hash ring that maps
  content keys to worker shards;
* :mod:`repro.service.frontend` -- the sharded asyncio frontend:
  bounded queues, tenant quotas, explicit shedding, retry-ladder
  degradation, and a JSONL-over-TCP server;
* :mod:`repro.service.loadgen` -- seeded open/closed-loop load
  generation with latency percentiles and a decision digest;
* :mod:`repro.service.metrics` -- counters and latency percentiles;
* :mod:`repro.service.durability` -- checksummed record framing,
  atomic snapshot writes, valid-prefix salvage and sqlite
  integrity-check/quarantine for every persistence path;
* :mod:`repro.service.supervision` -- per-shard circuit breakers
  (closed/open/half-open) that route traffic around failing shards;
* :mod:`repro.service.chaos` -- the service-plane chaos harness:
  seeded storage damage and shard failure with recovery oracles.

The optional **region tier** (:mod:`repro.regions`, re-exported here as
:class:`RegionTier`) sits above the decision cache: it maps request
*shapes* to precomputed feasibility regions and serves repeat-shape
admissions analysis-free.  Enable with ``region_backend=`` on
:class:`AdmissionController` / :class:`FrontendConfig`; it is off by
default.

Quickstart::

    from repro.service import AdmissionController, AdmissionRequest

    controller = AdmissionController()
    decision = controller.admit(AdmissionRequest(system=my_system))
    if decision.admitted:
        deploy(my_system, protocol=decision.protocol)
"""

from repro.service.backends import SqliteDecisionCache, make_cache
from repro.service.batch import admit_batch
from repro.service.cache import CacheStats, DecisionCache, SingleFlight
from repro.service.durability import RecoveryReport
from repro.service.engine import AdmissionController, compute_decision
from repro.service.frontend import (
    AdmissionFrontend,
    FrontendConfig,
    TenantQuota,
    serve_frontend,
)
from repro.service.hashing import request_key, system_key
from repro.service.loadgen import LoadgenConfig, LoadReport, run_campaign, run_load
from repro.service.metrics import ServiceMetrics
from repro.service.sharding import ShardRing
from repro.service.supervision import BreakerConfig, CircuitBreaker
from repro.service.requests import (
    ALL_PROTOCOLS,
    AdmissionDecision,
    AdmissionRequest,
    decision_from_dict,
    decision_to_dict,
    load_decisions_jsonl,
    load_requests_jsonl,
    request_from_dict,
    request_to_dict,
    save_decisions_jsonl,
)

__all__ = [
    "ALL_PROTOCOLS",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionFrontend",
    "AdmissionRequest",
    "BreakerConfig",
    "CacheStats",
    "CircuitBreaker",
    "DecisionCache",
    "FrontendConfig",
    "LoadReport",
    "LoadgenConfig",
    "RecoveryReport",
    "RegionTier",
    "ServiceChaosReport",
    "ServiceMetrics",
    "ShardRing",
    "SingleFlight",
    "SqliteDecisionCache",
    "TenantQuota",
    "admit_batch",
    "compute_decision",
    "decision_from_dict",
    "decision_to_dict",
    "load_decisions_jsonl",
    "load_requests_jsonl",
    "make_cache",
    "request_from_dict",
    "request_key",
    "request_to_dict",
    "run_campaign",
    "run_load",
    "run_service_chaos",
    "save_decisions_jsonl",
    "serve_frontend",
    "system_key",
]


def __getattr__(name: str):
    # Lazy: repro.regions.tier imports repro.service submodules, so a
    # top-level import here would be circular.  The chaos harness is
    # lazy too -- it pulls in the region tier.
    if name == "RegionTier":
        from repro.regions.tier import RegionTier

        return RegionTier
    if name in ("ServiceChaosReport", "run_service_chaos"):
        from repro.service import chaos

        return getattr(chaos, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
