"""A faulty channel wrapping any signal-latency model.

:class:`FaultyChannel` decorates a
:class:`~repro.sim.network.SignalLatencyModel` with the signal-level
faults of a :class:`~repro.faults.plane.FaultPlane`: per cross-processor
delivery it may drop the signal, deliver it twice, or delay it past
later traffic.  Local (same-processor) deliveries pass through
untouched -- a scheduler signalling itself involves no network.

The channel only *decides*; it returns a
:class:`~repro.sim.network.DeliveryPlan` and leaves recording (which
needs the send instant and the signal's identity) and recovery (the
retransmit watchdog) to the kernel.  Decisions draw from the plane's
per-category streams in send order, so they are reproducible and a
category at rate zero costs nothing.
"""

from __future__ import annotations

from repro.faults.plane import FaultPlane
from repro.model.task import ProcessorId
from repro.sim.network import DeliveryPlan, SignalLatencyModel
from repro.timebase import Timebase, TimeValue

__all__ = ["FaultyChannel"]


class FaultyChannel(SignalLatencyModel):
    """Drop, duplicate or reorder signals on top of any latency model."""

    def __init__(self, inner: SignalLatencyModel, plane: FaultPlane) -> None:
        self.inner = inner
        self.plane = plane

    def delay(self, source: ProcessorId, destination: ProcessorId) -> float:
        return self.inner.delay(source, destination)

    def delay_in(
        self,
        source: ProcessorId,
        destination: ProcessorId,
        timebase: Timebase,
    ) -> TimeValue:
        return self.inner.delay_in(source, destination, timebase)

    def plan_in(
        self,
        source: ProcessorId,
        destination: ProcessorId,
        timebase: Timebase,
    ) -> DeliveryPlan:
        base = self.inner.delay_in(source, destination, timebase)
        if source == destination:
            return DeliveryPlan((base,))
        plane = self.plane
        if plane.drop_signal():
            return DeliveryPlan((), dropped=True)
        if plane.duplicate_signal():
            # Both copies take the channel's nominal delay; FIFO order
            # within the signal event class keeps the run deterministic.
            return DeliveryPlan((base, base), duplicated=True)
        if plane.reorder_signal():
            # Delivered late enough for traffic sent after it to arrive
            # first -- the observable essence of reordering.
            return DeliveryPlan(
                (base + plane.reorder_delay,), reordered=True
            )
        return DeliveryPlan((base,))
