"""Serializable fault-injection and recovery configurations.

A :class:`FaultConfig` is the *description* of a fault environment --
JSON-friendly, hashable, picklable -- that the CLI, the fuzz campaign
and the chaos study pass around, exactly like
:class:`repro.clocks.ClockConfig` describes a clock environment.  The
simulation kernel turns it into a concrete, stateful
:class:`repro.faults.plane.FaultPlane` per run.

Injection knobs and recovery knobs live in one config on purpose: which
faults a run survives depends on both, and the chaos campaign sweeps
them together (the same drop rate with and without the watchdog is the
experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "OVERRUN_POLICIES",
    "FaultConfig",
    "fault_config_from_dict",
    "fault_config_to_dict",
]

#: Injected fault categories, in teaching order.
FAULT_KINDS: tuple[str, ...] = (
    "drop",
    "duplicate",
    "reorder",
    "timer-loss",
    "crash",
    "overrun",
)

#: What the kernel does when an instance exhausts its WCET budget.
OVERRUN_POLICIES: tuple[str, ...] = ("off", "throttle", "abort")

_FORMAT = "repro-fault-config-v1"

_RATE_FIELDS = (
    "drop_rate",
    "duplicate_rate",
    "reorder_rate",
    "timer_loss_rate",
    "overrun_rate",
)


@dataclass(frozen=True)
class FaultConfig:
    """One fault environment: what breaks, and what fights back.

    Injection attributes
    --------------------
    drop_rate / duplicate_rate / reorder_rate:
        Per-signal probabilities that a cross-processor synchronization
        signal is lost, delivered twice, or delayed past later traffic
        (by ``reorder_delay``).  Local (same-processor) deliveries are
        never faulted: they involve no network.
    reorder_delay:
        Extra delay added to a reordered signal's delivery.
    timer_loss_rate:
        Per-timer probability that a protocol timer (PM phase release,
        MPM relay, RG guard wake-up) silently fails to fire.
    crash_start / crash_duration / crash_every / crash_processor:
        Crash-restart windows: the ``crash_processor``-th processor (in
        sorted order, modulo the processor count) goes dark during
        ``[crash_start, crash_start + crash_duration)``, repeating every
        ``crash_every`` time units when that is positive.  A negative
        ``crash_start`` means no crashes.  While dark: in-flight
        instances and pending timers on the processor are lost, and
        releases/signals targeting it queue until restart.
    overrun_rate / overrun_factor:
        Per-instance probability that the actual demand is the WCET
        times ``overrun_factor`` (generalizes
        :class:`repro.sim.variation.OverrunInjection` to a seeded,
        policed stream).

    Recovery attributes
    -------------------
    watchdog / ack_timeout / max_retransmits:
        Ack/retransmit watchdog for synchronization signals: when every
        copy of a signal is lost in transit, the sender retransmits
        after ``ack_timeout``, up to ``max_retransmits`` times.  Safe
        under RG -- the guard makes delivery idempotent -- while DS
        double-releases on a duplicate unless suppression is on too.
    suppress_duplicates:
        Kernel-level duplicate-release suppression: a release of an
        already-released instance is absorbed (and recorded as
        recovered) instead of standing as an unrecovered double release.
    overrun_policy:
        ``"off"`` (overruns run to completion, recorded as unrecovered),
        ``"throttle"`` (demand capped at the WCET budget; the instance
        completes on budget) or ``"abort"`` (the instance is killed at
        budget exhaustion: no completion, no signal downstream).
    lose_idle_points:
        Disable idle-point detection, degrading RG to rule-1-only
        operation (guards still enforce the period separation; held
        releases go only when the guard timer fires).

    seed:
        Base seed of the per-category decision streams.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay: float = 1.0
    timer_loss_rate: float = 0.0
    crash_start: float = -1.0
    crash_duration: float = 0.0
    crash_every: float = 0.0
    crash_processor: int = 0
    overrun_rate: float = 0.0
    overrun_factor: float = 2.0
    watchdog: bool = False
    ack_timeout: float = 1.0
    max_retransmits: int = 3
    suppress_duplicates: bool = False
    overrun_policy: str = "off"
    lose_idle_points: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0) or not math.isfinite(value):
                raise ConfigurationError(
                    f"fault config {name} must be in [0, 1], got {value!r}"
                )
        for name in ("reorder_delay", "ack_timeout"):
            value = getattr(self, name)
            if value <= 0 or not math.isfinite(value):
                raise ConfigurationError(
                    f"fault config {name} must be finite and > 0, "
                    f"got {value!r}"
                )
        if not math.isfinite(self.crash_start):
            raise ConfigurationError(
                f"crash_start must be finite, got {self.crash_start!r}"
            )
        if self.crash_duration < 0 or not math.isfinite(self.crash_duration):
            raise ConfigurationError(
                f"crash_duration must be finite and >= 0, "
                f"got {self.crash_duration!r}"
            )
        if self.crash_every < 0 or not math.isfinite(self.crash_every):
            raise ConfigurationError(
                f"crash_every must be finite and >= 0, "
                f"got {self.crash_every!r}"
            )
        if self.crashes and self.crash_duration == 0:
            raise ConfigurationError(
                "crash windows need crash_duration > 0"
            )
        if self.crashes and self.crash_every:
            if self.crash_every <= self.crash_duration:
                raise ConfigurationError(
                    f"crash_every ({self.crash_every!r}) must exceed "
                    f"crash_duration ({self.crash_duration!r}): the "
                    f"processor must come back up between crashes"
                )
        if self.crash_processor < 0:
            raise ConfigurationError(
                f"crash_processor must be >= 0, got {self.crash_processor!r}"
            )
        if self.overrun_factor <= 1.0 or not math.isfinite(
            self.overrun_factor
        ):
            raise ConfigurationError(
                f"overrun_factor must be finite and > 1, "
                f"got {self.overrun_factor!r} (a factor <= 1 is not an "
                f"overrun)"
            )
        if self.max_retransmits < 0:
            raise ConfigurationError(
                f"max_retransmits must be >= 0, "
                f"got {self.max_retransmits!r}"
            )
        if self.overrun_policy not in OVERRUN_POLICIES:
            raise ConfigurationError(
                f"unknown overrun_policy {self.overrun_policy!r}; "
                f"known: {', '.join(OVERRUN_POLICIES)}"
            )

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def crashes(self) -> bool:
        """True when the config schedules at least one crash window."""
        return self.crash_start >= 0

    @property
    def is_null(self) -> bool:
        """True when the config injects nothing.

        Recovery knobs do not affect nullness: they only ever react to
        injected faults (overrun policing additionally reacts to
        overruns from a user-supplied execution model; under the default
        deterministic execution a null config leaves every run
        byte-identical to a run without a fault plane).
        """
        return (
            all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
            and not self.crashes
            and not self.lose_idle_points
        )

    @property
    def signal_faults_only(self) -> bool:
        """True when only the channel faults (drop/duplicate/reorder)
        are active -- the regime the watchdog + suppression recovery
        pair fully covers, and the ``rg-recovery-soundness`` oracle's
        applicability condition."""
        return (
            (self.drop_rate > 0 or self.duplicate_rate > 0
             or self.reorder_rate > 0)
            and self.timer_loss_rate == 0.0
            and self.overrun_rate == 0.0
            and not self.crashes
            and not self.lose_idle_points
        )

    @property
    def full_signal_recovery(self) -> bool:
        """True when both signal-recovery mechanisms are armed."""
        return self.watchdog and self.suppress_duplicates

    def with_recovery(self, enabled: bool = True) -> "FaultConfig":
        """Copy with every recovery mechanism switched on or off.

        The chaos study sweeps exactly this toggle: same faults, with
        and without the recovery layer.
        """
        return replace(
            self,
            watchdog=enabled,
            suppress_duplicates=enabled,
            overrun_policy="throttle" if enabled else "off",
        )

    @property
    def label(self) -> str:
        """Compact label for reports and campaign output."""
        if self.is_null:
            parts = ["null"]
        else:
            parts = []
            if self.drop_rate:
                parts.append(f"drop({self.drop_rate:g})")
            if self.duplicate_rate:
                parts.append(f"dup({self.duplicate_rate:g})")
            if self.reorder_rate:
                parts.append(
                    f"reorder({self.reorder_rate:g},{self.reorder_delay:g})"
                )
            if self.timer_loss_rate:
                parts.append(f"timerloss({self.timer_loss_rate:g})")
            if self.crashes:
                parts.append(
                    f"crash(@{self.crash_start:g},{self.crash_duration:g}"
                    + (f",every={self.crash_every:g})" if self.crash_every
                       else ")")
                )
            if self.overrun_rate:
                parts.append(
                    f"overrun({self.overrun_rate:g}x{self.overrun_factor:g})"
                )
            if self.lose_idle_points:
                parts.append("idleloss")
        recovery = []
        if self.watchdog:
            recovery.append("wd")
        if self.suppress_duplicates:
            recovery.append("dedup")
        if self.overrun_policy != "off":
            recovery.append(self.overrun_policy)
        suffix = f"+{'+'.join(recovery)}" if recovery else ""
        return f"faults={'+'.join(parts)}{suffix}"


def fault_config_to_dict(config: FaultConfig) -> dict[str, Any]:
    """A JSON-ready description of a fault config (lossless)."""
    return {
        "format": _FORMAT,
        "drop_rate": config.drop_rate,
        "duplicate_rate": config.duplicate_rate,
        "reorder_rate": config.reorder_rate,
        "reorder_delay": config.reorder_delay,
        "timer_loss_rate": config.timer_loss_rate,
        "crash_start": config.crash_start,
        "crash_duration": config.crash_duration,
        "crash_every": config.crash_every,
        "crash_processor": config.crash_processor,
        "overrun_rate": config.overrun_rate,
        "overrun_factor": config.overrun_factor,
        "watchdog": config.watchdog,
        "ack_timeout": config.ack_timeout,
        "max_retransmits": config.max_retransmits,
        "suppress_duplicates": config.suppress_duplicates,
        "overrun_policy": config.overrun_policy,
        "lose_idle_points": config.lose_idle_points,
        "seed": config.seed,
    }


def fault_config_from_dict(data: Mapping[str, Any]) -> FaultConfig:
    """Rebuild a config from :func:`fault_config_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ConfigurationError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    return FaultConfig(
        drop_rate=float(data.get("drop_rate", 0.0)),
        duplicate_rate=float(data.get("duplicate_rate", 0.0)),
        reorder_rate=float(data.get("reorder_rate", 0.0)),
        reorder_delay=float(data.get("reorder_delay", 1.0)),
        timer_loss_rate=float(data.get("timer_loss_rate", 0.0)),
        crash_start=float(data.get("crash_start", -1.0)),
        crash_duration=float(data.get("crash_duration", 0.0)),
        crash_every=float(data.get("crash_every", 0.0)),
        crash_processor=int(data.get("crash_processor", 0)),
        overrun_rate=float(data.get("overrun_rate", 0.0)),
        overrun_factor=float(data.get("overrun_factor", 2.0)),
        watchdog=bool(data.get("watchdog", False)),
        ack_timeout=float(data.get("ack_timeout", 1.0)),
        max_retransmits=int(data.get("max_retransmits", 3)),
        suppress_duplicates=bool(data.get("suppress_duplicates", False)),
        overrun_policy=str(data.get("overrun_policy", "off")),
        lose_idle_points=bool(data.get("lose_idle_points", False)),
        seed=int(data.get("seed", 0)),
    )
