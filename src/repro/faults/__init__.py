"""Deterministic fault injection and recovery for the simulator.

The paper's protocols hang off one fragile primitive -- the
inter-processor synchronization signal (DS, MPM, RG) or a trusted local
timer (PM) -- and assume it never fails.  This package drops that
assumption, deterministically: a :class:`FaultConfig` describes which
faults to inject (signal drop/duplicate/reorder, timer loss, processor
crash-restart windows, WCET overruns) and which recovery mechanisms to
arm (ack/retransmit watchdog, duplicate-release suppression, overrun
policing, idle-point loss tolerance); a :class:`FaultPlane` turns the
config into seeded per-category decision streams plus a
:class:`FaultLog` of everything that happened; a :class:`FaultyChannel`
wraps any :class:`~repro.sim.network.SignalLatencyModel` with the
signal-level faults.

Everything is reproducible: the same config and seed produce the same
faults, the same recoveries and the same trace, under both the float and
the exact timebase.  A config whose :attr:`FaultConfig.is_null` is true
injects nothing and leaves the simulation byte-identical to a run
without a fault plane (the ``fault-free-identity`` oracle).

See ``docs/faults.md`` for the fault model and which protocol survives
which fault.
"""

from repro.faults.channel import FaultyChannel
from repro.faults.config import (
    FAULT_KINDS,
    OVERRUN_POLICIES,
    FaultConfig,
    fault_config_from_dict,
    fault_config_to_dict,
)
from repro.faults.plane import (
    VIOLATION_KINDS,
    FaultEvent,
    FaultLog,
    FaultPlane,
)

__all__ = [
    "FAULT_KINDS",
    "OVERRUN_POLICIES",
    "VIOLATION_KINDS",
    "FaultConfig",
    "FaultEvent",
    "FaultLog",
    "FaultPlane",
    "FaultyChannel",
    "fault_config_from_dict",
    "fault_config_to_dict",
]
