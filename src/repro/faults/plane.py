"""The stateful fault plane: seeded decisions plus the fault log.

One :class:`FaultPlane` serves one simulation run.  It owns an
independent ``numpy`` generator per fault category -- spawned
deterministically from the config seed, consumed in kernel event order
-- so the same config over the same workload reproduces the same faults,
and enabling one category never perturbs the draws of another.  A
category at rate zero makes *no* draws at all, which is what keeps a
null-rate plane byte-identical to no plane (the ``fault-free-identity``
oracle) and essentially free (the fault-overhead benchmark's gate).

Every injected fault and every recovery action is recorded as a
:class:`FaultEvent` on the plane's :class:`FaultLog`.  The log is the
single source of truth for the observability layer: per-kind counters
and recovery latencies feed :mod:`repro.sim.metrics`, and the exclusion
sets feed the fault-aware :mod:`repro.sim.trace_validation` so that a
*documented* dropped signal or crash window is not reported as a
spurious missing-release error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.faults.config import FaultConfig
from repro.model.task import ProcessorId, SubtaskId
from repro.sim.variation import ExecutionModel
from repro.timebase import Timebase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.tracing import InstanceKey

__all__ = ["VIOLATION_KINDS", "FaultEvent", "FaultLog", "FaultPlane"]

#: Event kinds that stand for a lost guarantee when unrecovered.  The
#: others ("signal-duplicate", "signal-reorder", "signal-retransmit",
#: "crash", "restart", "idle-loss") are context: they describe pressure
#: on the protocol, not a broken promise by themselves.
VIOLATION_KINDS: frozenset[str] = frozenset(
    {
        "signal-drop",
        "timer-loss",
        "crash-loss",
        "crash-timer-loss",
        "crash-defer",
        "duplicate-release",
        "overrun",
        "overrun-abort",
    }
)

# Per-category stream indices; spawning `default_rng([seed, index])`
# gives independent, reproducible streams per category.
_STREAM_DROP = 1
_STREAM_DUPLICATE = 2
_STREAM_REORDER = 3
_STREAM_TIMER = 4
_STREAM_OVERRUN = 5


@dataclass
class FaultEvent:
    """One injected fault or recovery action.

    ``recovered`` flips to True when a recovery mechanism absorbed the
    fault (a retransmitted copy delivered, a duplicate suppressed, a
    deferred release performed at restart, an overrun policed);
    ``recovery_time`` then holds the instant recovery completed.
    """

    kind: str
    time: float
    sid: SubtaskId | None = None
    instance: int | None = None
    processor: ProcessorId | None = None
    detail: str = ""
    recovered: bool = False
    recovery_time: float | None = None

    @property
    def recovery_latency(self) -> float | None:
        """Time from injection to recovery, None while unrecovered."""
        if not self.recovered or self.recovery_time is None:
            return None
        return self.recovery_time - self.time

    @property
    def counts_as_violation(self) -> bool:
        """True when this event stands as a lost guarantee."""
        return self.kind in VIOLATION_KINDS and not self.recovered

    def describe(self) -> str:
        """One-line human-readable rendering."""
        where = ""
        if self.sid is not None:
            where = f" {self.sid}#{self.instance}"
        elif self.processor is not None:
            where = f" {self.processor}"
        status = "recovered" if self.recovered else "unrecovered"
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{self.time}] {self.kind}{where}: {status}{detail}"


@dataclass
class FaultLog:
    """Everything the fault plane did during one run."""

    events: list[FaultEvent] = field(default_factory=list)

    def note(
        self,
        kind: str,
        time: float,
        *,
        sid: SubtaskId | None = None,
        instance: int | None = None,
        processor: ProcessorId | None = None,
        detail: str = "",
        recovered: bool = False,
        recovery_time: float | None = None,
    ) -> FaultEvent:
        """Append and return one event."""
        event = FaultEvent(
            kind=kind,
            time=time,
            sid=sid,
            instance=instance,
            processor=processor,
            detail=detail,
            recovered=recovered,
            recovery_time=recovery_time,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Summaries (feed sim.metrics)
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Number of events per kind."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def events_of(self, *kinds: str) -> list[FaultEvent]:
        """Events of the given kinds, in record order."""
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def recovered_count(self) -> int:
        """Events a recovery mechanism absorbed."""
        return sum(1 for event in self.events if event.recovered)

    def unrecovered_violations(self) -> int:
        """Unrecovered events that stand for a lost guarantee."""
        return sum(1 for event in self.events if event.counts_as_violation)

    def recovery_latencies(self) -> list[float]:
        """Injection-to-recovery latencies of every recovered event."""
        return [
            latency
            for event in self.events
            if (latency := event.recovery_latency) is not None
        ]

    # ------------------------------------------------------------------
    # Exclusion sets (feed the fault-aware trace validator)
    # ------------------------------------------------------------------
    def lost_instances(self) -> "set[InstanceKey]":
        """Instances that were released but legitimately never complete:
        wiped by a crash or killed by the abort policy."""
        return {
            (event.sid, event.instance)
            for event in self.events
            if event.kind in ("crash-loss", "overrun-abort")
            and event.sid is not None
        }

    def lost_release_chains(self) -> dict[SubtaskId, int]:
        """Per subtask, the smallest instance index from which releases
        may legitimately be missing because a timer that would have
        produced them was lost (randomly or to a crash).

        PM's release timers reschedule themselves from within the fired
        callback, so one lost timer for ``(sid, m)`` kills every release
        of ``sid`` from instance ``m`` on.
        """
        chains: dict[SubtaskId, int] = {}
        for event in self.events:
            if event.kind not in ("timer-loss", "crash-timer-loss"):
                continue
            if event.sid is None or event.instance is None:
                continue
            known = chains.get(event.sid)
            if known is None or event.instance < known:
                chains[event.sid] = event.instance
        return chains

    def lost_instance_times(self) -> "dict[InstanceKey, float]":
        """When each released-but-doomed instance stopped existing.

        The fault-aware validator treats these instants as effective
        completions: a crashed or aborted instance stops competing for
        its processor, so segments running after its death are not
        priority violations.
        """
        out: "dict[InstanceKey, float]" = {}
        for event in self.events:
            if event.kind in ("crash-loss", "overrun-abort") and (
                event.sid is not None and event.instance is not None
            ):
                key = (event.sid, event.instance)
                if key not in out or event.time < out[key]:
                    out[key] = event.time
        return out

    def overrun_instances(self) -> "set[InstanceKey]":
        """Instances whose demand was deliberately inflated past the
        WCET (conservation-check excuse when the policy is ``"off"``)."""
        return {
            (event.sid, event.instance)
            for event in self.events
            if event.kind == "overrun" and event.sid is not None
        }

    def describe(self) -> str:
        """Multi-line summary for CLI output."""
        if not self.events:
            return "no faults injected"
        lines = [
            f"{len(self.events)} fault events, "
            f"{self.recovered_count()} recovered, "
            f"{self.unrecovered_violations()} unrecovered violations"
        ]
        for kind, count in sorted(self.counts().items()):
            lines.append(f"  {kind}: {count}")
        return "\n".join(lines)


class FaultPlane:
    """Seeded fault decisions for one simulation run.

    The kernel consults the plane at each decision point (one per signal
    transmission, timer installation, instance release); decisions come
    from per-category streams, so runs are reproducible and categories
    are independent.  A category at rate zero short-circuits without
    drawing.
    """

    def __init__(self, config: FaultConfig, *, timebase: Timebase) -> None:
        self.config = config
        self.timebase = timebase
        self.log = FaultLog()
        seed = config.seed
        self._drop_rng = (
            np.random.default_rng([seed, _STREAM_DROP])
            if config.drop_rate > 0
            else None
        )
        self._duplicate_rng = (
            np.random.default_rng([seed, _STREAM_DUPLICATE])
            if config.duplicate_rate > 0
            else None
        )
        self._reorder_rng = (
            np.random.default_rng([seed, _STREAM_REORDER])
            if config.reorder_rate > 0
            else None
        )
        self._timer_rng = (
            np.random.default_rng([seed, _STREAM_TIMER])
            if config.timer_loss_rate > 0
            else None
        )
        self._overrun_rng = (
            np.random.default_rng([seed, _STREAM_OVERRUN])
            if config.overrun_rate > 0
            else None
        )
        #: Config durations converted once into the kernel's timebase.
        self.reorder_delay = timebase.convert(config.reorder_delay)
        self.ack_timeout = timebase.convert(config.ack_timeout)

    # ------------------------------------------------------------------
    # Channel decisions (consumed by FaultyChannel, in send order)
    # ------------------------------------------------------------------
    def drop_signal(self) -> bool:
        if self._drop_rng is None:
            return False
        return bool(self._drop_rng.random() < self.config.drop_rate)

    def duplicate_signal(self) -> bool:
        if self._duplicate_rng is None:
            return False
        return bool(
            self._duplicate_rng.random() < self.config.duplicate_rate
        )

    def reorder_signal(self) -> bool:
        if self._reorder_rng is None:
            return False
        return bool(self._reorder_rng.random() < self.config.reorder_rate)

    # ------------------------------------------------------------------
    # Kernel decisions
    # ------------------------------------------------------------------
    def lose_timer(self) -> bool:
        if self._timer_rng is None:
            return False
        return bool(self._timer_rng.random() < self.config.timer_loss_rate)

    def overrun_instance(self) -> bool:
        if self._overrun_rng is None:
            return False
        return bool(self._overrun_rng.random() < self.config.overrun_rate)

    @property
    def has_crashes(self) -> bool:
        return self.config.crashes

    def crash_windows(
        self, processors: Sequence[ProcessorId], horizon: float
    ) -> list[tuple[ProcessorId, float, float]]:
        """Concrete ``(processor, start, end)`` crash windows within the
        horizon, in start order, already in the kernel's timebase."""
        config = self.config
        if not config.crashes or not processors:
            return []
        ordered = sorted(processors)
        target = ordered[config.crash_processor % len(ordered)]
        convert = self.timebase.convert
        start = convert(config.crash_start)
        duration = convert(config.crash_duration)
        step = convert(config.crash_every) if config.crash_every else None
        windows: list[tuple[ProcessorId, float, float]] = []
        while start < horizon:
            windows.append((target, start, start + duration))
            if step is None:
                break
            start = start + step
        return windows

    # ------------------------------------------------------------------
    # Execution-model wrapping (overrun injection)
    # ------------------------------------------------------------------
    def wrap_execution(self, model: ExecutionModel) -> ExecutionModel:
        """The model with this plane's overrun stream layered on top.

        Returns ``model`` unchanged at rate zero, keeping the zero-rate
        path free of indirection.
        """
        if self._overrun_rng is None:
            return model
        return _OverrunStream(model, self)


class _OverrunStream(ExecutionModel):
    """Inflate randomly selected instances' demand past their WCET.

    Works in raw (pre-timebase) float arithmetic like every execution
    model; the kernel converts the result and polices it against the
    converted budget.
    """

    def __init__(self, inner: ExecutionModel, plane: FaultPlane) -> None:
        self.inner = inner
        self.plane = plane

    def duration(self, sid: SubtaskId, instance: int, wcet: float) -> float:
        base = self.inner.duration(sid, instance, wcet)
        if self.plane.overrun_instance():
            return base * self.plane.config.overrun_factor
        return base


def merge_counts(logs: Iterable[FaultLog]) -> dict[str, int]:
    """Aggregate per-kind counts over several runs' logs."""
    totals: dict[str, int] = {}
    for log in logs:
        for kind, count in log.counts().items():
            totals[kind] = totals.get(kind, 0) + count
    return totals
