"""Random distributions used by the synthetic workload generator.

Kept separate from the generator so the statistical ingredients can be
tested (and reused) in isolation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["truncated_exponential", "split_utilization"]


def truncated_exponential(
    rng: np.random.Generator,
    low: float,
    high: float,
    scale: float,
    size: int | None = None,
) -> float | np.ndarray:
    """Sample from an exponential distribution truncated to [low, high].

    The paper draws task periods this way ("the probability density
    function of task period is a truncated exponential function"), which
    produces more variation than a uniform draw over the same range:
    short periods are much more likely than long ones.

    Sampling is by inverse CDF, exact for the truncated distribution --
    no rejection loop, so the cost is deterministic.
    """
    if not 0 < low <= high:
        raise ConfigurationError(f"need 0 < low <= high, got {low}..{high}")
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    # CDF of Exp(scale) between the truncation points.
    cdf_low = -math.expm1(-low / scale)
    cdf_high = -math.expm1(-high / scale)
    span = cdf_high - cdf_low
    u = rng.uniform(0.0, 1.0, size=size)
    # Inverse CDF: x = -scale * log(1 - (cdf_low + u * span)).
    values = -scale * np.log1p(-(cdf_low + u * span))
    # Guard the boundaries against float rounding.
    values = np.clip(values, low, high)
    if size is None:
        return float(values)
    return values


def split_utilization(
    rng: np.random.Generator,
    total: float,
    parts: int,
    weight_min: float = 0.001,
    weight_max: float = 1.0,
) -> list[float]:
    """Split ``total`` utilization among ``parts`` subtasks, paper-style.

    Each part draws a weight uniformly from [weight_min, weight_max] and
    receives ``total * weight / sum(weights)`` -- exactly the procedure
    of Section 5.1.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1, got {parts}")
    if total < 0:
        raise ConfigurationError(f"total must be >= 0, got {total}")
    if not 0 < weight_min <= weight_max:
        raise ConfigurationError(
            f"need 0 < weight_min <= weight_max, got {weight_min}..{weight_max}"
        )
    weights = rng.uniform(weight_min, weight_max, size=parts)
    return [total * float(w) / float(weights.sum()) for w in weights]
