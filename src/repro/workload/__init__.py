"""Synthetic workloads (§5.1) and the paper's worked examples."""

from repro.workload.config import PAPER_GRID, WorkloadConfig, paper_grid
from repro.workload.distributions import split_utilization, truncated_exponential
from repro.workload.examples import example_two, monitor_task_example
from repro.workload.generator import generate_batch, generate_system

__all__ = [
    "PAPER_GRID",
    "WorkloadConfig",
    "example_two",
    "generate_batch",
    "generate_system",
    "monitor_task_example",
    "paper_grid",
    "split_utilization",
    "truncated_exponential",
]
