"""Configuration of the paper's synthetic workload generator (§5.1).

A *configuration* is the paper's 2-tuple ``(N, U)``: the number of
subtasks per task and the per-processor utilization.  Everything else --
4 processors, 12 tasks, periods truncated-exponentially distributed in
[100, 10000], PD-monotonic priorities -- is held fixed in the paper and
parameterized here with those values as defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = ["WorkloadConfig", "PAPER_GRID", "paper_grid"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic-system family.

    Attributes
    ----------
    subtasks_per_task:
        The paper's ``N`` (2..8 in the evaluation grid).
    utilization:
        The paper's ``U`` as a fraction (0.5..0.9 in the grid): the total
        utilization of *every* processor.
    processors / tasks:
        Fixed at 4 and 12 in the paper.
    period_min / period_max / period_scale:
        Task periods are exponentially distributed, truncated to
        ``[period_min, period_max]``.  The paper does not state the rate;
        ``period_scale`` (the exponential's mean before truncation)
        defaults to a third of the range, which yields the "more
        variation than uniform" spread the paper asks for.
    weight_min / weight_max:
        The per-subtask random numbers used to split each processor's
        utilization (0.001..1 in the paper).
    random_phases:
        When True, each task's phase is drawn uniformly from
        ``[0, period)`` -- the paper does this for the average-EER
        simulations.  Analyses are phase-independent.
    """

    subtasks_per_task: int
    utilization: float
    processors: int = 4
    tasks: int = 12
    period_min: float = 100.0
    period_max: float = 10_000.0
    period_scale: float = field(default=3300.0)
    weight_min: float = 0.001
    weight_max: float = 1.0
    priority_policy: str = "pd-monotonic"
    random_phases: bool = False

    def __post_init__(self) -> None:
        if self.subtasks_per_task < 1:
            raise ConfigurationError(
                f"subtasks_per_task must be >= 1, got {self.subtasks_per_task}"
            )
        if not 0 < self.utilization <= 1:
            raise ConfigurationError(
                f"utilization must be in (0, 1], got {self.utilization}"
            )
        if self.processors < 1:
            raise ConfigurationError(
                f"processors must be >= 1, got {self.processors}"
            )
        if self.subtasks_per_task > 1 and self.processors < 2:
            raise ConfigurationError(
                "chains need at least 2 processors so consecutive subtasks "
                "can avoid sharing one"
            )
        if self.tasks < 1:
            raise ConfigurationError(f"tasks must be >= 1, got {self.tasks}")
        if not 0 < self.period_min <= self.period_max:
            raise ConfigurationError(
                f"need 0 < period_min <= period_max, got "
                f"{self.period_min}..{self.period_max}"
            )
        if self.period_scale <= 0:
            raise ConfigurationError(
                f"period_scale must be > 0, got {self.period_scale}"
            )
        if not 0 < self.weight_min <= self.weight_max:
            raise ConfigurationError(
                f"need 0 < weight_min <= weight_max, got "
                f"{self.weight_min}..{self.weight_max}"
            )

    @property
    def label(self) -> str:
        """The paper's ``(N, U)`` notation, e.g. ``"(5,60)"``."""
        return f"({self.subtasks_per_task},{round(self.utilization * 100)})"

    def with_random_phases(self, value: bool = True) -> "WorkloadConfig":
        """Copy of this config with random phases toggled."""
        return replace(self, random_phases=value)


def paper_grid(
    subtask_counts: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8),
    utilizations: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9),
    **overrides,
) -> list[WorkloadConfig]:
    """The paper's 35-configuration grid (or a sub-grid).

    Keyword overrides are applied to every configuration -- e.g.
    ``paper_grid(tasks=6)`` for a lighter sweep.
    """
    return [
        WorkloadConfig(
            subtasks_per_task=n, utilization=u, **overrides
        )
        for n in subtask_counts
        for u in utilizations
    ]


#: The full evaluation grid of Section 5: N in 2..8, U in 50%..90%.
PAPER_GRID: tuple[WorkloadConfig, ...] = tuple(paper_grid())
