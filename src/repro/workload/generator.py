"""The paper's synthetic workload generator (Section 5.1).

For one :class:`~repro.workload.config.WorkloadConfig` and one seed, the
generator produces a :class:`~repro.model.system.System`:

1. draw each task's period from the truncated exponential on
   [period_min, period_max];
2. walk each task's chain, placing every subtask on a processor drawn
   uniformly at random, never on the same processor as its immediate
   predecessor;
3. on each processor, split the configured utilization among the
   subtasks that landed there (uniform weights in [0.001, 1]); a
   subtask's execution time is its utilization share times its parent's
   period;
4. assign priorities with Proportional-Deadline-Monotonic (or the
   configured policy);
5. optionally draw each task's phase uniformly from [0, period).

Step 2 is retried when some processor receives no subtask, since step 3
could not then realize "every processor has the same utilization"; with
the paper's 12 tasks x N >= 2 chains on 4 processors this is vanishingly
rare.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.model.priority import get_policy
from repro.model.system import System
from repro.model.task import Subtask, Task
from repro.workload.config import WorkloadConfig
from repro.workload.distributions import split_utilization, truncated_exponential

__all__ = ["generate_system", "generate_batch"]

_MAX_PLACEMENT_ATTEMPTS = 1000


def _place_chains(
    rng: np.random.Generator, config: WorkloadConfig
) -> list[list[int]]:
    """Processor index per subtask, per task; no consecutive repeats and
    every processor used at least once."""
    for _attempt in range(_MAX_PLACEMENT_ATTEMPTS):
        placements: list[list[int]] = []
        used: set[int] = set()
        for _task in range(config.tasks):
            chain: list[int] = []
            for position in range(config.subtasks_per_task):
                if position == 0:
                    processor = int(rng.integers(config.processors))
                else:
                    step = int(rng.integers(config.processors - 1))
                    processor = (chain[-1] + 1 + step) % config.processors
                chain.append(processor)
                used.add(processor)
            placements.append(chain)
        if len(used) == config.processors:
            return placements
    raise WorkloadError(
        f"could not place subtasks on all {config.processors} processors "
        f"within {_MAX_PLACEMENT_ATTEMPTS} attempts; the configuration has "
        f"too few subtasks ({config.tasks} x {config.subtasks_per_task})"
    )


def generate_system(
    config: WorkloadConfig, seed: int, *, name: str | None = None
) -> System:
    """Generate one synthetic system, deterministically from the seed."""
    rng = np.random.default_rng(seed)
    periods = [
        truncated_exponential(
            rng, config.period_min, config.period_max, config.period_scale
        )
        for _ in range(config.tasks)
    ]
    placements = _place_chains(rng, config)

    # Gather, per processor, the (task, position) pairs placed there, in a
    # fixed order, then split the processor's utilization among them.
    per_processor: dict[int, list[tuple[int, int]]] = {
        p: [] for p in range(config.processors)
    }
    for task_index, chain in enumerate(placements):
        for position, processor in enumerate(chain):
            per_processor[processor].append((task_index, position))
    utilization_of: dict[tuple[int, int], float] = {}
    for processor in range(config.processors):
        members = per_processor[processor]
        shares = split_utilization(
            rng,
            config.utilization,
            len(members),
            config.weight_min,
            config.weight_max,
        )
        for member, share in zip(members, shares):
            utilization_of[member] = share

    tasks = []
    for task_index in range(config.tasks):
        period = periods[task_index]
        chain = []
        for position in range(config.subtasks_per_task):
            share = utilization_of[(task_index, position)]
            chain.append(
                Subtask(
                    execution_time=share * period,
                    processor=f"P{placements[task_index][position] + 1}",
                )
            )
        phase = float(rng.uniform(0.0, period)) if config.random_phases else 0.0
        tasks.append(
            Task(
                period=period,
                phase=phase,
                subtasks=tuple(chain),
                name=f"T{task_index + 1}",
            )
        )
    system = System(
        tuple(tasks), name=name or f"synthetic{config.label}-seed{seed}"
    )
    return get_policy(config.priority_policy)(system)


def generate_batch(
    config: WorkloadConfig, count: int, *, base_seed: int = 0
) -> list[System]:
    """Generate ``count`` systems with seeds ``base_seed .. base_seed+count-1``.

    Seeds index a reproducible stream: system ``k`` of a configuration is
    identical across runs and machines (numpy's seeded PCG64).
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    return [
        generate_system(config, base_seed + offset) for offset in range(count)
    ]
