"""The paper's worked examples, as ready-made systems.

* Example 1 (Fig. 1): the *monitor task* -- one task of three subtasks
  (sample, transfer, display) on a field processor, a "link" processor
  modelling the communication medium, and a central processor.
* Example 2 (Fig. 2): the two-processor, three-task system used to
  illustrate all three protocols (Figs. 3, 5 and 7) and the worked SA/DS
  bound (Section 4.3).
"""

from __future__ import annotations

from repro.model.system import System
from repro.model.task import Subtask, Task

__all__ = ["monitor_task_example", "example_two"]


def monitor_task_example(
    period: float = 20.0,
    sample_time: float = 2.0,
    transfer_time: float = 3.0,
    display_time: float = 2.0,
) -> System:
    """Example 1: the three-stage monitor task of Figure 1.

    The paper gives the structure but no numbers; the defaults leave
    plenty of slack so the example is schedulable under every protocol.
    The communication link is modelled as a processor, per Section 2.
    """
    monitor = Task(
        period=period,
        phase=0.0,
        name="monitor",
        subtasks=(
            Subtask(sample_time, "field", priority=0, name="sample"),
            Subtask(transfer_time, "link", priority=0, name="transfer"),
            Subtask(display_time, "central", priority=0, name="display"),
        ),
    )
    return System((monitor,), name="example-1-monitor")


def example_two() -> System:
    """Example 2: Figure 2's system.

    Processor P1 runs T1 (period 4, e 2) above T2,1 (period 6, e 2);
    processor P2 runs T2,2 (period 6, e 3) above T3 (period 6, e 2,
    phase 4).  Deadlines equal periods.  Under DS, T3's first instance
    misses its deadline at time 10 (Fig. 3); under PM and RG it meets it
    (Figs. 5, 7).  Algorithm SA/DS bounds T3's EER time by 7 > 6.
    """
    t1 = Task(
        period=4.0,
        phase=0.0,
        name="T1",
        subtasks=(Subtask(2.0, "P1", priority=0, name="T1"),),
    )
    t2 = Task(
        period=6.0,
        phase=0.0,
        name="T2",
        subtasks=(
            Subtask(2.0, "P1", priority=1, name="T2,1"),
            Subtask(3.0, "P2", priority=0, name="T2,2"),
        ),
    )
    t3 = Task(
        period=6.0,
        phase=4.0,
        name="T3",
        subtasks=(Subtask(2.0, "P2", priority=1, name="T3"),),
    )
    return System((t1, t2, t3), name="example-2")
