"""Batch simulation backend: flat-array kernel, packed traces, gating.

A second engine behind ``simulate(..., engine="batch")``
(:mod:`repro.sim.simulator`): same observable schedules as the reference
kernel on the float timebase for clock-free, fault-free, lock-free
systems under DS/PM/MPM/RG, at a fraction of the per-event cost.  The
reference kernel remains the oracle of record; conformance is enforced
by the golden-trace corpus (``tests/corpus/golden_traces/``), the
``batch-vs-reference-identity`` fuzz oracle, and property tests.  See
``docs/batch-engine.md`` for the design.
"""

from repro.sim.batch.backend import batch_fallback_reason, batch_protocol_of
from repro.sim.batch.calendar import CalendarQueue
from repro.sim.batch.engine import BATCH_PROTOCOLS, BatchRun, run_batch
from repro.sim.batch.packed import PackedTrace, encode

__all__ = [
    "BATCH_PROTOCOLS",
    "BatchRun",
    "CalendarQueue",
    "PackedTrace",
    "batch_fallback_reason",
    "batch_protocol_of",
    "encode",
    "run_batch",
]
