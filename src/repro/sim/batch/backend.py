"""Support gating for the batch engine.

The batch engine implements exactly the paper's ideal Section 3 domain:
the float timebase, perfect clocks, zero signal latency, deterministic
WCET execution, strictly periodic environment releases, no fault plane
and no critical sections, under one of the four stock protocol
controllers.  Anything else runs on the reference kernel -- *explicitly*:
:func:`batch_fallback_reason` names the first unsupported feature, the
facade records it on ``SimulationResult.engine_fallback``, and tests
assert on it.  A silent wrong-engine run is not a failure mode this
design permits.

Controller recognition is by exact type, not ``isinstance``: a subclass
may override hooks in ways the flat engine does not replicate.  A
subclass that changes nothing observable can opt in by declaring
``batch_equivalent = "<protocol>"`` in its *own* class body (the fuzz
harness's ``CheckedReleaseGuard`` does; the attribute is looked up on
the exact class only, so further subclasses must opt in again).
"""

from __future__ import annotations

from repro.clocks.models import ClockMap
from repro.faults.config import FaultConfig
from repro.locks.config import LockingConfig
from repro.model.system import System
from repro.sim.batch.engine import BATCH_PROTOCOLS
from repro.sim.interfaces import ReleaseController
from repro.sim.network import SignalLatencyModel, ZeroLatency
from repro.sim.variation import (
    DeterministicExecution,
    ExecutionModel,
    NoJitter,
    ReleaseJitterModel,
)
from repro.timebase import Timebase, get_timebase

__all__ = ["batch_fallback_reason", "batch_protocol_of"]


def batch_protocol_of(controller: ReleaseController) -> str | None:
    """The batch protocol a controller maps to, or None if unrecognized.

    Exact-type matches for the four stock controllers; subclasses only
    via an explicit ``batch_equivalent`` declaration in their own class
    body (see module docstring).
    """
    # Imported here, not at module level: the protocol modules import
    # repro.sim.interfaces, whose package init pulls in the simulator
    # facade, which imports this module -- a cycle at import time.
    from repro.core.protocols.direct import DirectSynchronization
    from repro.core.protocols.modified_pm import ModifiedPhaseModification
    from repro.core.protocols.phase_modification import PhaseModification
    from repro.core.protocols.release_guard import ReleaseGuard

    kind = type(controller)
    if kind is DirectSynchronization:
        return "DS"
    if kind is PhaseModification:
        return "PM"
    if kind is ModifiedPhaseModification:
        return "MPM"
    if kind is ReleaseGuard:
        return "RG"
    declared = vars(kind).get("batch_equivalent")
    if declared in BATCH_PROTOCOLS:
        return declared
    return None


def batch_fallback_reason(
    system: System,
    controller: ReleaseController,
    *,
    execution_model: ExecutionModel | None = None,
    jitter_model: ReleaseJitterModel | None = None,
    latency_model: SignalLatencyModel | None = None,
    clocks: ClockMap | None = None,
    timebase: Timebase | str = "float",
    faults: FaultConfig | None = None,
    locking: LockingConfig | None = None,
) -> str | None:
    """Why this run must use the reference kernel; None when batch-safe.

    The returned string is stable enough to assert on in tests and ends
    up verbatim on ``SimulationResult.engine_fallback``.
    """
    if get_timebase(timebase).name != "float":
        return "non-float timebase"
    if clocks is not None and not clocks.is_perfect:
        return "imperfect local clocks"
    if faults is not None:
        return "fault plane armed"
    if system.has_critical_sections:
        return "system declares critical sections"
    # ``locking`` on a resource-free system is contractually inert
    # (see Kernel docs), so it alone forces nothing.
    del locking
    if execution_model is not None and type(execution_model) is not (
        DeterministicExecution
    ):
        return "non-deterministic execution model"
    if jitter_model is not None and type(jitter_model) is not NoJitter:
        return "release-jitter model"
    if latency_model is not None and type(latency_model) is not ZeroLatency:
        return "signal-latency model"
    if batch_protocol_of(controller) is None:
        return f"unrecognized controller type {type(controller).__name__}"
    return None
