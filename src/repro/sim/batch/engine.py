"""Flat-array simulation kernel for the batch backend.

One function, :func:`run_batch`, simulates one clock-free, fault-free,
lock-free system under one of the paper's four protocols and returns a
:class:`~repro.sim.batch.packed.PackedTrace`.  It is a re-derivation of
the reference kernel (:mod:`repro.sim.engine` + :mod:`repro.sim.scheduler`
+ the four controllers) specialized to the float timebase and the
paper's ideal Section 3 assumptions, with every object replaced by an
index into a struct-of-arrays layout:

* subtasks are *slots* (indices into ``system.subtask_ids``), processors
  indices into ``system.processors``;
* per-slot constants (priority, processor, WCET, period, successor) are
  compiled once into parallel arrays;
* released instances live in parallel per-instance arrays (remaining
  WCET, packed identity key) indexed by a creation-order counter that
  doubles as the scheduler's FIFO tie-breaker -- the same relative
  order the reference scheduler's global sequence counter produces;
  release/completion lifecycle state lives in one flat ``bytearray``
  indexed by the packed key (0 = unreleased, 1 = released,
  2 = completed), replacing per-event hash-set probes;
* events are short tuples ``(time, order, payload...)``; ``order``
  packs the reference kernel's ``(event class, sequence)`` pair plus
  the handler kind into a single integer
  (``cls << 48 | seq << 3 | kind``, sequence numbers incremented on
  every push in the same order the reference kernel pushes), so tuple
  comparison reproduces the reference pop order -- time first, then the
  class order (completions < timers < environment < signals), then
  FIFO -- while never reaching the payload;
* the event structure is the monotone calendar queue of
  :mod:`repro.sim.batch.calendar`, *inlined* as plain locals (bucket
  list, cursor, active heap): push and pop are the hottest operations
  in the engine and a method call per event costs more than the
  operations themselves.  The class remains the canonical,
  property-tested statement of the structure;
* a completion signal due at the current instant short-circuits the
  queue entirely when nothing pending can order before it (checked
  against the head of the active bucket -- the monotone invariant
  guarantees every not-yet-popped event ordered before ``(now, order)``
  lives there), while still consuming its sequence number and event
  count, so the observable pop order is untouched;
* pending completions are cancelled by bumping a per-processor token
  instead of flagging a handle -- a popped completion whose token is
  stale is skipped without counting, exactly like the reference queue's
  lazy cancellation;
* traces are appended to flat columns -- identity columns as packed
  integer keys, unpacked vectorized at the end -- and returned as a
  :class:`~repro.sim.batch.packed.PackedTrace`.

Trace identity is the contract: under the float timebase, for all four
protocols, the decoded trace equals the reference kernel's trace
field-for-field (releases, completions, environment releases, segments,
idle points, precedence violations, timer clamps).  Every float
expression below therefore mirrors the reference's *exact* association
order -- e.g. the environment's sporadic ratchet
``max(phase + m*period, previous + period)``, PM's
``phases[s] + m*period``, MPM's ``now + bound`` -- and every tolerance
check inlines the float timebase's formulas with ``ABS_EPS``/``REL_EPS``
imported from :mod:`repro.timebase` (the only sanctioned source).

What is deliberately *not* replicated: controller-private diagnostics
that never reach the trace (MPM's ``overruns`` list and
``CheckedReleaseGuard.early_releases`` -- both empty in the supported
ideal domain anyway) and error-message text.  Support gating lives in
:mod:`repro.sim.batch.backend`; this module assumes its caller already
checked :func:`~repro.sim.batch.backend.batch_fallback_reason`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.sim.batch.calendar import _MAX_BUCKETS
from repro.sim.batch.packed import PackedTrace
from repro.timebase import ABS_EPS, FLOAT, REL_EPS, fmt

__all__ = ["BatchRun", "run_batch", "BATCH_PROTOCOLS"]

#: Protocols the batch engine implements.
BATCH_PROTOCOLS = ("DS", "PM", "MPM", "RG")

# Event kinds: handler dispatch, stored in the low 3 bits of the packed
# ordering key (below any sequence bit, so they never affect the order).
_K_ENV = 0
_K_PM_TIMER = 1
_K_MPM_TIMER = 2
_K_RG_TIMER = 3
_K_SIGNAL = 4
_K_COMPLETION = 5

# Event-class prefixes for the packed ordering key
# ``cls << 48 | seq << 3 | kind``: numerically the reference kernel's
# class order (completion 0 < timer 1 < environment 2 < signal 3),
# shifted above any realistic sequence number so (time, order) compares
# exactly like (time, cls, seq).  A completion is recognized by
# ``order < _ORD_TIMER`` without touching the payload.
_ORD_TIMER = 1 << 48
_ORD_ENV = 2 << 48
_ORD_SIGNAL = 3 << 48

# Lifecycle states in the packed-key bytearray.
_ST_RELEASED = 1
_ST_COMPLETED = 2


@dataclass(frozen=True)
class BatchRun:
    """Result of one batch-engine run."""

    packed: PackedTrace
    events_processed: int


def _check_bound(sid: SubtaskId, bounds: Mapping[SubtaskId, float]) -> float:
    """MPM's per-slot bound lookup with the reference's validation."""
    try:
        bound = bounds[sid]
    except KeyError:
        raise ConfigurationError(
            f"MPM protocol needs a response-time bound for {sid}"
        ) from None
    if not bound > 0 or bound != bound or bound == float("inf"):
        raise ConfigurationError(
            f"MPM protocol needs a positive finite bound for {sid}, "
            f"got {bound!r}"
        )
    return float(bound)


def run_batch(
    system: System,
    protocol: str,
    horizon: float,
    *,
    bounds: Mapping[SubtaskId, float] | None = None,
    record_segments: bool = False,
    record_idle_points: bool = False,
    strict_precedence: bool = False,
    max_events: int | None = None,
) -> BatchRun:
    """Simulate ``system`` under ``protocol`` up to ``horizon``.

    ``bounds`` carries the SA/PM response-time bounds PM and MPM need
    (ignored by DS/RG).  The caller is responsible for support gating
    (:func:`repro.sim.batch.backend.batch_fallback_reason`).
    """
    if protocol not in BATCH_PROTOCOLS:
        raise ConfigurationError(
            f"batch engine does not implement protocol {protocol!r}; "
            f"known: {', '.join(BATCH_PROTOCOLS)}"
        )
    horizon = float(horizon)
    if horizon <= 0:
        raise SimulationError(f"horizon must be > 0, got {horizon!r}")

    # ------------------------------------------------------------------
    # Compile the system into parallel arrays (struct-of-arrays layout).
    # ------------------------------------------------------------------
    tasks = system.tasks
    ntasks = len(tasks)
    sids = system.subtask_ids
    nslots = len(sids)
    proc_index = {p: i for i, p in enumerate(system.processors)}
    nprocs = len(proc_index)

    slot_proc_a = np.empty(nslots, dtype=np.int32)
    slot_prio_a = np.empty(nslots, dtype=np.int64)
    slot_wcet_a = np.empty(nslots, dtype=np.float64)
    slot_succ_a = np.full(nslots, -1, dtype=np.int32)
    slot_j_a = np.empty(nslots, dtype=np.int32)
    slot_period_a = np.empty(nslots, dtype=np.float64)
    task_first_a = np.empty(ntasks, dtype=np.int32)
    task_phase_a = np.empty(ntasks, dtype=np.float64)
    task_period_a = np.empty(ntasks, dtype=np.float64)
    slot = 0
    for i, task in enumerate(tasks):
        task_first_a[i] = slot
        task_phase_a[i] = float(task.phase)
        task_period_a[i] = float(task.period)
        chain = task.chain_length
        for j, stage in enumerate(task.subtasks):
            slot_proc_a[slot] = proc_index[stage.processor]
            slot_prio_a[slot] = stage.priority
            slot_wcet_a[slot] = float(stage.execution_time)
            slot_j_a[slot] = j
            slot_period_a[slot] = float(task.period)
            if j < chain - 1:
                slot_succ_a[slot] = slot + 1
            slot += 1

    # The hot loop indexes Python lists: element reads on ndarrays box a
    # fresh np.float64 per access, which costs more than the list load.
    # The arrays above stay the authoritative compiled form (and what a
    # future numpy-level analysis pass would consume).
    slot_proc = slot_proc_a.tolist()
    slot_prio = slot_prio_a.tolist()
    slot_wcet = slot_wcet_a.tolist()
    slot_succ = slot_succ_a.tolist()
    slot_j = slot_j_a.tolist()
    slot_period = slot_period_a.tolist()
    task_first = task_first_a.tolist()
    task_phase = task_phase_a.tolist()
    task_period = task_period_a.tolist()

    #: Instance-key stride: ``slot * stride + m`` is collision-free as
    #: long as no instance index reaches ``stride``; the environment and
    #: the PM table both stop past the horizon, bounding ``m``.
    stride = int(horizon / float(np.min(task_period_a))) + 8
    # Sizing hint for the calendar queue: each task instance produces one
    # environment event plus, per subtask, roughly one release trigger
    # (timer or signal) and one completion.
    task_chain_a = np.asarray(
        [task.chain_length for task in tasks], dtype=np.float64
    )
    expected_events = (
        int(float(np.sum((horizon / task_period_a + 2.0) * (1.0 + 2.0 * task_chain_a))))
        + 64
    )

    is_pm = protocol == "PM"
    is_mpm = protocol == "MPM"
    is_rg = protocol == "RG"
    signals_on_completion = protocol in ("DS", "RG")

    pm_phase: list[float] = []
    mpm_bound: list[float] = []
    if is_pm:
        # Function-level import: the protocol package participates in an
        # import cycle with repro.sim at module-load time.
        from repro.core.protocols.phase_modification import (
            compute_modified_phases,
        )

        if bounds is None:
            raise ConfigurationError("PM protocol needs response-time bounds")
        table = compute_modified_phases(system, bounds, timebase=FLOAT)
        pm_phase = [float(table[sid]) for sid in sids]
    elif is_mpm:
        if bounds is None:
            raise ConfigurationError("MPM protocol needs response-time bounds")
        mpm_bound = [
            _check_bound(sids[s], bounds) if slot_succ[s] >= 0 else 0.0
            for s in range(nslots)
        ]

    guards: list[float] = [0.0] * nslots if is_rg else []
    pending: list[deque] = [deque() for _ in range(nslots)] if is_rg else []
    proc_slots: list[list[int]] = []
    if is_rg:
        slot_of = {sid: s for s, sid in enumerate(sids)}
        # subtasks_on() order (task order) -- rule 2 iterates it.
        proc_slots = [
            [slot_of[sid] for sid in system.subtasks_on(p)]
            for p in system.processors
        ]

    # ------------------------------------------------------------------
    # Dynamic state.  The calendar queue (canonical, property-tested
    # statement in repro.sim.batch.calendar) is inlined as plain locals.
    # ------------------------------------------------------------------
    # Aim at ~4 events per bucket: measurably better than 1/bucket here
    # (fewer empty-bucket cursor advances, a quarter of the preallocation)
    # while per-bucket heaps stay small enough that push/pop are trivial.
    nbuckets = max(1, min(_MAX_BUCKETS, expected_events // 4))
    scale = nbuckets / horizon
    buckets: list[list] = [[] for _ in range(nbuckets)]
    lastb = nbuckets - 1
    cursor = 0
    active: list = buckets[0]
    seq = 0

    # Per-processor scheduler state.  ``run_prio``/``run_rt`` mirror the
    # running instance's ready-queue sort key so neither preemption
    # checks nor suspends need per-instance side lookups.
    run_idx = [-1] * nprocs  # active-instance index running, -1 = none
    run_prio = [0] * nprocs
    run_rt = [0.0] * nprocs
    seg_start = [0.0] * nprocs
    comp_token = [-1] * nprocs  # order key of the pending completion
    ready: list[list] = [[] for _ in range(nprocs)]

    # Per-instance state (struct-of-arrays; index = creation order, which
    # is also the scheduler's FIFO tie-breaker like the reference's
    # global ActiveInstance sequence).  ``a_key`` holds the packed
    # identity ``slot * stride + instance``.
    a_rem: list[float] = []
    a_key: list[int] = []

    # Release/completion lifecycle, indexed by packed key.
    state = bytearray(nslots * stride)

    # Trace columns.  Identity columns hold packed integer keys
    # (``slot * stride + m``; segments additionally ``* nprocs + proc``),
    # unpacked vectorized when the run finishes.
    rel_k: list[int] = []
    rel_t: list[float] = []
    comp_k: list[int] = []
    comp_t: list[float] = []
    env_k: list[int] = []
    env_t: list[float] = []
    seg_k: list[int] = []
    seg_a: list[float] = []
    seg_b: list[float] = []
    idle_by_proc: list[list[float]] = [[] for _ in range(nprocs)]
    viol_s: list[int] = []
    viol_m: list[int] = []
    viol_t: list[float] = []
    viol_p: list[int] = []
    clamp_req: list[float] = []
    clamp_to: list[float] = []

    now = 0.0

    # ------------------------------------------------------------------
    # Kernel services (closures over the flat state).  The hot paths are
    # inlined in the main loop below; these cover the shared and the
    # rare paths.  Default-arg bindings turn per-call global/cell
    # lookups into local loads.
    # ------------------------------------------------------------------
    def push_far(ev) -> None:
        """Clamp an event past the time axis into the last bucket (rare:
        only events at or beyond the horizon land here)."""
        if lastb <= cursor:
            heappush(active, ev)
        else:
            buckets[lastb].append(ev)

    def schedule_timer(when: float, kind: int, a: int, b: int) -> None:
        """Reference ``Kernel.schedule_timer``: raise on a genuinely past
        timer, clamp (and record) one inside the float tolerance."""
        nonlocal seq
        if when < now:
            if when < now - REL_EPS * (now if now > 1.0 else 1.0):
                raise SimulationError(
                    f"timer scheduled in the past: {fmt(when)} < now "
                    f"{fmt(now)}"
                )
            clamp_req.append(when)
            clamp_to.append(now)
            when = now
        seq += 1
        ev = (when, _ORD_TIMER | (seq << 3) | kind, a, b)
        b_ = int(when * scale)
        if b_ <= cursor:
            heappush(active, ev)
        elif b_ < nbuckets:
            buckets[b_].append(ev)
        else:
            push_far(ev)

    def release(
        slot: int,
        m: int,
        heappush=heappush,
        heappop=heappop,
        rel_k_app=rel_k.append,
        rel_t_app=rel_t.append,
        a_rem_app=a_rem.append,
        a_key_app=a_key.append,
    ) -> None:
        """Reference ``Kernel.release`` + ``ProcessorScheduler.add``,
        with ``_suspend_running`` inlined in the preempt branch and
        ``dispatch_if_needed`` inlined at the end."""
        nonlocal seq
        key = slot * stride + m
        if slot_j[slot] > 0:
            done = state[key - stride] == _ST_COMPLETED
            if not done:
                # A predecessor finishing within float noise of now
                # counts as complete (the reference kernel's
                # ``_completes_at_this_instant``).
                pproc = slot_proc[slot - 1]
                r = run_idx[pproc]
                if r >= 0 and a_key[r] == key - stride:
                    finish = seg_start[pproc] + a_rem[r]
                    if finish <= now + REL_EPS * (now if now > 1.0 else 1.0):
                        done = True
            if not done:
                viol_s.append(slot)
                viol_m.append(m)
                viol_t.append(now)
                viol_p.append(slot - 1)
                if strict_precedence:
                    raise SimulationError(
                        f"precedence violation: slot {slot}#{m} released at "
                        f"{fmt(now)} before its predecessor completed"
                    )
        if state[key]:
            raise SimulationError(f"instance slot {slot}#{m} released twice")
        state[key] = _ST_RELEASED
        rel_k_app(key)
        rel_t_app(now)
        # controller.on_release -- RG rule 1 / MPM relay timer.
        if is_rg:
            guards[slot] = now + slot_period[slot]
        elif is_mpm:
            if slot_succ[slot] >= 0:
                # ``now + bound`` with bound > 0 is never below ``now``,
                # so the reference's clamp path cannot trigger: push the
                # relay timer directly.
                when = now + mpm_bound[slot]
                seq += 1
                ev = (when, _ORD_TIMER | (seq << 3) | _K_MPM_TIMER, slot, m)
                b_ = int(when * scale)
                if b_ <= cursor:
                    heappush(active, ev)
                elif b_ < nbuckets:
                    buckets[b_].append(ev)
                else:
                    push_far(ev)
        # Scheduler admission (DeterministicExecution: demand = WCET).
        proc = slot_proc[slot]
        prio = slot_prio[slot]
        r = run_idx[proc]
        idx = len(a_rem)
        rem = slot_wcet[slot]
        a_rem_app(rem)
        a_key_app(key)
        if r < 0:
            rdy = ready[proc]
            if rdy:
                heappush(rdy, (prio, now, idx))
                best = heappop(rdy)
                idx = best[2]
                rem = a_rem[idx]
                prio = best[0]
                rt = best[1]
            else:
                rt = now  # idle processor, empty queue: run directly
        else:
            if prio < run_prio[proc]:
                # Preempt only when the incumbent genuinely has work
                # left; a completion due exactly now must fire first.
                if a_rem[r] - (now - seg_start[proc]) > ABS_EPS:
                    # Reference ``ProcessorScheduler._suspend_running``.
                    comp_token[proc] = -1  # cancel pending completion
                    start = seg_start[proc]
                    elapsed = now - start
                    if elapsed < -REL_EPS:
                        raise SimulationError(
                            f"negative execution slice on processor "
                            f"{proc}: {fmt(elapsed)}"
                        )
                    if elapsed > 0:
                        if record_segments:
                            seg_k.append(a_key[r] * nprocs + proc)
                            seg_a.append(start)
                            seg_b.append(now)
                        a_rem[r] -= elapsed
                    if not a_rem[r] > ABS_EPS:
                        raise SimulationError(
                            f"instance key {a_key[r]} preempted with no "
                            f"remaining work; completion should have "
                            f"fired first"
                        )
                    heappush(ready[proc], (run_prio[proc], run_rt[proc], r))
                    # The newcomer outranks the incumbent and everything
                    # queued behind it (anything sorting before the
                    # newcomer would itself have preempted earlier), so
                    # it runs directly.
                    rt = now
                else:
                    heappush(ready[proc], (prio, now, idx))
                    return
            else:
                heappush(ready[proc], (prio, now, idx))
                return
        # Reference ``ProcessorScheduler.dispatch_if_needed``.
        run_idx[proc] = idx
        run_prio[proc] = prio
        run_rt[proc] = rt
        seg_start[proc] = now
        seq += 1
        tok = (seq << 3) | _K_COMPLETION  # completion: class 0
        comp_token[proc] = tok
        tc = now + rem
        ev = (tc, tok, proc)
        b_ = int(tc * scale)
        if b_ <= cursor:
            heappush(active, ev)
        elif b_ < nbuckets:
            buckets[b_].append(ev)
        else:
            push_far(ev)

    # --- Release Guard machinery ---------------------------------------
    def arm_guard(slot: int) -> None:
        """Reference ``ReleaseGuard._arm_guard_timer`` (perfect clocks)."""
        due = guards[slot]
        if due < now:
            due = now
        schedule_timer(due, _K_RG_TIMER, slot, 0)

    def release_head(slot: int) -> None:
        m = pending[slot].popleft()
        release(slot, m)
        if pending[slot]:
            arm_guard(slot)

    def rule_two(proc: int) -> None:
        """Reference ``ReleaseGuard._apply_rule_two``."""
        local = proc_slots[proc]
        for s in local:
            guards[s] = now
        for s in local:
            if pending[s]:
                release_head(s)

    def on_signal(slot: int, m: int) -> None:
        """Reference controller ``on_signal`` (RG's guard logic; DS and
        MPM release immediately)."""
        if is_rg:
            proc = slot_proc[slot]
            if run_idx[proc] < 0 and not ready[proc]:
                # Definition 1: a signal arriving at an idle processor
                # arrives at an idle point.
                if record_idle_points:
                    idle_by_proc[proc].append(now)
                rule_two(proc)
            if not pending[slot] and guards[slot] <= now + REL_EPS * (
                now if now > 1.0 else 1.0
            ):
                release(slot, m)
            else:
                pending[slot].append(m)
                arm_guard(slot)
        else:
            release(slot, m)

    if not is_rg:
        # DS/MPM signals release unconditionally: skip the closure layer.
        on_signal = release

    # ------------------------------------------------------------------
    # Start of run: controller.start(), then environment releases -- the
    # same push order (hence sequence order) as Kernel.run().
    # ------------------------------------------------------------------
    if is_pm:
        for s in range(nslots):
            if slot_j[s] == 0:
                continue  # released by the environment
            when = pm_phase[s] + 0 * slot_period[s]
            if when > horizon:
                continue
            schedule_timer(when, _K_PM_TIMER, s, 0)
    for i in range(ntasks):
        when = task_phase[i] + 0 * task_period[i]
        when = when + 0.0  # the reference adds the (zero) jitter
        if when > horizon:
            continue
        seq += 1
        ev = (when, _ORD_ENV | (seq << 3) | _K_ENV, i, 0)
        b_ = int(when * scale)
        if b_ <= cursor:
            heappush(active, ev)
        elif b_ < nbuckets:
            buckets[b_].append(ev)
        else:
            push_far(ev)

    # ------------------------------------------------------------------
    # Main loop.  Calendar pop, the completion handler and the
    # environment handler are fully inlined: they are the per-event hot
    # path and closure calls here dominate the runtime otherwise.
    # ------------------------------------------------------------------
    processed = 0
    max_ev = max_events if max_events is not None else (1 << 62)
    rel_eps = REL_EPS  # local binding for the per-event tolerance check
    comp_k_app = comp_k.append
    comp_t_app = comp_t.append
    env_k_app = env_k.append
    env_t_app = env_t.append
    seg_k_app = seg_k.append
    seg_a_app = seg_a.append
    seg_b_app = seg_b.append
    # A signal generated this iteration and due at the current instant:
    # (order, slot, m), handled at the loop bottom -- see below.
    sig = None
    while True:
        if not active:
            # Advance the cursor to the next non-empty bucket and
            # heapify it once on activation (single-element buckets are
            # already heaps).
            nxt = cursor + 1
            while nxt < nbuckets and not buckets[nxt]:
                nxt += 1
            if nxt >= nbuckets:
                break
            cursor = nxt
            active = buckets[nxt]
            if len(active) > 1:
                heapify(active)
        ev = heappop(active)
        t = ev[0]
        o = ev[1]

        if o < _ORD_TIMER:  # completion (class 0)
            proc = ev[2]
            if comp_token[proc] != o:
                continue  # lazily cancelled, skipped without counting
            if t > horizon:
                break
            if t < now and t < now - rel_eps * (now if now > 1.0 else 1.0):
                raise SimulationError(
                    f"event queue went backwards: {fmt(t)} < {fmt(now)}"
                )
            now = t
            # ProcessorScheduler._on_completion_event + instance_completed.
            r = run_idx[proc]
            if r < 0:
                raise SimulationError(
                    f"completion event on processor {proc} with nothing "
                    f"running"
                )
            comp_token[proc] = -1
            run_idx[proc] = -1
            key = a_key[r]
            if record_segments:
                seg_k_app(key * nprocs + proc)
                seg_a_app(seg_start[proc])
                seg_b_app(now)
            a_rem[r] = 0.0
            st = state[key]
            if st != _ST_RELEASED:
                if st == _ST_COMPLETED:
                    raise SimulationError(
                        f"instance key {key} completed twice"
                    )
                raise SimulationError(
                    f"instance key {key} completed without a release"
                )
            state[key] = _ST_COMPLETED
            comp_k_app(key)
            comp_t_app(now)
            # Idle-point notification precedes the protocol hook.
            rdy = ready[proc]
            if not rdy:
                if record_idle_points:
                    idle_by_proc[proc].append(now)
                if is_rg:
                    rule_two(proc)
                    rdy = ready[proc]
            # controller.on_completion -- DS/RG send the chain signal.
            # The push is deferred to the loop bottom (``sig``): if by
            # then nothing pending orders before it, the queue
            # round-trip is skipped entirely.
            if signals_on_completion:
                slot = key // stride
                succ = slot_succ[slot]
                if succ >= 0:
                    seq += 1
                    sig = (_ORD_SIGNAL | (seq << 3) | _K_SIGNAL, succ,
                           key - slot * stride)
            # dispatch_if_needed (rule_two above may already have run it).
            if run_idx[proc] < 0 and rdy:
                best = heappop(rdy)
                r2 = best[2]
                run_idx[proc] = r2
                run_prio[proc] = best[0]
                run_rt[proc] = best[1]
                seg_start[proc] = now
                seq += 1
                tok = (seq << 3) | _K_COMPLETION
                comp_token[proc] = tok
                tc = now + a_rem[r2]
                ev = (tc, tok, proc)
                b_ = int(tc * scale)
                if b_ <= cursor:
                    heappush(active, ev)
                elif b_ < nbuckets:
                    buckets[b_].append(ev)
                else:
                    push_far(ev)

        else:
            if t > horizon:
                break
            if t < now and t < now - rel_eps * (now if now > 1.0 else 1.0):
                raise SimulationError(
                    f"event queue went backwards: {fmt(t)} < {fmt(now)}"
                )
            now = t
            kind = o & 7

            if kind == _K_ENV:
                i = ev[2]
                m = ev[3]
                env_k_app(i * stride + m)
                env_t_app(now)
                release(task_first[i], m)
                # Schedule the next environment release: the sporadic
                # ratchet max(phase + m*period, previous + period), where
                # ``previous`` is exactly this event's fire time.
                period = task_period[i]
                nxt_m = m + 1
                when = task_phase[i] + nxt_m * period
                when = when + 0.0  # zero jitter, reference association
                floor_ = now + period
                if when < floor_:
                    when = floor_
                if when <= horizon:
                    seq += 1
                    ev = (when, _ORD_ENV | (seq << 3) | _K_ENV, i, nxt_m)
                    b_ = int(when * scale)
                    if b_ <= cursor:
                        heappush(active, ev)
                    elif b_ < nbuckets:
                        buckets[b_].append(ev)
                    else:
                        push_far(ev)

            elif kind == _K_SIGNAL:
                on_signal(ev[2], ev[3])

            elif kind == _K_MPM_TIMER:
                # MPM relay: budget elapsed, signal the successor.  (The
                # reference also counts an overrun on the controller when
                # the predecessor is still running; that diagnostic list
                # never reaches the trace.)  Deferred like the
                # completion-hook signal above.
                slot = ev[2]
                succ = slot_succ[slot]
                if succ >= 0:
                    seq += 1
                    sig = (_ORD_SIGNAL | (seq << 3) | _K_SIGNAL, succ,
                           ev[3])

            elif kind == _K_PM_TIMER:
                slot = ev[2]
                m = ev[3]
                release(slot, m)
                nxt_m = m + 1
                when = pm_phase[slot] + nxt_m * slot_period[slot]
                if when <= horizon:
                    if when < now:
                        # Possible only within float noise; take the
                        # reference's clamp-or-raise path.
                        schedule_timer(when, _K_PM_TIMER, slot, nxt_m)
                    else:
                        seq += 1
                        ev = (when, _ORD_TIMER | (seq << 3) | _K_PM_TIMER,
                              slot, nxt_m)
                        b_ = int(when * scale)
                        if b_ <= cursor:
                            heappush(active, ev)
                        elif b_ < nbuckets:
                            buckets[b_].append(ev)
                        else:
                            push_far(ev)

            else:  # _K_RG_TIMER
                slot = ev[2]
                if pending[slot] and guards[slot] <= now + rel_eps * (
                    now if now > 1.0 else 1.0
                ):
                    release_head(slot)

        processed += 1
        if processed > max_ev:
            raise SimulationError(
                f"event budget exceeded ({max_events} events); "
                f"now={fmt(now)}, horizon={fmt(horizon)}"
            )
        if sig is not None:
            # A signal due at this very instant.  The monotone invariant
            # puts every not-yet-popped event ordered before
            # ``(now, order)`` in the active bucket, so if its head does
            # not precede the signal, nothing does: handle the signal
            # here without a queue round-trip.  Its sequence number was
            # consumed at creation and it counts as a processed event,
            # so the observable order is exactly the reference's.
            o, slot, m = sig
            sig = None
            if active and active[0] < (now, o):
                ev = (now, o, slot, m)
                b_ = int(now * scale)
                if b_ <= cursor:
                    heappush(active, ev)
                elif b_ < nbuckets:
                    buckets[b_].append(ev)
                else:
                    push_far(ev)
            else:
                on_signal(slot, m)
                processed += 1
                if processed > max_ev:
                    raise SimulationError(
                        f"event budget exceeded ({max_events} events); "
                        f"now={fmt(now)}, horizon={fmt(horizon)}"
                    )

    # ------------------------------------------------------------------
    # Pack the trace columns (vectorized key unpacking).
    # ------------------------------------------------------------------
    idle_proc: list[int] = []
    idle_time: list[float] = []
    for proc in range(nprocs):
        times = idle_by_proc[proc]
        if times:
            idle_proc.extend([proc] * len(times))
            idle_time.extend(times)
    i32 = np.int32
    i64 = np.int64
    f64 = np.float64
    rel_key = np.asarray(rel_k, i64)
    comp_key = np.asarray(comp_k, i64)
    env_key = np.asarray(env_k, i64)
    seg_key = np.asarray(seg_k, i64)
    seg_pp = (seg_key % nprocs).astype(i32)
    seg_key //= nprocs
    packed = PackedTrace(
        horizon=horizon,
        record_segments=record_segments,
        record_idle_points=record_idle_points,
        rel_slot=(rel_key // stride).astype(i32),
        rel_inst=(rel_key % stride).astype(i32),
        rel_time=np.asarray(rel_t, f64),
        comp_slot=(comp_key // stride).astype(i32),
        comp_inst=(comp_key % stride).astype(i32),
        comp_time=np.asarray(comp_t, f64),
        env_task=(env_key // stride).astype(i32),
        env_inst=(env_key % stride).astype(i32),
        env_time=np.asarray(env_t, f64),
        seg_proc=seg_pp,
        seg_slot=(seg_key // stride).astype(i32),
        seg_inst=(seg_key % stride).astype(i32),
        seg_start=np.asarray(seg_a, f64),
        seg_end=np.asarray(seg_b, f64),
        idle_proc=np.asarray(idle_proc, i32),
        idle_time=np.asarray(idle_time, f64),
        viol_slot=np.asarray(viol_s, i32),
        viol_inst=np.asarray(viol_m, i32),
        viol_time=np.asarray(viol_t, f64),
        viol_pred=np.asarray(viol_p, i32),
        clamp_req=np.asarray(clamp_req, f64),
        clamp_to=np.asarray(clamp_to, f64),
    )
    return BatchRun(packed=packed, events_processed=processed)
