"""Packed (struct-of-arrays) trace format for the batch engine.

The batch engine never touches :class:`~repro.sim.tracing.Trace` while
running: recording a release is two integer appends and one float append
into flat columns, not a :class:`~repro.model.task.SubtaskId`-keyed dict
insert.  The columns become numpy arrays when the run finishes, and a
:class:`PackedTrace` decodes *lazily* into a full ``Trace`` only when a
caller actually wants one (metrics, validation, Gantt rendering).

Identifier encoding
-------------------
Subtasks are column indices into ``system.subtask_ids`` (task order) and
processors indices into ``system.processors`` (sorted order) -- both
orders are deterministic properties of the immutable system, so encoding
is stable across processes.  Instances keep their 0-based index.

Canonical ordering
------------------
Rows appear in *recording order*, which for the reference kernel is dict
insertion order -- the two engines record in identical order precisely
when their schedules are identical, so conformance can be asserted
byte-for-byte on the arrays (:meth:`PackedTrace.identical`) instead of
comparing decoded object graphs.  The one exception is idle points: the
reference trace groups them per processor, so the packed form stores
them grouped by processor (in ``system.processors`` order, chronological
within each processor) on both the encode and the engine path.

The format round-trips: ``encode(trace).decode(system) == trace`` for
any clock-free, fault-free, lock-free trace (a hypothesis property test
pins this), and serializes to ``.npz`` for the golden-trace corpus under
``tests/corpus/golden_traces/``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

import numpy as np

from repro.model.system import System
from repro.sim.tracing import PrecedenceViolation, Segment, Trace
from repro.timebase import FLOAT, Timebase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

__all__ = ["PackedTrace", "encode"]

_I32 = np.int32
_F64 = np.float64


def _i(values) -> np.ndarray:
    return np.asarray(values, dtype=_I32)


def _f(values) -> np.ndarray:
    return np.asarray(values, dtype=_F64)


@dataclass(frozen=True)
class PackedTrace:
    """One simulation trace as parallel flat arrays.

    Every ``*_slot`` column indexes ``system.subtask_ids``, every
    ``*_proc`` column indexes ``system.processors``; parallel columns
    have equal length and describe one record per row.
    """

    #: Simulation horizon the run used (float timebase).
    horizon: float
    #: Recording flags the run was made with; decode restores them.
    record_segments: bool
    record_idle_points: bool

    #: Subtask releases, in recording order.
    rel_slot: np.ndarray
    rel_inst: np.ndarray
    rel_time: np.ndarray
    #: Subtask completions, in recording order.
    comp_slot: np.ndarray
    comp_inst: np.ndarray
    comp_time: np.ndarray
    #: Environment releases (``task_index`` keyed), in recording order.
    env_task: np.ndarray
    env_inst: np.ndarray
    env_time: np.ndarray
    #: Execution segments, in recording order.
    seg_proc: np.ndarray
    seg_slot: np.ndarray
    seg_inst: np.ndarray
    seg_start: np.ndarray
    seg_end: np.ndarray
    #: Idle points, grouped by processor index, chronological per group.
    idle_proc: np.ndarray
    idle_time: np.ndarray
    #: Precedence violations, in recording order.
    viol_slot: np.ndarray
    viol_inst: np.ndarray
    viol_time: np.ndarray
    viol_pred: np.ndarray
    #: Timer clamps ``(requested, clamped_to)``, in recording order.
    clamp_req: np.ndarray
    clamp_to: np.ndarray

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self, system: System, *, timebase: Timebase = FLOAT
    ) -> Trace:
        """Materialize the full :class:`Trace` this packing describes.

        The result compares equal (``==``) to the trace the reference
        kernel would have recorded, provided the packing came from an
        identical schedule on the same ``system``.
        """
        trace = Trace(
            system,
            float(self.horizon),
            record_segments=self.record_segments,
            record_idle_points=self.record_idle_points,
            timebase=timebase,
        )
        sids = system.subtask_ids
        procs = system.processors
        releases = trace.releases
        for slot, inst, time in zip(
            self.rel_slot.tolist(),
            self.rel_inst.tolist(),
            self.rel_time.tolist(),
        ):
            releases[(sids[slot], inst)] = time
        completions = trace.completions
        for slot, inst, time in zip(
            self.comp_slot.tolist(),
            self.comp_inst.tolist(),
            self.comp_time.tolist(),
        ):
            completions[(sids[slot], inst)] = time
        env = trace.env_releases
        for task, inst, time in zip(
            self.env_task.tolist(),
            self.env_inst.tolist(),
            self.env_time.tolist(),
        ):
            env[(task, inst)] = time
        segments = trace.segments
        for proc, slot, inst, start, end in zip(
            self.seg_proc.tolist(),
            self.seg_slot.tolist(),
            self.seg_inst.tolist(),
            self.seg_start.tolist(),
            self.seg_end.tolist(),
        ):
            segments.append(
                Segment(
                    processor=procs[proc],
                    sid=sids[slot],
                    instance=inst,
                    start=start,
                    end=end,
                )
            )
        idle = trace.idle_points
        for proc, time in zip(
            self.idle_proc.tolist(), self.idle_time.tolist()
        ):
            idle.setdefault(procs[proc], []).append(time)
        violations = trace.violations
        for slot, inst, time, pred in zip(
            self.viol_slot.tolist(),
            self.viol_inst.tolist(),
            self.viol_time.tolist(),
            self.viol_pred.tolist(),
        ):
            violations.append(
                PrecedenceViolation(
                    sid=sids[slot],
                    instance=inst,
                    release_time=time,
                    predecessor=sids[pred],
                )
            )
        clamps = trace.timer_clamps
        for req, to in zip(self.clamp_req.tolist(), self.clamp_to.tolist()):
            clamps.append((req, to))
        return trace

    # ------------------------------------------------------------------
    # Comparison and serialization
    # ------------------------------------------------------------------
    def identical(self, other: "PackedTrace") -> bool:
        """Byte-for-byte equality: every column's raw bytes must match.

        Stricter than value equality -- ``0.0`` and ``-0.0`` differ, as
        do equal values of different dtypes -- which is exactly the
        contract the conformance layer asserts between engines.
        """
        if (
            self.horizon != other.horizon
            or self.record_segments != other.record_segments
            or self.record_idle_points != other.record_idle_points
        ):
            return False
        for name in _ARRAY_FIELDS:
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine.dtype != theirs.dtype or mine.tobytes() != theirs.tobytes():
                return False
        return True

    def describe_diff(self, other: "PackedTrace") -> str:
        """Name the first differing column (diagnostics for tests)."""
        for scalar in ("horizon", "record_segments", "record_idle_points"):
            if getattr(self, scalar) != getattr(other, scalar):
                return (
                    f"{scalar}: {getattr(self, scalar)!r} != "
                    f"{getattr(other, scalar)!r}"
                )
        for name in _ARRAY_FIELDS:
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine.shape != theirs.shape:
                return f"{name}: {len(mine)} rows != {len(theirs)} rows"
            if mine.dtype != theirs.dtype or mine.tobytes() != theirs.tobytes():
                where = np.nonzero(mine != theirs)[0]
                first = int(where[0]) if len(where) else -1
                return (
                    f"{name}: first mismatch at row {first} "
                    f"({mine[first]!r} != {theirs[first]!r})"
                    if first >= 0
                    else f"{name}: byte-level mismatch"
                )
        return "identical"

    def save(self, path: "Path | str") -> None:
        """Write the packing as a compressed ``.npz`` archive."""
        arrays = {name: getattr(self, name) for name in _ARRAY_FIELDS}
        np.savez_compressed(
            path,
            horizon=_f([self.horizon]),
            flags=_i([int(self.record_segments), int(self.record_idle_points)]),
            **arrays,
        )

    @classmethod
    def load(cls, path: "Path | str") -> "PackedTrace":
        """Read a packing written by :meth:`save`."""
        with np.load(path) as data:
            flags = data["flags"]
            return cls(
                horizon=float(data["horizon"][0]),
                record_segments=bool(flags[0]),
                record_idle_points=bool(flags[1]),
                **{name: data[name] for name in _ARRAY_FIELDS},
            )


_ARRAY_FIELDS = tuple(
    f.name for f in fields(PackedTrace) if f.type == "np.ndarray"
)


def encode(trace: Trace) -> PackedTrace:
    """Pack a reference-kernel :class:`Trace` into column arrays.

    Only clock-free, fault-free, lock-free traces are encodable -- the
    packed format has no columns for fault or lock logs, mirroring the
    batch engine's supported domain.
    """
    if trace.faults is not None or trace.locks is not None:
        raise ValueError(
            "packed traces cannot carry fault or lock logs; "
            "only the batch engine's supported domain is encodable"
        )
    system = trace.system
    slot_of = {sid: i for i, sid in enumerate(system.subtask_ids)}
    proc_of = {p: i for i, p in enumerate(system.processors)}
    rel = list(trace.releases.items())
    comp = list(trace.completions.items())
    env = list(trace.env_releases.items())
    idle_proc: list[int] = []
    idle_time: list[float] = []
    for proc in system.processors:
        for time in trace.idle_points.get(proc, ()):  # grouped, per proc
            idle_proc.append(proc_of[proc])
            idle_time.append(time)
    return PackedTrace(
        horizon=float(trace.horizon),
        record_segments=trace.record_segments,
        record_idle_points=trace.record_idle_points,
        rel_slot=_i([slot_of[sid] for (sid, _m), _t in rel]),
        rel_inst=_i([m for (_sid, m), _t in rel]),
        rel_time=_f([t for _key, t in rel]),
        comp_slot=_i([slot_of[sid] for (sid, _m), _t in comp]),
        comp_inst=_i([m for (_sid, m), _t in comp]),
        comp_time=_f([t for _key, t in comp]),
        env_task=_i([i for (i, _m), _t in env]),
        env_inst=_i([m for (_i, m), _t in env]),
        env_time=_f([t for _key, t in env]),
        seg_proc=_i([proc_of[s.processor] for s in trace.segments]),
        seg_slot=_i([slot_of[s.sid] for s in trace.segments]),
        seg_inst=_i([s.instance for s in trace.segments]),
        seg_start=_f([s.start for s in trace.segments]),
        seg_end=_f([s.end for s in trace.segments]),
        idle_proc=_i(idle_proc),
        idle_time=_f(idle_time),
        viol_slot=_i([slot_of[v.sid] for v in trace.violations]),
        viol_inst=_i([v.instance for v in trace.violations]),
        viol_time=_f([v.release_time for v in trace.violations]),
        viol_pred=_i([slot_of[v.predecessor] for v in trace.violations]),
        clamp_req=_f([req for req, _to in trace.timer_clamps]),
        clamp_to=_f([to for _req, to in trace.timer_clamps]),
    )
