"""Metrics straight from a packed trace, bypassing Trace decoding.

The sweep experiments consume only :class:`~repro.sim.metrics.TraceMetrics`
-- the EER averages, jitter and miss counts -- and never touch the trace
itself.  Decoding a :class:`~repro.sim.batch.packed.PackedTrace` into a
:class:`~repro.sim.tracing.Trace` walks every event a second time just to
build dictionaries that the metrics pass immediately reduces away; this
module reduces the packed columns directly, in O(instances) instead of
O(events).

The contract is *bit identity* with
:func:`repro.sim.metrics.compute_metrics` applied to the decoded trace:
the same instances selected in the same (sorted) order, EER times from
the same float subtraction, the average from the same left-fold
``sum(...) / len(...)`` -- numpy's pairwise summation would round
differently and is deliberately not used -- and deadline misses from the
same ``timebase.gt``.  The batch-vs-reference conformance tests compare
``SimulationResult.metrics`` across engines with ``==``, which holds
only because of this.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.model.system import System
from repro.sim.batch.packed import PackedTrace
from repro.sim.metrics import TaskMetrics, TraceMetrics, output_jitter
from repro.timebase import FLOAT, Timebase

__all__ = ["metrics_from_packed"]


def metrics_from_packed(
    packed: PackedTrace,
    system: System,
    *,
    warmup: float = 0.0,
    timebase: Timebase = FLOAT,
) -> TraceMetrics:
    """Replicate ``compute_metrics(packed.decode(system))`` without the
    decode.  See the module docstring for the bit-identity contract."""
    if warmup < 0:
        raise SimulationError(f"warmup must be >= 0, got {warmup!r}")
    tasks = system.tasks
    # Map each task's *last* slot to the task index, then bucket the
    # relevant completion and environment-release columns per task.
    last_slot_task: dict[int, int] = {}
    slot = 0
    for task_index, task in enumerate(tasks):
        slot += task.chain_length
        last_slot_task[slot - 1] = task_index
    completions: list[dict[int, float]] = [{} for _ in tasks]
    for s, m, t in zip(
        packed.comp_slot.tolist(),
        packed.comp_inst.tolist(),
        packed.comp_time.tolist(),
    ):
        task_index = last_slot_task.get(s)
        if task_index is not None:
            completions[task_index][m] = t
    env: list[dict[int, float]] = [{} for _ in tasks]
    for i, m, t in zip(
        packed.env_task.tolist(),
        packed.env_inst.tolist(),
        packed.env_time.tolist(),
    ):
        env[i][m] = t

    summaries = []
    for task_index, task in enumerate(tasks):
        completed = completions[task_index]
        released = env[task_index]
        # Same selection and order as compute_metrics: completed task
        # instances (sorted), kept only when the environment release
        # exists and clears the warmup.
        instances = [
            m
            for m in sorted(completed)
            if m in released and released[m] >= warmup
        ]
        eer_times = [completed[m] - released[m] for m in instances]
        deadline = timebase.convert(task.relative_deadline)
        misses = sum(
            1 for value in eer_times if timebase.gt(value, deadline)
        )
        if eer_times:
            summaries.append(
                TaskMetrics(
                    task_index=task_index,
                    completed_instances=len(eer_times),
                    average_eer=sum(eer_times) / len(eer_times),
                    max_eer=max(eer_times),
                    min_eer=min(eer_times),
                    output_jitter=output_jitter(eer_times),
                    deadline_misses=misses,
                )
            )
        else:
            summaries.append(
                TaskMetrics(
                    task_index=task_index,
                    completed_instances=0,
                    average_eer=float("nan"),
                    max_eer=float("nan"),
                    min_eer=float("nan"),
                    output_jitter=0.0,
                    deadline_misses=0,
                )
            )
    return TraceMetrics(
        tasks=tuple(summaries),
        precedence_violations=int(len(packed.viol_slot)),
        faults=None,
    )
