"""Monotone calendar queue for the batch engine.

The reference kernel keeps one global binary heap and pays the ``log n``
comparison chain on every push.  The batch engine's event population is
different: almost every push is *strictly in the future* (the next
periodic release, a completion at ``now + remaining``, an MPM relay
timer at ``now + bound``) and simulation time only moves forward.  A
monotone calendar queue exploits that: the ``[0, horizon]`` axis is cut
into equal-width buckets, preallocated up front; a future event is an
O(1) ``list.append`` into its bucket, and only the *active* bucket (the
one the cursor is consuming) is kept heap-ordered.  When the cursor
enters a bucket it is heapified once (O(k)); same-instant pushes that
land in the active bucket go through ``heappush`` as before.

Events are plain tuples ``(time, cls, seq, ...)``.  ``seq`` must be
unique and globally increasing across pushes: it makes every key unique,
so tuple comparison never reaches the payload and the pop order is the
exact total order the reference :class:`~repro.sim.engine.EventQueue`
produces -- time first, then the event-class order
(completions < timers < environment releases < signals), then FIFO.
That equivalence is what the hypothesis property test
(``tests/test_batch_properties.py``) pins against ``heapq``.

Events past the horizon are clamped into the last bucket: the run loop
stops at the first popped event beyond the horizon, so their relative
order only has to be correct, which the per-bucket heap guarantees.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

__all__ = ["CalendarQueue"]

#: Upper bound on the bucket count.  Aiming at roughly one event per
#: bucket keeps the active heap near-trivial (pop is a plain list pop,
#: heapify a no-op); the preallocation cost of ~32k empty lists is
#: amortized by any run large enough to want them, and small runs are
#: capped by their ``expected_events`` hint anyway.
_MAX_BUCKETS = 32768


class CalendarQueue:
    """A monotone bucket queue over ``[0, horizon]``.

    Parameters
    ----------
    horizon:
        Upper end of the time axis.  Events may be pushed past it (the
        run loop terminates on them); they share the last bucket.
    expected_events:
        Sizing hint; the queue aims at O(1) events per bucket.
    """

    __slots__ = ("_buckets", "_active", "_cursor", "_nbuckets", "_scale")

    def __init__(self, horizon: float, expected_events: int = 256) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon!r}")
        nbuckets = max(1, min(_MAX_BUCKETS, expected_events))
        self._nbuckets = nbuckets
        # ``scale`` maps a timestamp to its bucket index; the last bucket
        # absorbs everything at or past the horizon.
        self._scale = nbuckets / horizon
        self._buckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        self._cursor = 0
        self._active: list[tuple] = self._buckets[0]

    def push(self, event: tuple) -> None:
        """Insert ``event = (time, cls, seq, ...)``; ``seq`` unique."""
        index = int(event[0] * self._scale)
        if index <= self._cursor:
            # Into the bucket being consumed (or, clamped up, an event
            # whose nominal bucket the cursor already passed -- possible
            # only for times >= now, which the kernel guarantees): keep
            # the active heap ordered.
            heappush(self._active, event)
        else:
            if index >= self._nbuckets:
                index = self._nbuckets - 1
                if index <= self._cursor:
                    heappush(self._active, event)
                    return
            self._buckets[index].append(event)

    def pop(self) -> tuple | None:
        """Remove and return the earliest event, or None when empty."""
        active = self._active
        while not active:
            cursor = self._cursor + 1
            if cursor >= self._nbuckets:
                return None
            self._cursor = cursor
            active = self._buckets[cursor]
            if active:
                heapify(active)
                self._active = active
        return heappop(active)

    def __len__(self) -> int:
        return len(self._active) + sum(
            len(self._buckets[i])
            for i in range(self._cursor + 1, self._nbuckets)
        )
