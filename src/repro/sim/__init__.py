"""Discrete-event simulation of distributed fixed-priority scheduling."""

from repro.sim.engine import EventQueue, Kernel
from repro.sim.interfaces import ReleaseController
from repro.sim.metrics import (
    TaskMetrics,
    TraceMetrics,
    compute_metrics,
    output_jitter,
)
from repro.sim.network import (
    FixedLatency,
    SignalLatencyModel,
    UniformLatency,
    ZeroLatency,
)
from repro.sim.processor_stats import (
    ProcessorStatistics,
    processor_statistics,
)
from repro.sim.scheduler import ActiveInstance, ProcessorScheduler
from repro.sim.simulator import SimulationResult, default_horizon, simulate
from repro.sim.trace_validation import validate_trace
from repro.sim.tracing import PrecedenceViolation, Segment, Trace
from repro.sim.variation import (
    DeterministicExecution,
    ExecutionModel,
    NoJitter,
    OverrunInjection,
    ReleaseJitterModel,
    TruncatedNormalExecution,
    UniformReleaseJitter,
    UniformScaledExecution,
)

__all__ = [
    "ActiveInstance",
    "DeterministicExecution",
    "EventQueue",
    "ExecutionModel",
    "FixedLatency",
    "Kernel",
    "NoJitter",
    "OverrunInjection",
    "PrecedenceViolation",
    "ProcessorScheduler",
    "ProcessorStatistics",
    "processor_statistics",
    "ReleaseController",
    "ReleaseJitterModel",
    "Segment",
    "SignalLatencyModel",
    "SimulationResult",
    "TaskMetrics",
    "Trace",
    "TraceMetrics",
    "TruncatedNormalExecution",
    "UniformLatency",
    "UniformReleaseJitter",
    "UniformScaledExecution",
    "ZeroLatency",
    "compute_metrics",
    "default_horizon",
    "output_jitter",
    "simulate",
    "validate_trace",
]
