"""Execution-time and release-jitter variation models.

The paper's simulation executes every instance for exactly its worst-case
execution time and releases first subtasks with zero jitter; its
conclusion, however, flags "wide variations in these parameters" as the
open problem.  These models let users and the failure-injection tests
explore exactly that: instances may run shorter than their WCET (normal
operation), *longer* (overrun injection -- which invalidates PM/MPM's
guarantees), and environment releases may be late by a bounded jitter
(which breaks PM but not MPM/RG, as Section 3.1 argues).

All models are deterministic functions of their own ``numpy`` generator,
so simulations are reproducible from seeds.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.model.task import SubtaskId

__all__ = [
    "ExecutionModel",
    "DeterministicExecution",
    "UniformScaledExecution",
    "TruncatedNormalExecution",
    "OverrunInjection",
    "ReleaseJitterModel",
    "NoJitter",
    "UniformReleaseJitter",
]


class ExecutionModel(abc.ABC):
    """Maps an instance to its actual execution demand."""

    @abc.abstractmethod
    def duration(self, sid: SubtaskId, instance: int, wcet: float) -> float:
        """Actual execution time of instance ``instance`` of ``sid``.

        Must be positive; values above ``wcet`` model overruns.
        """


class DeterministicExecution(ExecutionModel):
    """Every instance runs for exactly its WCET (the paper's setting)."""

    def duration(self, sid: SubtaskId, instance: int, wcet: float) -> float:
        return wcet


class UniformScaledExecution(ExecutionModel):
    """Each instance runs for ``wcet * u`` with ``u ~ Uniform[lo, hi]``.

    ``hi <= 1`` keeps the WCET honest; ``hi > 1`` injects overruns.
    """

    def __init__(self, lo: float, hi: float, seed: int | None = None) -> None:
        if not (0 < lo <= hi) or not math.isfinite(hi):
            raise ConfigurationError(
                f"need 0 < lo <= hi < inf, got lo={lo!r} hi={hi!r}"
            )
        self.lo = lo
        self.hi = hi
        self._rng = np.random.default_rng(seed)

    def duration(self, sid: SubtaskId, instance: int, wcet: float) -> float:
        return wcet * float(self._rng.uniform(self.lo, self.hi))


class TruncatedNormalExecution(ExecutionModel):
    """Gaussian around ``mean_fraction * wcet``, truncated to (eps, wcet].

    A common empirical shape: most instances near the mean, rare ones near
    the WCET.
    """

    def __init__(
        self,
        mean_fraction: float = 0.7,
        std_fraction: float = 0.15,
        seed: int | None = None,
    ) -> None:
        if not (0 < mean_fraction <= 1):
            raise ConfigurationError(
                f"mean_fraction must be in (0, 1], got {mean_fraction!r}"
            )
        if std_fraction < 0:
            raise ConfigurationError(
                f"std_fraction must be >= 0, got {std_fraction!r}"
            )
        self.mean_fraction = mean_fraction
        self.std_fraction = std_fraction
        self._rng = np.random.default_rng(seed)

    def duration(self, sid: SubtaskId, instance: int, wcet: float) -> float:
        draw = self._rng.normal(self.mean_fraction, self.std_fraction)
        fraction = min(1.0, max(1e-6, float(draw)))
        return wcet * fraction


class OverrunInjection(ExecutionModel):
    """Multiply the WCET of selected instances by an overrun factor.

    Used by failure-injection tests to demonstrate that PM/MPM rely on the
    correctness of the response-time bounds: one overrunning instance can
    produce a precedence violation downstream.
    """

    def __init__(
        self,
        target: SubtaskId,
        factor: float,
        every: int = 1,
    ) -> None:
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor!r}")
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every!r}")
        self.target = target
        self.factor = factor
        self.every = every

    def duration(self, sid: SubtaskId, instance: int, wcet: float) -> float:
        if sid == self.target and instance % self.every == 0:
            return wcet * self.factor
        return wcet


class ReleaseJitterModel(abc.ABC):
    """Maps a task instance to a non-negative environment release delay."""

    @abc.abstractmethod
    def jitter(self, task_index: int, instance: int) -> float:
        """Delay added to the nominal release ``phase + m * period``."""


class NoJitter(ReleaseJitterModel):
    """Strictly periodic environment releases (the paper's setting)."""

    def jitter(self, task_index: int, instance: int) -> float:
        return 0.0


class UniformReleaseJitter(ReleaseJitterModel):
    """Release delay drawn uniformly from ``[0, bound]``.

    Models the sporadic arrivals that break the PM protocol (Section 3.1):
    the inter-release time of first subtasks may exceed the period.  The
    kernel additionally enforces the periodic task model's *minimum*
    separation (releases happen at a fixed maximum rate), so a small
    jitter after a large one never compresses two releases closer than
    one period.
    """

    def __init__(self, bound: float, seed: int | None = None) -> None:
        if bound < 0 or not math.isfinite(bound):
            raise ConfigurationError(
                f"jitter bound must be finite and >= 0, got {bound!r}"
            )
        self.bound = bound
        self._rng = np.random.default_rng(seed)

    def jitter(self, task_index: int, instance: int) -> float:
        return float(self._rng.uniform(0.0, self.bound))
