"""Discrete-event simulation kernel.

The kernel owns the event queue, one fixed-priority preemptive scheduler
per processor (:mod:`repro.sim.scheduler`), the trace, and the plugged-in
synchronization protocol (a :class:`repro.sim.interfaces.ReleaseController`).

Event model
-----------
Four things are queued: environment releases of first subtasks, protocol
timers (PM periodic releases, MPM/RG timer interrupts), instance
completions, and synchronization signals (zero-latency signals are
enqueued at the current instant rather than delivered synchronously, so
the class order below governs them too).  Everything else (guard checks,
idle points) happens synchronously inside those events.  Events at equal
instants are ordered by a fixed class order -- completions, then timers,
then environment releases, then signals -- and FIFO within a class,
making every run fully deterministic.

Time model
----------
All timestamps flow through a pluggable :class:`repro.timebase.Timebase`.
The default ``float`` backend keeps the historical IEEE-double arithmetic
and owns the only tolerances in play; the ``exact`` backend does rational
arithmetic, under which every comparison below is exact and timestamp
clamping is impossible (a genuinely past timer raises).

Local clocks
------------
The event queue and every timestamp above live in *true* time, but each
processor may carry a :class:`repro.clocks.ClockModel` describing its
local wall clock.  Protocol controllers never convert themselves; they
use three kernel services: :meth:`Kernel.local_time` (the local reading
of *now*), :meth:`Kernel.true_time_of_local` (when a timer armed for a
local instant fires -- PM phases, RG guard wake-ups), and
:meth:`Kernel.true_time_after_local_duration` (when a timer armed for a
local duration fires -- MPM relay timers).  For perfect clocks all three
are exact pass-throughs, so runs with perfect clocks are byte-identical
to runs without a clock map.

Idle points
-----------
Definition 1 of the paper calls ``t`` an idle point on a processor when
every instance released before ``t`` has completed by ``t`` -- even if new
instances are released exactly at ``t``.  The kernel therefore performs
idle-point notification *immediately after* finalizing a completion that
empties the processor, before the protocol gets the chance to release new
instances in reaction to that completion.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.clocks.models import ClockMap, ClockModel
from repro.errors import SimulationError
from repro.faults.channel import FaultyChannel
from repro.faults.config import FaultConfig
from repro.faults.plane import FaultEvent, FaultPlane
from repro.locks.config import LockingConfig
from repro.locks.manager import LockManager
from repro.model.system import System
from repro.model.task import ProcessorId, SubtaskId
from repro.sim.interfaces import ReleaseController
from repro.sim.network import SignalLatencyModel, ZeroLatency
from repro.sim.scheduler import ProcessorScheduler
from repro.sim.tracing import PrecedenceViolation, Trace
from repro.sim.variation import (
    DeterministicExecution,
    ExecutionModel,
    NoJitter,
    ReleaseJitterModel,
)
from repro.timebase import Timebase, fmt, get_timebase

__all__ = ["Kernel", "EventQueue", "EVENT_COMPLETION", "EVENT_TIMER",
           "EVENT_ENV", "EVENT_SIGNAL"]

# Event class ordering at equal timestamps (smaller runs first).
EVENT_COMPLETION = 0
EVENT_TIMER = 1
EVENT_ENV = 2
EVENT_SIGNAL = 3

#: An event handle; ``handle[-1]`` is the active flag used for lazy
#: cancellation.
EventHandle = list


def _dead_handle(time: float, callback: Callable[[float], None]) -> EventHandle:
    """A pre-cancelled handle for a timer the fault plane swallowed.

    Callers may still cancel it; it never fires.
    """
    return [time, EVENT_TIMER, -1, callback, False]


class EventQueue:
    """A deterministic cancellable priority queue of timed callbacks."""

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._counter = itertools.count()

    def push(
        self, time: float, order: int, callback: Callable[[float], None]
    ) -> EventHandle:
        """Schedule ``callback(time)``; returns a cancellable handle."""
        handle: EventHandle = [time, order, next(self._counter), callback, True]
        heapq.heappush(self._heap, handle)
        return handle

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Mark a scheduled event as dead; it will be skipped when popped."""
        handle[-1] = False

    def pop(self) -> EventHandle | None:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle[-1]:
                return handle
        return None

    def peek_time(self) -> float | None:
        """The timestamp of the earliest live event, or None when empty."""
        while self._heap and not self._heap[0][-1]:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return sum(1 for handle in self._heap if handle[-1])


class Kernel:
    """Event-driven executor of one simulated system under one protocol.

    Parameters
    ----------
    system:
        The static system description.
    controller:
        The synchronization protocol runtime.  The kernel binds it and
        drives its hooks; the controller calls back into
        :meth:`release`, :meth:`schedule_timer` and :meth:`send_signal`.
    horizon:
        Simulation end time.  Events scheduled after the horizon are never
        processed; instances in flight at the horizon remain incomplete
        and are excluded from metrics.
    execution_model / jitter_model / latency_model:
        Variation plug-ins; the defaults reproduce the paper's setting
        (exact WCETs, strictly periodic releases, instantaneous signals).
    strict_precedence:
        When True, a detected precedence violation raises
        :class:`SimulationError` instead of only being recorded.
    clocks:
        Per-processor local clock models (default: every clock perfect).
        See the module docstring's "Local clocks" section.
    timebase:
        Arithmetic backend for all timestamps (name or
        :class:`~repro.timebase.Timebase` instance; default ``"float"``).
    faults:
        Fault-injection and recovery configuration
        (:class:`repro.faults.FaultConfig`).  The kernel builds one
        :class:`~repro.faults.FaultPlane` per run from it, wraps the
        latency model in a :class:`~repro.faults.FaultyChannel` and the
        execution model in the overrun stream, and exposes the plane's
        log on ``trace.faults``.  A null config (every rate zero, no
        crash windows) leaves the run byte-identical to ``faults=None``.
    locking:
        Locking-protocol configuration
        (:class:`repro.locks.LockingConfig`) arbitrating the system's
        critical sections.  Only consulted when the system actually
        declares critical sections: the kernel then builds one
        :class:`~repro.locks.LockManager` per run (default protocol
        DPCP when ``locking`` is None) and exposes its event log on
        ``trace.locks``.  For a system without critical sections the
        argument is inert and the run is byte-identical to
        ``locking=None`` -- no lock machinery is constructed at all.
    """

    def __init__(
        self,
        system: System,
        controller: ReleaseController,
        horizon: float,
        *,
        execution_model: ExecutionModel | None = None,
        jitter_model: ReleaseJitterModel | None = None,
        latency_model: SignalLatencyModel | None = None,
        record_segments: bool = True,
        record_idle_points: bool = False,
        strict_precedence: bool = False,
        max_events: int | None = None,
        clocks: ClockMap | None = None,
        timebase: Timebase | str = "float",
        faults: FaultConfig | None = None,
        locking: LockingConfig | None = None,
    ) -> None:
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon!r}")
        self.timebase = get_timebase(timebase)
        self.clocks = clocks if clocks is not None else ClockMap.perfect()
        self.system = system
        self.controller = controller
        self.horizon = self.timebase.convert(horizon)
        self.execution_model = execution_model or DeterministicExecution()
        self.jitter_model = jitter_model or NoJitter()
        self.latency_model = latency_model or ZeroLatency()
        self.strict_precedence = strict_precedence
        self.max_events = max_events
        self.now = self.timebase.zero
        self.queue = EventQueue()
        self.trace = Trace(
            system,
            self.horizon,
            record_segments=record_segments,
            record_idle_points=record_idle_points,
            timebase=self.timebase,
        )
        # Fault plane (see repro.faults): faults enter through exactly
        # three seams -- the latency model (channel faults), the
        # execution model (overrun injection) and the kernel services
        # below (timer loss, crash windows, policing, recovery).
        self.fault_config = faults
        if faults is not None:
            self.fault_plane: FaultPlane | None = FaultPlane(
                faults, timebase=self.timebase
            )
            self.latency_model = FaultyChannel(
                self.latency_model, self.fault_plane
            )
            self.execution_model = self.fault_plane.wrap_execution(
                self.execution_model
            )
            self.trace.faults = self.fault_plane.log
        else:
            self.fault_plane = None
        #: Processors currently inside a crash window.
        self._crashed: set[ProcessorId] = set()
        #: Work queued during a crash window, replayed FIFO at restart:
        #: ("release"|"signal", sid, instance, crash-defer event).
        self._deferred: dict[
            ProcessorId, list[tuple[str, SubtaskId, int, FaultEvent]]
        ] = {}
        #: Live timers per processor (only tracked when crash windows
        #: exist): (handle, sid, instance) so a crash can cancel and
        #: document them.
        self._processor_timers: dict[
            ProcessorId, list[tuple[EventHandle, SubtaskId | None, int | None]]
        ] = {}
        #: Drop events per logical signal, awaiting a retransmitted copy.
        self._undelivered_drops: dict[
            tuple[SubtaskId, int], list[FaultEvent]
        ] = {}
        #: Instances the overrun "abort" policy kills at budget exhaustion.
        self._doomed: set[tuple[SubtaskId, int]] = set()
        self.schedulers: dict[ProcessorId, ProcessorScheduler] = {
            processor: ProcessorScheduler(processor, self)
            for processor in system.processors
        }
        # Lock manager: built only for systems that declare critical
        # sections, so resource-free runs take the exact historical code
        # path regardless of the ``locking`` argument.
        self.locking_config = locking
        if system.has_critical_sections:
            self.lock_manager: LockManager | None = LockManager(
                self, locking if locking is not None else LockingConfig()
            )
            self.trace.locks = self.lock_manager.log
        else:
            self.lock_manager = None
        self._events_processed = 0
        self._last_env_release: dict[int, float] = {}
        # Task parameters, converted once into the timebase so the event
        # arithmetic below never mixes representations.
        self._task_periods = [
            self.timebase.convert(task.period) for task in system.tasks
        ]
        self._task_phases = [
            self.timebase.convert(task.phase) for task in system.tasks
        ]

    # ------------------------------------------------------------------
    # Services used by controllers and schedulers
    # ------------------------------------------------------------------
    def schedule_timer(
        self,
        time: float,
        callback: Callable[[float], None],
        *,
        processor: ProcessorId | None = None,
        sid: SubtaskId | None = None,
        instance: int | None = None,
    ) -> EventHandle:
        """Run ``callback`` at ``time`` (timer event class).

        A timer genuinely in the past (before ``now`` in the timebase's
        comparison semantics) raises.  Under the float backend a timer
        inside the tolerance window below ``now`` is clamped to ``now``
        -- observably: the clamp is recorded on the trace.  Under the
        exact backend that window is empty, so any ``time < now`` raises.

        ``processor`` names the processor whose scheduler hosts the
        timer (protocol controllers pass it); with a fault plane armed,
        a hosted timer may be randomly lost (never fires; recorded as a
        ``timer-loss`` event) and dies with its processor's crash
        window.  ``sid``/``instance`` give the loss event its context so
        the fault-aware trace validator can excuse the exact releases
        that went missing.  Timers without a processor (kernel-internal
        machinery such as the retransmit watchdog and crash transitions)
        are never faulted.
        """
        time = self.timebase.convert(time)
        if self.timebase.lt(time, self.now):
            raise SimulationError(
                f"timer scheduled in the past: {fmt(time)} < now "
                f"{fmt(self.now)}"
            )
        if time < self.now:
            self.trace.note_timer_clamp(time, self.now)
            time = self.now
        plane = self.fault_plane
        if plane is not None and processor is not None:
            if processor in self._crashed:
                plane.log.note(
                    "crash-timer-loss",
                    self.now,
                    processor=processor,
                    sid=sid,
                    instance=instance,
                    detail="timer installed during crash window",
                )
                return _dead_handle(time, callback)
            if plane.lose_timer():
                plane.log.note(
                    "timer-loss",
                    self.now,
                    processor=processor,
                    sid=sid,
                    instance=instance,
                    detail=f"timer for {fmt(time)} never fires",
                )
                return _dead_handle(time, callback)
        handle = self.queue.push(time, EVENT_TIMER, callback)
        if (
            plane is not None
            and plane.has_crashes
            and processor is not None
        ):
            self._processor_timers.setdefault(processor, []).append(
                (handle, sid, instance)
            )
        return handle

    # ------------------------------------------------------------------
    # Local-clock services (see the module docstring)
    # ------------------------------------------------------------------
    def clock_of(self, processor: ProcessorId) -> ClockModel:
        """The local clock model of ``processor``."""
        return self.clocks.for_processor(processor)

    def local_time(self, processor: ProcessorId) -> float:
        """What ``processor``'s wall clock reads right now.

        For a perfect clock this returns ``self.now`` unchanged.
        """
        clock = self.clocks.for_processor(processor)
        if clock.is_perfect:
            return self.now
        return clock.local_from_true(self.now, self.timebase)

    def true_time_of_local(
        self, processor: ProcessorId, local_when: float
    ) -> float:
        """The true instant a timer armed for local instant ``local_when``
        on ``processor`` fires: the first time the local clock reads at
        least ``local_when``, never before *now*.

        For a perfect clock this returns ``local_when`` unchanged (so the
        historical clamping/raising semantics of :meth:`schedule_timer`
        stay byte-identical); for imperfect clocks a target the local
        clock already passed fires immediately.
        """
        clock = self.clocks.for_processor(processor)
        if clock.is_perfect:
            return local_when
        when = clock.true_from_local(local_when, self.timebase)
        return when if when > self.now else self.now

    def true_time_after_local_duration(
        self, processor: ProcessorId, duration: float
    ) -> float:
        """The true instant a timer armed for a local *duration* fires:
        the first time ``processor``'s clock has advanced by ``duration``
        past its current reading.

        For a perfect clock this is exactly ``self.now + duration``,
        which is what keeps MPM byte-identical to its pre-clock
        behaviour; a pure offset cancels here (the paper's argument for
        local timers), leaving only drift and resync-jump error.
        """
        clock = self.clocks.for_processor(processor)
        if clock.is_perfect:
            return self.now + duration
        target = clock.local_from_true(self.now, self.timebase) + duration
        when = clock.true_from_local(target, self.timebase)
        return when if when > self.now else self.now

    def schedule_completion(
        self, time: float, callback: Callable[[float], None]
    ) -> EventHandle:
        """Internal: schedule a completion event (used by schedulers)."""
        return self.queue.push(time, EVENT_COMPLETION, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event."""
        EventQueue.cancel(handle)

    def send_signal(self, sid: SubtaskId, instance: int) -> None:
        """Deliver a synchronization signal for instance ``instance`` of
        ``sid`` to the scheduler of ``sid``'s processor.

        The signal is the paper's dotted arrow: the sending scheduler tells
        the receiving scheduler that a predecessor instance completed (DS,
        RG) or that its response-time budget elapsed (MPM).  Delivery takes
        whatever the latency model says (zero by default) and invokes the
        controller's :meth:`~repro.sim.interfaces.ReleaseController.on_signal`.

        Zero-latency signals are enqueued at the current instant rather
        than delivered synchronously mid-event, so the deterministic
        class order at equal instants (completions, timers, environment
        releases, then signals) governs them like any other event.

        With a fault plane armed the signal travels through a
        :class:`~repro.faults.FaultyChannel` delivery plan: it may be
        dropped (and, when the watchdog is on, retransmitted after the
        ack timeout), duplicated, or reordered; copies arriving at a
        crashed processor queue until restart.
        """
        predecessor = sid.predecessor
        source = (
            self.system.subtask(predecessor).processor
            if predecessor is not None
            else self.system.subtask(sid).processor
        )
        destination = self.system.subtask(sid).processor
        self._transmit_signal(sid, instance, source, destination, attempt=0)

    def _transmit_signal(
        self,
        sid: SubtaskId,
        instance: int,
        source: ProcessorId,
        destination: ProcessorId,
        attempt: int,
    ) -> None:
        """One transmission attempt of a synchronization signal."""
        plan = self.latency_model.plan_in(source, destination, self.timebase)
        for delay in plan.delays:
            if delay < 0:
                raise SimulationError(f"negative signal latency {delay!r}")
        plane = self.fault_plane
        if plane is not None:
            if plan.dropped:
                event = plane.log.note(
                    "signal-drop",
                    self.now,
                    sid=sid,
                    instance=instance,
                    detail=f"attempt {attempt}",
                )
                config = plane.config
                if config.watchdog and attempt < config.max_retransmits:
                    # The sender's watchdog: no ack by the timeout means
                    # resend through the (still faulty) channel.  The
                    # drop stays on the books until a copy delivers.
                    self._undelivered_drops.setdefault(
                        (sid, instance), []
                    ).append(event)
                    self.queue.push(
                        self.now + plane.ack_timeout,
                        EVENT_TIMER,
                        lambda now, s=sid, m=instance, src=source,
                        dst=destination, a=attempt: (
                            self._retransmit_signal(s, m, src, dst, a)
                        ),
                    )
                return
            if plan.duplicated:
                plane.log.note(
                    "signal-duplicate", self.now, sid=sid, instance=instance
                )
            if plan.reordered:
                plane.log.note(
                    "signal-reorder",
                    self.now,
                    sid=sid,
                    instance=instance,
                    detail=f"delayed by {fmt(plane.reorder_delay)}",
                )
        for delay in plan.delays:
            self.queue.push(
                self.now + delay,
                EVENT_SIGNAL,
                lambda now, s=sid, m=instance: (
                    self._signal_delivered(s, m, now)
                ),
            )

    def _retransmit_signal(
        self,
        sid: SubtaskId,
        instance: int,
        source: ProcessorId,
        destination: ProcessorId,
        attempt: int,
    ) -> None:
        """Watchdog fired: resend a signal whose copies were all lost."""
        plane = self.fault_plane
        assert plane is not None
        plane.log.note(
            "signal-retransmit",
            self.now,
            sid=sid,
            instance=instance,
            detail=f"attempt {attempt + 1}",
        )
        self._transmit_signal(sid, instance, source, destination, attempt + 1)

    def _signal_delivered(
        self, sid: SubtaskId, instance: int, now: float
    ) -> None:
        """A signal copy arrived at its destination scheduler."""
        plane = self.fault_plane
        if plane is not None:
            # A delivered copy is the ack: every outstanding drop of
            # this logical signal is recovered, with latency measured
            # from the original send.
            outstanding = self._undelivered_drops.pop((sid, instance), None)
            if outstanding:
                for event in outstanding:
                    event.recovered = True
                    event.recovery_time = now
                    event.detail += "; recovered by retransmission"
            destination = self.system.subtask(sid).processor
            if destination in self._crashed:
                # The destination scheduler is dark: the interrupt is
                # masked and queued, to be handled at restart.
                event = plane.log.note(
                    "crash-defer",
                    now,
                    sid=sid,
                    instance=instance,
                    processor=destination,
                    detail="signal held during crash window",
                )
                self._deferred[destination].append(
                    ("signal", sid, instance, event)
                )
                return
        self.controller.on_signal(sid, instance, now)

    def release(self, sid: SubtaskId, instance: int) -> None:
        """Release instance ``instance`` of subtask ``sid`` now.

        Records the release, performs the precedence check of the paper's
        model (instance ``m`` of ``T_i,j`` must not be released before
        instance ``m`` of ``T_i,j-1`` completed), fires the controller's
        ``on_release`` hook (RG rule 1, MPM timer installation), then hands
        the instance to the processor's scheduler, which may preempt.

        With a fault plane armed, three things may intervene: a release
        targeting a crashed processor queues until restart; a release of
        an already-released instance is a double release (absorbed and
        recorded as recovered when ``suppress_duplicates`` is on,
        recorded as an unrecovered ``duplicate-release`` violation
        otherwise -- the trace keeps the first release either way); and
        a demand exceeding the WCET budget is policed per
        ``overrun_policy``.
        """
        now = self.now
        plane = self.fault_plane
        if plane is not None:
            target = self.system.subtask(sid).processor
            if target in self._crashed:
                event = plane.log.note(
                    "crash-defer",
                    now,
                    sid=sid,
                    instance=instance,
                    processor=target,
                    detail="release deferred to restart",
                )
                self._deferred[target].append(
                    ("release", sid, instance, event)
                )
                return
            if (sid, instance) in self.trace.releases:
                suppressed = plane.config.suppress_duplicates
                plane.log.note(
                    "duplicate-release",
                    now,
                    sid=sid,
                    instance=instance,
                    detail=(
                        "suppressed by the kernel"
                        if suppressed
                        else "double release stands unrecovered"
                    ),
                    recovered=suppressed,
                    recovery_time=now if suppressed else None,
                )
                return
        predecessor = sid.predecessor
        if predecessor is not None:
            completed = (predecessor, instance) in self.trace.completions
            if not completed and self._completes_at_this_instant(
                predecessor, instance, now
            ):
                # Float non-associativity can put a protocol timer a few
                # ulps before the completion event it is synchronized to
                # (e.g. PM's (phase+R)+m*p vs the completion's
                # (phase+m*p)+R).  A predecessor finishing within float
                # noise of `now` counts as complete.
                completed = True
            if not completed:
                violation = PrecedenceViolation(
                    sid=sid,
                    instance=instance,
                    release_time=now,
                    predecessor=predecessor,
                )
                self.trace.note_violation(violation)
                if self.strict_precedence:
                    raise SimulationError(
                        f"precedence violation: {sid}#{instance} released at "
                        f"{fmt(now)} before {predecessor}#{instance} completed"
                    )
        self.trace.note_release(sid, instance, now)
        self.controller.on_release(sid, instance, now)
        subtask = self.system.subtask(sid)
        demand = self.execution_model.duration(
            sid, instance, subtask.execution_time
        )
        if demand <= 0:
            raise SimulationError(
                f"execution model produced non-positive demand {demand!r} "
                f"for {sid}#{instance}"
            )
        demand = self.timebase.convert(demand)
        if plane is not None:
            demand = self._police_overrun(sid, instance, subtask, demand, now)
        if self.lock_manager is not None and subtask.critical_sections:
            # Resourceful instances execute as a chunk plan (home
            # execution chunks + remote agent chunks) under the lock
            # manager instead of as one block on the home scheduler.
            self.lock_manager.admit(sid, instance, demand, now)
            return
        self.schedulers[subtask.processor].add(sid, instance, demand, now)

    def _police_overrun(
        self, sid: SubtaskId, instance: int, subtask, demand, now
    ):
        """Apply the overrun policy to one instance's demand.

        Any demand above the WCET budget is an overrun, whether it came
        from the fault plane's own injection stream or from a
        user-supplied execution model.  ``"throttle"`` caps the demand
        at the budget (the instance completes on time -- recovered);
        ``"abort"`` also caps it but kills the instance when the budget
        is exhausted (no completion, no signal downstream); ``"off"``
        lets it run and records the unrecovered overrun.
        """
        plane = self.fault_plane
        assert plane is not None
        budget = self.timebase.convert(subtask.execution_time)
        if not self.timebase.gt(demand, budget):
            return demand
        policy = plane.config.overrun_policy
        if policy == "throttle":
            plane.log.note(
                "overrun",
                now,
                sid=sid,
                instance=instance,
                detail=(
                    f"demand {fmt(demand)} throttled to budget {fmt(budget)}"
                ),
                recovered=True,
                recovery_time=now,
            )
            return budget
        if policy == "abort":
            plane.log.note(
                "overrun",
                now,
                sid=sid,
                instance=instance,
                detail=f"demand {fmt(demand)} will abort at budget "
                f"{fmt(budget)}",
                recovered=True,
                recovery_time=now,
            )
            self._doomed.add((sid, instance))
            return budget
        plane.log.note(
            "overrun",
            now,
            sid=sid,
            instance=instance,
            detail=f"demand {fmt(demand)} exceeds budget {fmt(budget)}, "
            f"unpoliced",
        )
        return demand

    def is_idle(self, processor: ProcessorId) -> bool:
        """True when ``processor`` has no released, uncompleted instance.

        An instance away from its home processor for a lock (suspended
        in a waiter queue or executing an agent chunk remotely) is
        released and uncompleted there, even though the home scheduler
        cannot see it -- Definition 1 counts it.
        """
        if self.lock_manager is not None and self.lock_manager.has_away_on(
            processor
        ):
            return False
        return self.schedulers[processor].is_idle

    @property
    def idle_points_lost(self) -> bool:
        """True when the fault plane disabled idle-point detection.

        Protocols that detect idle points themselves (RG's signal-path
        check, Definition 1) must consult this and degrade -- for RG, to
        rule-1-only operation.
        """
        return (
            self.fault_plane is not None
            and self.fault_plane.config.lose_idle_points
        )

    # ------------------------------------------------------------------
    # Crash-restart machinery
    # ------------------------------------------------------------------
    def _schedule_crash_windows(self) -> None:
        """Queue the crash/restart transitions of the fault config.

        Scheduled before the controller starts, so at equal instants a
        crash transition precedes same-instant protocol timers (FIFO
        within the timer class).
        """
        plane = self.fault_plane
        if plane is None:
            return
        for processor, start, end in plane.crash_windows(
            list(self.system.processors), self.horizon
        ):
            self.queue.push(
                start,
                EVENT_TIMER,
                lambda now, p=processor: self._crash(p, now),
            )
            self.queue.push(
                end,
                EVENT_TIMER,
                lambda now, p=processor: self._restart(p, now),
            )

    def _crash(self, processor: ProcessorId, now: float) -> None:
        """The processor goes dark: wipe its scheduler state and pending
        timers; releases and signals targeting it queue until restart."""
        plane = self.fault_plane
        assert plane is not None
        self._crashed.add(processor)
        self._deferred.setdefault(processor, [])
        plane.log.note("crash", now, processor=processor)
        for sid, instance in self.schedulers[processor].crash(now):
            plane.log.note(
                "crash-loss",
                now,
                sid=sid,
                instance=instance,
                processor=processor,
                detail="in-flight instance lost to crash",
            )
            self._doomed.discard((sid, instance))
        if self.lock_manager is not None:
            self.lock_manager.on_crash(processor, now)
        for handle, sid, instance in self._processor_timers.pop(
            processor, []
        ):
            if not handle[-1]:
                continue  # already fired or cancelled
            self.cancel(handle)
            plane.log.note(
                "crash-timer-loss",
                now,
                sid=sid,
                instance=instance,
                processor=processor,
                detail="pending timer lost to crash",
            )

    def _restart(self, processor: ProcessorId, now: float) -> None:
        """The processor comes back up: replay deferred work FIFO.

        Deferred releases are performed (and recorded) at the restart
        instant; deferred signals re-enter the protocol's signal hook,
        so RG's guard logic still governs them.
        """
        plane = self.fault_plane
        assert plane is not None
        self._crashed.discard(processor)
        plane.log.note("restart", now, processor=processor)
        for kind, sid, instance, event in self._deferred.pop(processor, []):
            event.recovered = True
            event.recovery_time = now
            if kind == "release":
                self.release(sid, instance)
            else:
                self.controller.on_signal(sid, instance, now)

    def _completes_at_this_instant(
        self, sid: SubtaskId, instance: int, now: float
    ) -> bool:
        """True when ``sid``'s instance is running with its completion due
        at ``now`` (within tolerance under the float backend; exactly
        under the exact backend, where a same-instant completion event --
        class 0 -- pops before the release that asks)."""
        if self.lock_manager is not None and self.lock_manager.manages(
            sid, instance
        ):
            # A chunked instance completes only when its *last* chunk
            # does, possibly on a synchronization processor; mid-plan
            # chunk completions must not pass for instance completions.
            return self.lock_manager.completes_at(sid, instance, now)
        scheduler = self.schedulers[self.system.subtask(sid).processor]
        running = scheduler.running
        if (
            running is None
            or running.sid != sid
            or running.instance != instance
        ):
            return False
        finish = scheduler.pending_completion_time()
        assert finish is not None
        return self.timebase.leq(finish, now)

    # ------------------------------------------------------------------
    # Completion plumbing (called by schedulers)
    # ------------------------------------------------------------------
    def instance_completed(
        self,
        sid: SubtaskId,
        instance: int,
        now: float,
        processor: ProcessorId | None = None,
    ) -> None:
        """Scheduler callback: an instance finished executing.

        Order matters (see module docstring): record, then idle-point
        notification, then the protocol's completion hook, then let the
        scheduler dispatch the next ready instance.

        ``processor`` is where the execution actually finished (the
        calling scheduler); it defaults to the subtask's home processor.
        Under locking it can differ -- a critical-section agent chunk
        completes on a synchronization processor -- and a *mid-plan*
        chunk completion is not an instance completion at all: the lock
        manager advances the plan and the kernel only frees the calling
        processor.  When the final chunk of a lock-managed instance
        completes away from home, the home processor (now possibly
        empty of the instance that was "away" holding a lock) gets its
        idle-point check too.

        An instance doomed by the ``"abort"`` overrun policy is killed
        here instead: budget exhausted, no completion is recorded and no
        completion hook fires (so no signal goes downstream), but the
        processor is freed -- idle-point notification and dispatch
        proceed as for a completion.
        """
        home = self.system.subtask(sid).processor
        if processor is None:
            processor = home
        scheduler = self.schedulers[processor]
        if self.lock_manager is not None and self.lock_manager.manages(
            sid, instance
        ):
            final = self.lock_manager.on_chunk_complete(sid, instance, now)
            if not final:
                self._notify_idle_point(scheduler, processor, now)
                scheduler.dispatch_if_needed(now)
                return
        plane = self.fault_plane
        if plane is not None and (sid, instance) in self._doomed:
            self._doomed.discard((sid, instance))
            plane.log.note(
                "overrun-abort",
                now,
                sid=sid,
                instance=instance,
                detail="killed at budget exhaustion",
            )
            self._notify_idle_point(scheduler, processor, now)
            scheduler.dispatch_if_needed(now)
            return
        self.trace.note_completion(sid, instance, now)
        self._notify_idle_point(scheduler, processor, now)
        if processor != home:
            self._notify_idle_point(self.schedulers[home], home, now)
        self.controller.on_completion(sid, instance, now)
        scheduler.dispatch_if_needed(now)
        if processor != home:
            self.schedulers[home].dispatch_if_needed(now)

    def _notify_idle_point(
        self, scheduler: ProcessorScheduler, processor: ProcessorId,
        now: float,
    ) -> None:
        """Fire idle-point notification if the processor just emptied.

        With ``lose_idle_points`` armed the detection mechanism is
        broken: the idle point is recorded as an ``idle-loss`` event
        instead of reaching the trace or the controller, degrading RG
        to rule-1-only operation.
        """
        if not scheduler.is_idle:
            return
        if self.lock_manager is not None and self.lock_manager.has_away_on(
            processor
        ):
            # An instance homed here is suspended on (or holding) a lock
            # elsewhere: released, not completed -- no idle point yet.
            return
        plane = self.fault_plane
        if plane is not None and plane.config.lose_idle_points:
            plane.log.note("idle-loss", now, processor=processor)
            return
        self.trace.note_idle_point(processor, now)
        self.controller.on_idle(processor, now)

    # ------------------------------------------------------------------
    # Environment releases
    # ------------------------------------------------------------------
    def _schedule_env_release(self, task_index: int, instance: int) -> None:
        period = self._task_periods[task_index]
        nominal = self._task_phases[task_index] + instance * period
        jitter = self.jitter_model.jitter(task_index, instance)
        if jitter < 0:
            raise SimulationError(f"negative release jitter {jitter!r}")
        when = nominal + self.timebase.convert(jitter)
        # The paper's periodic task model (Section 1) defines the period
        # as a *minimum* inter-release time -- releases are "made at a
        # fixed maximum rate".  A jittered release therefore never
        # compresses the separation below the period; late releases push
        # all later ones out (the sporadic ratchet).
        previous = self._last_env_release.get(task_index)
        if previous is not None:
            when = max(when, previous + period)
        if when > self.horizon:
            return
        self.queue.push(
            when,
            EVENT_ENV,
            lambda now, i=task_index, m=instance: self._fire_env_release(
                i, m, now
            ),
        )

    def _fire_env_release(
        self, task_index: int, instance: int, now: float
    ) -> None:
        first = SubtaskId(task_index, 0)
        self._last_env_release[task_index] = now
        self.trace.note_env_release(task_index, instance, now)
        self.controller.on_env_release(first, instance, now)
        self._schedule_env_release(task_index, instance + 1)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Execute the simulation up to the horizon; returns the trace."""
        self.controller.bind(self)
        self._schedule_crash_windows()
        self.controller.start()
        for task_index in range(len(self.system.tasks)):
            self._schedule_env_release(task_index, 0)
        while True:
            handle = self.queue.pop()
            if handle is None:
                break
            time, _order, _seq, callback, _live = handle
            if time > self.horizon:
                break
            if self.timebase.lt(time, self.now):
                raise SimulationError(
                    f"event queue went backwards: {fmt(time)} < "
                    f"{fmt(self.now)}"
                )
            self.now = time
            callback(time)
            self._events_processed += 1
            if (
                self.max_events is not None
                and self._events_processed > self.max_events
            ):
                raise SimulationError(
                    f"event budget exceeded ({self.max_events} events); "
                    f"now={fmt(self.now)}, horizon={fmt(self.horizon)}"
                )
        self.now = self.horizon
        return self.trace

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_processed
