"""Discrete-event simulation kernel.

The kernel owns the event queue, one fixed-priority preemptive scheduler
per processor (:mod:`repro.sim.scheduler`), the trace, and the plugged-in
synchronization protocol (a :class:`repro.sim.interfaces.ReleaseController`).

Event model
-----------
Four things are queued: environment releases of first subtasks, protocol
timers (PM periodic releases, MPM/RG timer interrupts), instance
completions, and synchronization signals (zero-latency signals are
enqueued at the current instant rather than delivered synchronously, so
the class order below governs them too).  Everything else (guard checks,
idle points) happens synchronously inside those events.  Events at equal
instants are ordered by a fixed class order -- completions, then timers,
then environment releases, then signals -- and FIFO within a class,
making every run fully deterministic.

Time model
----------
All timestamps flow through a pluggable :class:`repro.timebase.Timebase`.
The default ``float`` backend keeps the historical IEEE-double arithmetic
and owns the only tolerances in play; the ``exact`` backend does rational
arithmetic, under which every comparison below is exact and timestamp
clamping is impossible (a genuinely past timer raises).

Local clocks
------------
The event queue and every timestamp above live in *true* time, but each
processor may carry a :class:`repro.clocks.ClockModel` describing its
local wall clock.  Protocol controllers never convert themselves; they
use three kernel services: :meth:`Kernel.local_time` (the local reading
of *now*), :meth:`Kernel.true_time_of_local` (when a timer armed for a
local instant fires -- PM phases, RG guard wake-ups), and
:meth:`Kernel.true_time_after_local_duration` (when a timer armed for a
local duration fires -- MPM relay timers).  For perfect clocks all three
are exact pass-throughs, so runs with perfect clocks are byte-identical
to runs without a clock map.

Idle points
-----------
Definition 1 of the paper calls ``t`` an idle point on a processor when
every instance released before ``t`` has completed by ``t`` -- even if new
instances are released exactly at ``t``.  The kernel therefore performs
idle-point notification *immediately after* finalizing a completion that
empties the processor, before the protocol gets the chance to release new
instances in reaction to that completion.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.clocks.models import ClockMap, ClockModel
from repro.errors import SimulationError
from repro.model.system import System
from repro.model.task import ProcessorId, SubtaskId
from repro.sim.interfaces import ReleaseController
from repro.sim.network import SignalLatencyModel, ZeroLatency
from repro.sim.scheduler import ProcessorScheduler
from repro.sim.tracing import PrecedenceViolation, Trace
from repro.sim.variation import (
    DeterministicExecution,
    ExecutionModel,
    NoJitter,
    ReleaseJitterModel,
)
from repro.timebase import Timebase, fmt, get_timebase

__all__ = ["Kernel", "EventQueue", "EVENT_COMPLETION", "EVENT_TIMER",
           "EVENT_ENV", "EVENT_SIGNAL"]

# Event class ordering at equal timestamps (smaller runs first).
EVENT_COMPLETION = 0
EVENT_TIMER = 1
EVENT_ENV = 2
EVENT_SIGNAL = 3

#: An event handle; ``handle[-1]`` is the active flag used for lazy
#: cancellation.
EventHandle = list


class EventQueue:
    """A deterministic cancellable priority queue of timed callbacks."""

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._counter = itertools.count()

    def push(
        self, time: float, order: int, callback: Callable[[float], None]
    ) -> EventHandle:
        """Schedule ``callback(time)``; returns a cancellable handle."""
        handle: EventHandle = [time, order, next(self._counter), callback, True]
        heapq.heappush(self._heap, handle)
        return handle

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Mark a scheduled event as dead; it will be skipped when popped."""
        handle[-1] = False

    def pop(self) -> EventHandle | None:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle[-1]:
                return handle
        return None

    def peek_time(self) -> float | None:
        """The timestamp of the earliest live event, or None when empty."""
        while self._heap and not self._heap[0][-1]:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return sum(1 for handle in self._heap if handle[-1])


class Kernel:
    """Event-driven executor of one simulated system under one protocol.

    Parameters
    ----------
    system:
        The static system description.
    controller:
        The synchronization protocol runtime.  The kernel binds it and
        drives its hooks; the controller calls back into
        :meth:`release`, :meth:`schedule_timer` and :meth:`send_signal`.
    horizon:
        Simulation end time.  Events scheduled after the horizon are never
        processed; instances in flight at the horizon remain incomplete
        and are excluded from metrics.
    execution_model / jitter_model / latency_model:
        Variation plug-ins; the defaults reproduce the paper's setting
        (exact WCETs, strictly periodic releases, instantaneous signals).
    strict_precedence:
        When True, a detected precedence violation raises
        :class:`SimulationError` instead of only being recorded.
    clocks:
        Per-processor local clock models (default: every clock perfect).
        See the module docstring's "Local clocks" section.
    timebase:
        Arithmetic backend for all timestamps (name or
        :class:`~repro.timebase.Timebase` instance; default ``"float"``).
    """

    def __init__(
        self,
        system: System,
        controller: ReleaseController,
        horizon: float,
        *,
        execution_model: ExecutionModel | None = None,
        jitter_model: ReleaseJitterModel | None = None,
        latency_model: SignalLatencyModel | None = None,
        record_segments: bool = True,
        record_idle_points: bool = False,
        strict_precedence: bool = False,
        max_events: int | None = None,
        clocks: ClockMap | None = None,
        timebase: Timebase | str = "float",
    ) -> None:
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon!r}")
        self.timebase = get_timebase(timebase)
        self.clocks = clocks if clocks is not None else ClockMap.perfect()
        self.system = system
        self.controller = controller
        self.horizon = self.timebase.convert(horizon)
        self.execution_model = execution_model or DeterministicExecution()
        self.jitter_model = jitter_model or NoJitter()
        self.latency_model = latency_model or ZeroLatency()
        self.strict_precedence = strict_precedence
        self.max_events = max_events
        self.now = self.timebase.zero
        self.queue = EventQueue()
        self.trace = Trace(
            system,
            self.horizon,
            record_segments=record_segments,
            record_idle_points=record_idle_points,
            timebase=self.timebase,
        )
        self.schedulers: dict[ProcessorId, ProcessorScheduler] = {
            processor: ProcessorScheduler(processor, self)
            for processor in system.processors
        }
        self._events_processed = 0
        self._last_env_release: dict[int, float] = {}
        # Task parameters, converted once into the timebase so the event
        # arithmetic below never mixes representations.
        self._task_periods = [
            self.timebase.convert(task.period) for task in system.tasks
        ]
        self._task_phases = [
            self.timebase.convert(task.phase) for task in system.tasks
        ]

    # ------------------------------------------------------------------
    # Services used by controllers and schedulers
    # ------------------------------------------------------------------
    def schedule_timer(
        self, time: float, callback: Callable[[float], None]
    ) -> EventHandle:
        """Run ``callback`` at ``time`` (timer event class).

        A timer genuinely in the past (before ``now`` in the timebase's
        comparison semantics) raises.  Under the float backend a timer
        inside the tolerance window below ``now`` is clamped to ``now``
        -- observably: the clamp is recorded on the trace.  Under the
        exact backend that window is empty, so any ``time < now`` raises.
        """
        time = self.timebase.convert(time)
        if self.timebase.lt(time, self.now):
            raise SimulationError(
                f"timer scheduled in the past: {fmt(time)} < now "
                f"{fmt(self.now)}"
            )
        if time < self.now:
            self.trace.note_timer_clamp(time, self.now)
            time = self.now
        return self.queue.push(time, EVENT_TIMER, callback)

    # ------------------------------------------------------------------
    # Local-clock services (see the module docstring)
    # ------------------------------------------------------------------
    def clock_of(self, processor: ProcessorId) -> ClockModel:
        """The local clock model of ``processor``."""
        return self.clocks.for_processor(processor)

    def local_time(self, processor: ProcessorId) -> float:
        """What ``processor``'s wall clock reads right now.

        For a perfect clock this returns ``self.now`` unchanged.
        """
        clock = self.clocks.for_processor(processor)
        if clock.is_perfect:
            return self.now
        return clock.local_from_true(self.now, self.timebase)

    def true_time_of_local(
        self, processor: ProcessorId, local_when: float
    ) -> float:
        """The true instant a timer armed for local instant ``local_when``
        on ``processor`` fires: the first time the local clock reads at
        least ``local_when``, never before *now*.

        For a perfect clock this returns ``local_when`` unchanged (so the
        historical clamping/raising semantics of :meth:`schedule_timer`
        stay byte-identical); for imperfect clocks a target the local
        clock already passed fires immediately.
        """
        clock = self.clocks.for_processor(processor)
        if clock.is_perfect:
            return local_when
        when = clock.true_from_local(local_when, self.timebase)
        return when if when > self.now else self.now

    def true_time_after_local_duration(
        self, processor: ProcessorId, duration: float
    ) -> float:
        """The true instant a timer armed for a local *duration* fires:
        the first time ``processor``'s clock has advanced by ``duration``
        past its current reading.

        For a perfect clock this is exactly ``self.now + duration``,
        which is what keeps MPM byte-identical to its pre-clock
        behaviour; a pure offset cancels here (the paper's argument for
        local timers), leaving only drift and resync-jump error.
        """
        clock = self.clocks.for_processor(processor)
        if clock.is_perfect:
            return self.now + duration
        target = clock.local_from_true(self.now, self.timebase) + duration
        when = clock.true_from_local(target, self.timebase)
        return when if when > self.now else self.now

    def schedule_completion(
        self, time: float, callback: Callable[[float], None]
    ) -> EventHandle:
        """Internal: schedule a completion event (used by schedulers)."""
        return self.queue.push(time, EVENT_COMPLETION, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event."""
        EventQueue.cancel(handle)

    def send_signal(self, sid: SubtaskId, instance: int) -> None:
        """Deliver a synchronization signal for instance ``instance`` of
        ``sid`` to the scheduler of ``sid``'s processor.

        The signal is the paper's dotted arrow: the sending scheduler tells
        the receiving scheduler that a predecessor instance completed (DS,
        RG) or that its response-time budget elapsed (MPM).  Delivery takes
        whatever the latency model says (zero by default) and invokes the
        controller's :meth:`~repro.sim.interfaces.ReleaseController.on_signal`.

        Zero-latency signals are enqueued at the current instant rather
        than delivered synchronously mid-event, so the deterministic
        class order at equal instants (completions, timers, environment
        releases, then signals) governs them like any other event.
        """
        predecessor = sid.predecessor
        source = (
            self.system.subtask(predecessor).processor
            if predecessor is not None
            else self.system.subtask(sid).processor
        )
        destination = self.system.subtask(sid).processor
        delay = self.latency_model.delay_in(source, destination, self.timebase)
        if delay < 0:
            raise SimulationError(f"negative signal latency {delay!r}")
        self.queue.push(
            self.now + delay,
            EVENT_SIGNAL,
            lambda now, s=sid, m=instance: self.controller.on_signal(
                s, m, now
            ),
        )

    def release(self, sid: SubtaskId, instance: int) -> None:
        """Release instance ``instance`` of subtask ``sid`` now.

        Records the release, performs the precedence check of the paper's
        model (instance ``m`` of ``T_i,j`` must not be released before
        instance ``m`` of ``T_i,j-1`` completed), fires the controller's
        ``on_release`` hook (RG rule 1, MPM timer installation), then hands
        the instance to the processor's scheduler, which may preempt.
        """
        now = self.now
        predecessor = sid.predecessor
        if predecessor is not None:
            completed = (predecessor, instance) in self.trace.completions
            if not completed and self._completes_at_this_instant(
                predecessor, instance, now
            ):
                # Float non-associativity can put a protocol timer a few
                # ulps before the completion event it is synchronized to
                # (e.g. PM's (phase+R)+m*p vs the completion's
                # (phase+m*p)+R).  A predecessor finishing within float
                # noise of `now` counts as complete.
                completed = True
            if not completed:
                violation = PrecedenceViolation(
                    sid=sid,
                    instance=instance,
                    release_time=now,
                    predecessor=predecessor,
                )
                self.trace.note_violation(violation)
                if self.strict_precedence:
                    raise SimulationError(
                        f"precedence violation: {sid}#{instance} released at "
                        f"{fmt(now)} before {predecessor}#{instance} completed"
                    )
        self.trace.note_release(sid, instance, now)
        self.controller.on_release(sid, instance, now)
        subtask = self.system.subtask(sid)
        demand = self.execution_model.duration(
            sid, instance, subtask.execution_time
        )
        if demand <= 0:
            raise SimulationError(
                f"execution model produced non-positive demand {demand!r} "
                f"for {sid}#{instance}"
            )
        self.schedulers[subtask.processor].add(
            sid, instance, self.timebase.convert(demand), now
        )

    def is_idle(self, processor: ProcessorId) -> bool:
        """True when ``processor`` has no released, uncompleted instance."""
        return self.schedulers[processor].is_idle

    def _completes_at_this_instant(
        self, sid: SubtaskId, instance: int, now: float
    ) -> bool:
        """True when ``sid``'s instance is running with its completion due
        at ``now`` (within tolerance under the float backend; exactly
        under the exact backend, where a same-instant completion event --
        class 0 -- pops before the release that asks)."""
        scheduler = self.schedulers[self.system.subtask(sid).processor]
        running = scheduler.running
        if (
            running is None
            or running.sid != sid
            or running.instance != instance
        ):
            return False
        finish = scheduler.pending_completion_time()
        assert finish is not None
        return self.timebase.leq(finish, now)

    # ------------------------------------------------------------------
    # Completion plumbing (called by schedulers)
    # ------------------------------------------------------------------
    def instance_completed(
        self, sid: SubtaskId, instance: int, now: float
    ) -> None:
        """Scheduler callback: an instance finished executing.

        Order matters (see module docstring): record, then idle-point
        notification, then the protocol's completion hook, then let the
        scheduler dispatch the next ready instance.
        """
        self.trace.note_completion(sid, instance, now)
        processor = self.system.subtask(sid).processor
        scheduler = self.schedulers[processor]
        if scheduler.is_idle:
            self.trace.note_idle_point(processor, now)
            self.controller.on_idle(processor, now)
        self.controller.on_completion(sid, instance, now)
        scheduler.dispatch_if_needed(now)

    # ------------------------------------------------------------------
    # Environment releases
    # ------------------------------------------------------------------
    def _schedule_env_release(self, task_index: int, instance: int) -> None:
        period = self._task_periods[task_index]
        nominal = self._task_phases[task_index] + instance * period
        jitter = self.jitter_model.jitter(task_index, instance)
        if jitter < 0:
            raise SimulationError(f"negative release jitter {jitter!r}")
        when = nominal + self.timebase.convert(jitter)
        # The paper's periodic task model (Section 1) defines the period
        # as a *minimum* inter-release time -- releases are "made at a
        # fixed maximum rate".  A jittered release therefore never
        # compresses the separation below the period; late releases push
        # all later ones out (the sporadic ratchet).
        previous = self._last_env_release.get(task_index)
        if previous is not None:
            when = max(when, previous + period)
        if when > self.horizon:
            return
        self.queue.push(
            when,
            EVENT_ENV,
            lambda now, i=task_index, m=instance: self._fire_env_release(
                i, m, now
            ),
        )

    def _fire_env_release(
        self, task_index: int, instance: int, now: float
    ) -> None:
        first = SubtaskId(task_index, 0)
        self._last_env_release[task_index] = now
        self.trace.note_env_release(task_index, instance, now)
        self.controller.on_env_release(first, instance, now)
        self._schedule_env_release(task_index, instance + 1)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Execute the simulation up to the horizon; returns the trace."""
        self.controller.bind(self)
        self.controller.start()
        for task_index in range(len(self.system.tasks)):
            self._schedule_env_release(task_index, 0)
        while True:
            handle = self.queue.pop()
            if handle is None:
                break
            time, _order, _seq, callback, _live = handle
            if time > self.horizon:
                break
            if self.timebase.lt(time, self.now):
                raise SimulationError(
                    f"event queue went backwards: {fmt(time)} < "
                    f"{fmt(self.now)}"
                )
            self.now = time
            callback(time)
            self._events_processed += 1
            if (
                self.max_events is not None
                and self._events_processed > self.max_events
            ):
                raise SimulationError(
                    f"event budget exceeded ({self.max_events} events); "
                    f"now={fmt(self.now)}, horizon={fmt(self.horizon)}"
                )
        self.now = self.horizon
        return self.trace

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_processed
