"""Post-hoc validation of simulation traces.

`validate_trace` re-derives the scheduling rules from a recorded trace
and reports every violation it can find -- an independent check that the
simulator (and any protocol plugged into it) actually produced a
fixed-priority preemptive schedule satisfying the paper's model:

* **exclusivity** -- execution segments on one processor never overlap;
* **priority compliance** -- while an instance executes, no
  higher-priority instance on the same processor is released and
  incomplete (it would have preempted);
* **conservation** -- a completed instance's segments sum to a positive
  demand, at most its WCET unless overruns are declared possible;
* **ordering** -- instances of one subtask are released and completed
  in index order;
* **precedence** -- no instance is released before its predecessor
  instance completed (mirrors the kernel's online check).

The validator needs a trace recorded with ``record_segments=True``.  It
is deliberately independent of the scheduler implementation: it reads
only the trace, so a bug in the scheduler cannot hide itself.

Fault awareness
---------------
Runs under fault injection (:mod:`repro.faults`) legitimately miss
releases, skip completions, and deliver signals out of order.  The
validator accepts the run's fault log as an *exclusion list*: each
anomaly is excused only when a recorded fault event documents exactly
that instance (a dropped signal addressed to it, a timer whose loss
kills its release chain, a crash or abort that destroyed it).  Nothing
is globally relaxed -- an anomaly with no documenting fault event is
still reported, so the fault plane cannot hide scheduler bugs.

Lock awareness
--------------
Runs with critical sections (:mod:`repro.locks`) legitimately invert
priorities in exactly two documented ways, and the validator excuses
each only against the run's lock log (``trace.locks``), mirroring the
fault-log design:

* an *agent* segment -- the running instance's own ``[acquire,
  release)`` hold interval covers the overlap -- executes at boosted
  agent priority on a synchronization processor, so locally
  higher-priority normal instances legitimately wait;
* a *suspended* instance -- the flagged ready instance's ``[request,
  release)`` suspension interval covers the overlap -- is away from its
  home processor waiting for (or holding) a lock, so it was not
  actually ready to preempt.

An inversion covered by neither interval is still reported: the lock
log cannot hide scheduler bugs either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.tracing import Trace
from repro.timebase import REL_EPS, fmt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultLog
    from repro.locks import LockLog

__all__ = ["validate_trace"]

_TOL = REL_EPS

#: Sentinel: "use the fault/lock log the kernel attached to the trace".
_TRACE_LOG = object()


def validate_trace(
    trace: Trace,
    *,
    allow_overruns: bool = False,
    tolerance: float | None = None,
    check_precedence: bool = True,
    fault_log: "FaultLog | None | object" = _TRACE_LOG,
    lock_log: "LockLog | None | object" = _TRACE_LOG,
) -> list[str]:
    """Return a list of human-readable invariant violations (empty = ok).

    ``tolerance`` defaults per the trace's timebase: the shared relative
    guard for float traces, exactly 0 for exact traces -- an exact-mode
    trace has no representation noise to forgive, so any slack would only
    mask real scheduler bugs.  ``check_precedence=False`` drops the
    chain-precedence section only: callers validating a *deliberately*
    precedence-breaking run (PM or MPM on skewed local clocks, where
    timer releases legitimately outrun predecessors) still get the
    scheduling invariants, which hold under any clock assignment.

    ``fault_log`` defaults to the log the kernel attached to the trace
    (``trace.faults``); pass ``None`` to validate a faulty run with no
    exclusions at all.  See *Fault awareness* in the module docstring
    for the exact exclusion semantics.  ``lock_log`` works the same way
    for runs with critical sections (defaults to ``trace.locks``; see
    *Lock awareness*).
    """
    if not trace.record_segments:
        raise SimulationError(
            "trace validation needs a trace recorded with "
            "record_segments=True"
        )
    if tolerance is None:
        tolerance = 0 if trace.timebase.exact else _TOL
    exact = trace.timebase.exact
    issues: list[str] = []
    system = trace.system

    # ------------------------------------------------------------------
    # Exclusion sets from the fault log (all empty for fault-free runs).
    # ------------------------------------------------------------------
    if fault_log is _TRACE_LOG:
        fault_log = trace.faults
    #: Instance -> instant it was destroyed (crash or abort): treated as
    #: an effective completion for priority compliance, and excuses
    #: "had not completed by the horizon".
    lost_times: dict = {}
    #: Instances whose demand was deliberately inflated (policy "off"):
    #: excuses the WCET-conservation check for exactly those instances.
    overrun_excused: set = set()
    #: Instances whose signal was reordered or recovered late by
    #: retransmission: excuses release/completion ordering flips.
    disordered: set = set()
    #: Instances whose release is documented as lost outright.
    missing_release_ok: set = set()
    #: Instances documented as legitimately *late* (crash-deferred) or
    #: *slow* (injected overrun): a timer-released successor racing
    #: ahead of them is the documented fault, not a scheduler bug.
    delayed: set = set()
    #: Subtask -> first instance from which a lost self-rescheduling
    #: timer kills every later release (PM chain semantics).
    chain_lost_from: dict = {}
    if fault_log is not None:
        lost_times = fault_log.lost_instance_times()
        overrun_excused = fault_log.overrun_instances()
        chain_lost_from = fault_log.lost_release_chains()
        delayed = set(overrun_excused)
        for event in fault_log.events:
            if event.sid is None or event.instance is None:
                continue
            key = (event.sid, event.instance)
            if event.kind == "crash-defer":
                delayed.add(key)
            if event.kind == "signal-reorder" or (
                event.kind == "signal-drop" and event.recovered
            ):
                disordered.add(key)
            elif event.kind in ("signal-drop", "crash-defer") and (
                not event.recovered
            ):
                # Signal never delivered, or deferred past the horizon:
                # the addressed release never happens.
                missing_release_ok.add(key)
            if event.kind in ("timer-loss", "crash-timer-loss"):
                # An MPM relay timer is tagged with the *releasing*
                # subtask; its loss silences the successor's release of
                # that one instance.
                successor = system.successor_of(event.sid)
                if successor is not None:
                    missing_release_ok.add((successor, event.instance))

    def release_documented_lost(sid, m) -> bool:
        if (sid, m) in missing_release_ok:
            return True
        start = chain_lost_from.get(sid)
        return start is not None and m >= start

    # ------------------------------------------------------------------
    # Exclusion intervals from the lock log (empty for lock-free runs).
    # ------------------------------------------------------------------
    if lock_log is _TRACE_LOG:
        lock_log = trace.locks
    #: Instance -> [acquire, release) agent-hold spans: the instance ran
    #: at boosted agent priority during these.
    holds: dict = {}
    #: Instance -> [request, release) suspension spans: the instance was
    #: away from its home processor (not actually ready) during these.
    suspensions: dict = {}
    if lock_log is not None:
        holds = lock_log.hold_intervals()
        suspensions = lock_log.suspension_intervals()

    def covered(intervals, start, end) -> bool:
        """True when some documented interval contains [start, end]."""
        return any(
            s <= start + tolerance and end <= e + tolerance
            for (s, e) in intervals
        )

    # ------------------------------------------------------------------
    # Exclusivity and priority compliance, per processor.
    # ------------------------------------------------------------------
    for processor in system.processors:
        segments = trace.segments_on(processor)
        for earlier, later in zip(segments, segments[1:]):
            if later.start < earlier.end - tolerance:
                issues.append(
                    f"{processor}: segments overlap -- "
                    f"{earlier.sid}#{earlier.instance} until {fmt(earlier.end)} "
                    f"vs {later.sid}#{later.instance} from {fmt(later.start)}"
                )
        local_instances = [
            (sid, m)
            for (sid, m) in trace.releases
            if system.subtask(sid).processor == processor
        ]
        for segment in segments:
            running_priority = system.subtask(segment.sid).priority
            for sid, m in local_instances:
                if (sid, m) == (segment.sid, segment.instance):
                    continue
                if system.subtask(sid).priority >= running_priority:
                    continue  # equal or lower priority may wait
                release = trace.releases[(sid, m)]
                completion = trace.completions.get((sid, m))
                if completion is None:
                    # A crashed or aborted instance stops competing for
                    # the processor the moment it is destroyed.
                    completion = lost_times.get((sid, m), float("inf"))
                overlap_start = max(release, segment.start)
                overlap_end = min(completion, segment.end)
                if overlap_end - overlap_start > tolerance:
                    if covered(
                        holds.get((segment.sid, segment.instance), ()),
                        overlap_start,
                        overlap_end,
                    ):
                        # The running segment is a documented agent hold:
                        # boosted agent priority legitimately outranks
                        # the flagged instance's normal priority.
                        continue
                    if covered(
                        suspensions.get((sid, m), ()),
                        overlap_start,
                        overlap_end,
                    ):
                        # The "ready" instance was documented away on a
                        # lock for the whole overlap -- not preemptable.
                        continue
                    issues.append(
                        f"{processor}: {segment.sid}#{segment.instance} ran "
                        f"during ({fmt(overlap_start)}, {fmt(overlap_end)}) while "
                        f"higher-priority {sid}#{m} was ready"
                    )

    # ------------------------------------------------------------------
    # Conservation per completed instance.
    # ------------------------------------------------------------------
    executed: dict = {}
    for segment in trace.segments:
        key = (segment.sid, segment.instance)
        if segment.end < segment.start - tolerance:
            issues.append(f"segment of {segment.sid}#{segment.instance} "
                          f"ends before it starts")
        # Seed with int 0, not 0.0: a float seed would contaminate the
        # exact (Fraction) segment sums and fabricate 1-ulp WCET overruns.
        executed[key] = executed.get(key, 0) + segment.length
    for key, completion in trace.completions.items():
        sid, m = key
        wcet = trace.timebase.convert(system.subtask(sid).execution_time)
        total = executed.get(key, 0)
        if total <= tolerance:
            issues.append(f"{sid}#{m} completed without executing")
        elif (
            total > wcet + tolerance
            and not allow_overruns
            and key not in overrun_excused
        ):
            issues.append(
                f"{sid}#{m} executed {fmt(total)} > WCET {fmt(wcet)}"
            )
        release = trace.releases[key]
        if completion < release - tolerance:
            issues.append(f"{sid}#{m} completed before its release")

    # ------------------------------------------------------------------
    # Ordering per subtask.
    # ------------------------------------------------------------------
    by_subtask: dict = {}
    for (sid, m), time in trace.releases.items():
        by_subtask.setdefault(sid, []).append((m, time))
    for sid, entries in by_subtask.items():
        entries.sort()
        for (m0, t0), (m1, t1) in zip(entries, entries[1:]):
            if t1 < t0 - tolerance and not (
                (sid, m0) in disordered or (sid, m1) in disordered
            ):
                issues.append(
                    f"{sid}: instance {m1} released at {fmt(t1)} before "
                    f"instance {m0} at {fmt(t0)}"
                )
        completions = sorted(
            (m, trace.completions[(sid, m)])
            for (s, m) in trace.completions
            if s == sid
        )
        for (m0, t0), (m1, t1) in zip(completions, completions[1:]):
            if t1 < t0 - tolerance and not (
                (sid, m0) in disordered or (sid, m1) in disordered
            ):
                issues.append(
                    f"{sid}: instance {m1} completed at {fmt(t1)} before "
                    f"instance {m0} at {fmt(t0)}"
                )

    # ------------------------------------------------------------------
    # Precedence along chains.
    # ------------------------------------------------------------------
    if not check_precedence:
        return issues
    for (sid, m), release in trace.releases.items():
        predecessor = sid.predecessor
        if predecessor is None:
            continue
        completion = trace.completions.get((predecessor, m))
        if completion is None:
            if (predecessor, m) in trace.releases:
                pending = trace.releases[(predecessor, m)]
                if release > pending - tolerance and (
                    (predecessor, m) not in lost_times
                    and (predecessor, m) not in delayed
                ):
                    issues.append(
                        f"{sid}#{m} released at {fmt(release)} while "
                        f"{predecessor}#{m} (released {fmt(pending)}) had not "
                        f"completed by the horizon"
                    )
            elif not release_documented_lost(predecessor, m):
                issues.append(
                    f"{sid}#{m} released at {fmt(release)} but {predecessor}#{m} "
                    f"was never released"
                )
        elif release < completion - (
            tolerance
            if exact
            else max(tolerance, _TOL * max(1.0, abs(completion)))
        ) and (predecessor, m) not in delayed:
            issues.append(
                f"{sid}#{m} released at {fmt(release)} before {predecessor}#{m} "
                f"completed at {fmt(completion)}"
            )
    return issues
