"""Post-hoc validation of simulation traces.

`validate_trace` re-derives the scheduling rules from a recorded trace
and reports every violation it can find -- an independent check that the
simulator (and any protocol plugged into it) actually produced a
fixed-priority preemptive schedule satisfying the paper's model:

* **exclusivity** -- execution segments on one processor never overlap;
* **priority compliance** -- while an instance executes, no
  higher-priority instance on the same processor is released and
  incomplete (it would have preempted);
* **conservation** -- a completed instance's segments sum to a positive
  demand, at most its WCET unless overruns are declared possible;
* **ordering** -- instances of one subtask are released and completed
  in index order;
* **precedence** -- no instance is released before its predecessor
  instance completed (mirrors the kernel's online check).

The validator needs a trace recorded with ``record_segments=True``.  It
is deliberately independent of the scheduler implementation: it reads
only the trace, so a bug in the scheduler cannot hide itself.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.tracing import Trace
from repro.timebase import REL_EPS, fmt

__all__ = ["validate_trace"]

_TOL = REL_EPS


def validate_trace(
    trace: Trace,
    *,
    allow_overruns: bool = False,
    tolerance: float | None = None,
    check_precedence: bool = True,
) -> list[str]:
    """Return a list of human-readable invariant violations (empty = ok).

    ``tolerance`` defaults per the trace's timebase: the shared relative
    guard for float traces, exactly 0 for exact traces -- an exact-mode
    trace has no representation noise to forgive, so any slack would only
    mask real scheduler bugs.  ``check_precedence=False`` drops the
    chain-precedence section only: callers validating a *deliberately*
    precedence-breaking run (PM or MPM on skewed local clocks, where
    timer releases legitimately outrun predecessors) still get the
    scheduling invariants, which hold under any clock assignment.
    """
    if not trace.record_segments:
        raise SimulationError(
            "trace validation needs a trace recorded with "
            "record_segments=True"
        )
    if tolerance is None:
        tolerance = 0 if trace.timebase.exact else _TOL
    exact = trace.timebase.exact
    issues: list[str] = []
    system = trace.system

    # ------------------------------------------------------------------
    # Exclusivity and priority compliance, per processor.
    # ------------------------------------------------------------------
    for processor in system.processors:
        segments = trace.segments_on(processor)
        for earlier, later in zip(segments, segments[1:]):
            if later.start < earlier.end - tolerance:
                issues.append(
                    f"{processor}: segments overlap -- "
                    f"{earlier.sid}#{earlier.instance} until {fmt(earlier.end)} "
                    f"vs {later.sid}#{later.instance} from {fmt(later.start)}"
                )
        local_instances = [
            (sid, m)
            for (sid, m) in trace.releases
            if system.subtask(sid).processor == processor
        ]
        for segment in segments:
            running_priority = system.subtask(segment.sid).priority
            for sid, m in local_instances:
                if (sid, m) == (segment.sid, segment.instance):
                    continue
                if system.subtask(sid).priority >= running_priority:
                    continue  # equal or lower priority may wait
                release = trace.releases[(sid, m)]
                completion = trace.completions.get((sid, m), float("inf"))
                overlap_start = max(release, segment.start)
                overlap_end = min(completion, segment.end)
                if overlap_end - overlap_start > tolerance:
                    issues.append(
                        f"{processor}: {segment.sid}#{segment.instance} ran "
                        f"during ({fmt(overlap_start)}, {fmt(overlap_end)}) while "
                        f"higher-priority {sid}#{m} was ready"
                    )

    # ------------------------------------------------------------------
    # Conservation per completed instance.
    # ------------------------------------------------------------------
    executed: dict = {}
    for segment in trace.segments:
        key = (segment.sid, segment.instance)
        if segment.end < segment.start - tolerance:
            issues.append(f"segment of {segment.sid}#{segment.instance} "
                          f"ends before it starts")
        # Seed with int 0, not 0.0: a float seed would contaminate the
        # exact (Fraction) segment sums and fabricate 1-ulp WCET overruns.
        executed[key] = executed.get(key, 0) + segment.length
    for key, completion in trace.completions.items():
        sid, m = key
        wcet = trace.timebase.convert(system.subtask(sid).execution_time)
        total = executed.get(key, 0)
        if total <= tolerance:
            issues.append(f"{sid}#{m} completed without executing")
        elif total > wcet + tolerance and not allow_overruns:
            issues.append(
                f"{sid}#{m} executed {fmt(total)} > WCET {fmt(wcet)}"
            )
        release = trace.releases[key]
        if completion < release - tolerance:
            issues.append(f"{sid}#{m} completed before its release")

    # ------------------------------------------------------------------
    # Ordering per subtask.
    # ------------------------------------------------------------------
    by_subtask: dict = {}
    for (sid, m), time in trace.releases.items():
        by_subtask.setdefault(sid, []).append((m, time))
    for sid, entries in by_subtask.items():
        entries.sort()
        for (m0, t0), (m1, t1) in zip(entries, entries[1:]):
            if t1 < t0 - tolerance:
                issues.append(
                    f"{sid}: instance {m1} released at {fmt(t1)} before "
                    f"instance {m0} at {fmt(t0)}"
                )
        completions = sorted(
            (m, trace.completions[(sid, m)])
            for (s, m) in trace.completions
            if s == sid
        )
        for (m0, t0), (m1, t1) in zip(completions, completions[1:]):
            if t1 < t0 - tolerance:
                issues.append(
                    f"{sid}: instance {m1} completed at {fmt(t1)} before "
                    f"instance {m0} at {fmt(t0)}"
                )

    # ------------------------------------------------------------------
    # Precedence along chains.
    # ------------------------------------------------------------------
    if not check_precedence:
        return issues
    for (sid, m), release in trace.releases.items():
        predecessor = sid.predecessor
        if predecessor is None:
            continue
        completion = trace.completions.get((predecessor, m))
        if completion is None:
            if (predecessor, m) in trace.releases:
                pending = trace.releases[(predecessor, m)]
                if release > pending - tolerance:
                    issues.append(
                        f"{sid}#{m} released at {fmt(release)} while "
                        f"{predecessor}#{m} (released {fmt(pending)}) had not "
                        f"completed by the horizon"
                    )
            else:
                issues.append(
                    f"{sid}#{m} released at {fmt(release)} but {predecessor}#{m} "
                    f"was never released"
                )
        elif release < completion - (
            tolerance
            if exact
            else max(tolerance, _TOL * max(1.0, abs(completion)))
        ):
            issues.append(
                f"{sid}#{m} released at {fmt(release)} before {predecessor}#{m} "
                f"completed at {fmt(completion)}"
            )
    return issues
