"""Metrics computed over simulation traces.

These realize the measurements of Section 5 of the paper: per-task average
end-to-end response (EER) times (the basis of the PM/DS, RG/DS and PM/RG
ratio figures), plus the output-jitter measure of Section 2 and the
deadline-miss counts used in the worked examples.

Runs under fault injection (:mod:`repro.faults`) additionally get a
:class:`FaultSummary` -- per-kind injection counts, how many events a
recovery mechanism absorbed, how many stand as lost guarantees, and the
injection-to-recovery latency spread -- so chaos sweeps can compare
protocols on one number (:attr:`TraceMetrics.unrecovered_violation_count`)
without walking the raw fault log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.model.task import SubtaskId
from repro.sim.tracing import Trace

__all__ = [
    "FaultSummary",
    "TaskMetrics",
    "TraceMetrics",
    "compute_metrics",
    "output_jitter",
]


@dataclass(frozen=True)
class TaskMetrics:
    """Per-task summary of one simulation run."""

    task_index: int
    completed_instances: int
    average_eer: float
    max_eer: float
    min_eer: float
    output_jitter: float
    deadline_misses: int

    @property
    def miss_ratio(self) -> float:
        """Fraction of completed instances that missed the deadline."""
        if self.completed_instances == 0:
            return 0.0
        return self.deadline_misses / self.completed_instances


@dataclass(frozen=True)
class FaultSummary:
    """Aggregated view of one run's fault log.

    ``injected`` holds ``(kind, count)`` pairs in kind order -- a tuple
    rather than a dict so the summary stays hashable with the rest of
    the frozen metrics.  Latencies are ``nan`` when nothing recovered.
    """

    injected: tuple[tuple[str, int], ...]
    recovered: int
    unrecovered_violations: int
    mean_recovery_latency: float
    max_recovery_latency: float

    @property
    def total_injected(self) -> int:
        return sum(count for _kind, count in self.injected)

    @property
    def counts(self) -> dict[str, int]:
        """The injection counts as a plain dict."""
        return dict(self.injected)

    @classmethod
    def from_log(cls, log) -> "FaultSummary":
        """Summarize a :class:`repro.faults.FaultLog`."""
        latencies = log.recovery_latencies()
        return cls(
            injected=tuple(sorted(log.counts().items())),
            recovered=log.recovered_count(),
            unrecovered_violations=log.unrecovered_violations(),
            mean_recovery_latency=(
                sum(latencies) / len(latencies) if latencies else float("nan")
            ),
            max_recovery_latency=(
                max(latencies) if latencies else float("nan")
            ),
        )


@dataclass(frozen=True)
class TraceMetrics:
    """Whole-run summary: one :class:`TaskMetrics` per task."""

    tasks: tuple[TaskMetrics, ...]
    precedence_violations: int
    #: Fault-log summary when the run had a fault plane, else None.
    faults: FaultSummary | None = None

    def task(self, task_index: int) -> TaskMetrics:
        return self.tasks[task_index]

    @property
    def unrecovered_violation_count(self) -> int:
        """Unrecovered fault violations; 0 for fault-free runs."""
        return self.faults.unrecovered_violations if self.faults else 0

    @property
    def total_deadline_misses(self) -> int:
        return sum(task.deadline_misses for task in self.tasks)

    @property
    def any_incomplete(self) -> bool:
        """True if some task completed no instance within the horizon."""
        return any(task.completed_instances == 0 for task in self.tasks)

    def average_eer_vector(self) -> list[float]:
        """Average EER time of every task, in task order."""
        return [task.average_eer for task in self.tasks]


def output_jitter(eer_times: list[float]) -> float:
    """The paper's output jitter: the largest difference between the EER
    times of two *consecutive* task instances.

    Zero when fewer than two instances completed.
    """
    if len(eer_times) < 2:
        return 0.0
    return max(
        abs(later - earlier)
        for earlier, later in zip(eer_times, eer_times[1:])
    )


def compute_metrics(trace: Trace, *, warmup: float = 0.0) -> TraceMetrics:
    """Summarize a trace into per-task metrics.

    Parameters
    ----------
    trace:
        A completed simulation trace.
    warmup:
        Instances whose environment release happened before ``warmup`` are
        excluded, which removes the start-up transient when phases are
        zero.  The paper randomizes phases instead; the default of 0
        matches it.
    """
    if warmup < 0:
        raise SimulationError(f"warmup must be >= 0, got {warmup!r}")
    summaries = []
    for task_index, task in enumerate(trace.system.tasks):
        # A completed instance can lack an environment release: PM on a
        # fast local clock releases downstream subtasks of instance m
        # before the environment released the head of instance m (the
        # precedence violation is recorded on the trace).  No release
        # time means no EER, so such instances are excluded here.
        instances = [
            m
            for m in trace.completed_task_instances(task_index)
            if (task_index, m) in trace.env_releases
            and trace.env_releases[(task_index, m)] >= warmup
        ]
        eer_times = [trace.eer_time(task_index, m) for m in instances]
        deadline = trace.timebase.convert(task.relative_deadline)
        misses = sum(
            1 for value in eer_times if trace.timebase.gt(value, deadline)
        )
        if eer_times:
            summaries.append(
                TaskMetrics(
                    task_index=task_index,
                    completed_instances=len(eer_times),
                    average_eer=sum(eer_times) / len(eer_times),
                    max_eer=max(eer_times),
                    min_eer=min(eer_times),
                    output_jitter=output_jitter(eer_times),
                    deadline_misses=misses,
                )
            )
        else:
            summaries.append(
                TaskMetrics(
                    task_index=task_index,
                    completed_instances=0,
                    average_eer=float("nan"),
                    max_eer=float("nan"),
                    min_eer=float("nan"),
                    output_jitter=0.0,
                    deadline_misses=0,
                )
            )
    return TraceMetrics(
        tasks=tuple(summaries),
        precedence_violations=len(trace.violations),
        faults=(
            FaultSummary.from_log(trace.faults)
            if trace.faults is not None
            else None
        ),
    )


def max_observed_response_time(trace: Trace, sid: SubtaskId) -> float:
    """Largest observed response time of one subtask (0 if none completed).

    Useful for checking analysis bounds against simulation: a correct
    bound dominates this for every subtask.
    """
    observed = trace.subtask_response_times(sid)
    return max(observed) if observed else 0.0
