"""Synchronization-signal delivery models.

The paper assumes the cost of inter-processor synchronization signals is
zero (Section 2) and argues the assumption away by modelling loaded links
as "link" processors.  We honour that default with
:class:`ZeroLatency`, and additionally provide latency models so that the
sensitivity of each protocol to signalling delay can be studied (the
MPM/RG timers are local, so a bounded signal delay simply adds to the
release instant of the successor).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.model.task import ProcessorId
from repro.timebase import Timebase, TimeValue

__all__ = [
    "DeliveryPlan",
    "SignalLatencyModel",
    "ZeroLatency",
    "FixedLatency",
    "UniformLatency",
]


@dataclass(frozen=True)
class DeliveryPlan:
    """How one synchronization signal traverses the channel.

    A fault-free channel delivers exactly one copy after its model's
    delay.  A faulty channel (:class:`repro.faults.FaultyChannel`) may
    deliver zero copies (``dropped``), two (``duplicated``), or one
    late copy overtaken by later traffic (``reordered``).  ``delays``
    are already in the kernel's timebase, one entry per copy, in
    delivery order.
    """

    delays: tuple[TimeValue, ...]
    dropped: bool = False
    duplicated: bool = False
    reordered: bool = False


class SignalLatencyModel(abc.ABC):
    """Maps a (source, destination) processor pair to a signal delay."""

    @abc.abstractmethod
    def delay(self, source: ProcessorId, destination: ProcessorId) -> float:
        """Non-negative delivery delay of one synchronization signal."""

    def delay_in(
        self,
        source: ProcessorId,
        destination: ProcessorId,
        timebase: Timebase,
    ) -> TimeValue:
        """The delay already converted into ``timebase``.

        This is the boundary where latency enters the kernel's time
        arithmetic: under the exact backend the returned value is a
        scaled integer/rational, never a raw float, so exact-timebase
        runs stay exact regardless of the concrete model.  The default
        wraps :meth:`delay`; models that can convert their parameters
        once override it.
        """
        return timebase.convert(self.delay(source, destination))

    def plan_in(
        self,
        source: ProcessorId,
        destination: ProcessorId,
        timebase: Timebase,
    ) -> DeliveryPlan:
        """The full delivery plan of one signal.

        Fault-free models deliver exactly one copy after
        :meth:`delay_in`; the faulty channel wrapper overrides this with
        drop/duplicate/reorder decisions.  The kernel always sends
        through the plan, so wrapping a model never changes the
        fault-free code path's behaviour.
        """
        return DeliveryPlan((self.delay_in(source, destination, timebase),))


class ZeroLatency(SignalLatencyModel):
    """Signals arrive instantaneously (the paper's assumption)."""

    def delay(self, source: ProcessorId, destination: ProcessorId) -> float:
        return 0.0

    def delay_in(
        self,
        source: ProcessorId,
        destination: ProcessorId,
        timebase: Timebase,
    ) -> TimeValue:
        return timebase.zero


class FixedLatency(SignalLatencyModel):
    """Every signal takes a constant delay.

    Local deliveries (``source == destination``) are free: a scheduler
    signalling itself involves no network.
    """

    def __init__(self, latency: float) -> None:
        if latency < 0 or not math.isfinite(latency):
            raise ConfigurationError(
                f"latency must be finite and >= 0, got {latency!r}"
            )
        self.latency = latency
        #: Converted latency per timebase name (conversion is lossless,
        #: so caching by name is sound and saves a call per signal).
        self._converted: dict[str, TimeValue] = {}

    def delay(self, source: ProcessorId, destination: ProcessorId) -> float:
        if source == destination:
            return 0.0
        return self.latency

    def delay_in(
        self,
        source: ProcessorId,
        destination: ProcessorId,
        timebase: Timebase,
    ) -> TimeValue:
        if source == destination:
            return timebase.zero
        cached = self._converted.get(timebase.name)
        if cached is None:
            cached = timebase.convert(self.latency)
            self._converted[timebase.name] = cached
        return cached


class UniformLatency(SignalLatencyModel):
    """Signal delay drawn uniformly from ``[lo, hi]`` per delivery."""

    def __init__(self, lo: float, hi: float, seed: int | None = None) -> None:
        if not (0 <= lo <= hi) or not math.isfinite(hi):
            raise ConfigurationError(
                f"need 0 <= lo <= hi < inf, got lo={lo!r} hi={hi!r}"
            )
        self.lo = lo
        self.hi = hi
        self._rng = np.random.default_rng(seed)

    def delay(self, source: ProcessorId, destination: ProcessorId) -> float:
        if source == destination:
            return 0.0
        return float(self._rng.uniform(self.lo, self.hi))
