"""Per-processor fixed-priority preemptive scheduler.

Each processor runs the classic fixed-priority discipline of the paper: at
every instant, the released-but-uncompleted instance with the highest
priority executes; a newly released higher-priority instance preempts the
running one immediately.  Equal priorities do not preempt each other and
are served FIFO by release time (ties broken by a global sequence number,
so runs are deterministic).

The scheduler is event-driven: when an instance starts (or resumes), a
completion event is scheduled at ``now + remaining``; preemption cancels
it and accounts the elapsed slice.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.model.task import ProcessorId, SubtaskId
from repro.sim.tracing import Segment
from repro.timebase import fmt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Kernel

__all__ = ["ActiveInstance", "ProcessorScheduler"]

_SEQUENCE = itertools.count()


class ActiveInstance:
    """A released, not-yet-completed subtask instance on one processor."""

    __slots__ = ("sid", "instance", "priority", "remaining", "release_time", "seq")

    def __init__(
        self,
        sid: SubtaskId,
        instance: int,
        priority: int,
        demand: float,
        release_time: float,
    ) -> None:
        self.sid = sid
        self.instance = instance
        self.priority = priority
        self.remaining = demand
        self.release_time = release_time
        self.seq = next(_SEQUENCE)

    def sort_key(self) -> tuple[int, float, int]:
        """Heap key: priority (smaller = higher), then FIFO."""
        return (self.priority, self.release_time, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActiveInstance({self.sid}#{self.instance}, prio={self.priority},"
            f" remaining={fmt(self.remaining)})"
        )


class ProcessorScheduler:
    """Fixed-priority preemptive scheduler for one processor."""

    def __init__(self, processor: ProcessorId, kernel: "Kernel") -> None:
        self.processor = processor
        self.kernel = kernel
        self._ready: list[tuple[tuple[int, float, int], ActiveInstance]] = []
        self._running: ActiveInstance | None = None
        self._segment_start = 0.0
        self._completion_handle: list | None = None

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """True when nothing is running and the ready queue is empty."""
        return self._running is None and not self._ready

    @property
    def running(self) -> ActiveInstance | None:
        """The instance currently holding the processor, if any."""
        return self._running

    @property
    def backlog(self) -> int:
        """Number of released, uncompleted instances on this processor."""
        return len(self._ready) + (1 if self._running is not None else 0)

    def pending_completion_time(self) -> float | None:
        """When the currently running instance will finish if unpreempted,
        or None when nothing is running."""
        if self._running is None:
            return None
        return self._segment_start + self._running.remaining

    # ------------------------------------------------------------------
    # Releases and dispatch
    # ------------------------------------------------------------------
    def add(
        self,
        sid: SubtaskId,
        instance: int,
        demand: float,
        now: float,
        priority: int | None = None,
    ) -> None:
        """Admit a newly released instance; preempt if it wins.

        ``priority`` overrides the subtask's static priority; the lock
        manager uses it to run critical-section agent chunks at boosted
        (numerically smaller) agent priority on a synchronization
        processor.
        """
        if priority is None:
            priority = self.kernel.system.subtask(sid).priority
        entry = ActiveInstance(sid, instance, priority, demand, now)
        if self._running is not None and priority < self._running.priority:
            # A running instance whose completion falls exactly at `now`
            # (its completion event is queued at this same timestamp but
            # has not fired yet) must not be preempted with zero remaining
            # work: let the completion fire first, then dispatch.
            residual = self._running.remaining - (now - self._segment_start)
            if self.kernel.timebase.is_positive(residual):
                self._suspend_running(now)
        heapq.heappush(self._ready, (entry.sort_key(), entry))
        self.dispatch_if_needed(now)

    def dispatch_if_needed(self, now: float) -> None:
        """Put the highest-priority ready instance on the processor."""
        if self._running is not None or not self._ready:
            return
        _key, entry = heapq.heappop(self._ready)
        self._running = entry
        self._segment_start = now
        finish = now + entry.remaining
        self._completion_handle = self.kernel.schedule_completion(
            finish, self._on_completion_event
        )

    def _suspend_running(self, now: float) -> None:
        """Preempt the running instance, accounting its elapsed slice."""
        entry = self._running
        if entry is None:  # pragma: no cover - guarded by caller
            raise SimulationError("suspend called with no running instance")
        if self._completion_handle is not None:
            self.kernel.cancel(self._completion_handle)
            self._completion_handle = None
        elapsed = now - self._segment_start
        if self.kernel.timebase.is_negative(elapsed):
            raise SimulationError(
                f"negative execution slice on {self.processor}: "
                f"{fmt(elapsed)}"
            )
        if elapsed > 0:
            self.kernel.trace.note_segment(
                Segment(
                    processor=self.processor,
                    sid=entry.sid,
                    instance=entry.instance,
                    start=self._segment_start,
                    end=now,
                )
            )
            entry.remaining -= elapsed
        if not self.kernel.timebase.is_positive(entry.remaining):
            raise SimulationError(
                f"{entry.sid}#{entry.instance} preempted with no remaining "
                f"work; completion event should have fired first"
            )
        self._running = None
        heapq.heappush(self._ready, (entry.sort_key(), entry))

    def crash(self, now: float) -> list[tuple[SubtaskId, int]]:
        """Wipe this processor's volatile state for a crash window.

        The running instance's elapsed slice is recorded (the work
        genuinely happened before the crash destroyed it), its pending
        completion event is cancelled, and every released, uncompleted
        instance is discarded.  Returns the ``(sid, instance)`` keys of
        the lost instances so the kernel can document them on the fault
        log; their releases stay on the trace -- the fault-aware
        validator excuses the missing completions.
        """
        lost: list[tuple[SubtaskId, int]] = []
        entry = self._running
        if entry is not None:
            if self._completion_handle is not None:
                self.kernel.cancel(self._completion_handle)
                self._completion_handle = None
            if now > self._segment_start:
                self.kernel.trace.note_segment(
                    Segment(
                        processor=self.processor,
                        sid=entry.sid,
                        instance=entry.instance,
                        start=self._segment_start,
                        end=now,
                    )
                )
            self._running = None
            lost.append((entry.sid, entry.instance))
        while self._ready:
            _key, waiting = heapq.heappop(self._ready)
            lost.append((waiting.sid, waiting.instance))
        return lost

    def _on_completion_event(self, now: float) -> None:
        """The running instance's remaining demand reached zero."""
        entry = self._running
        if entry is None:
            raise SimulationError(
                f"completion event on {self.processor} with nothing running"
            )
        self._completion_handle = None
        self._running = None
        self.kernel.trace.note_segment(
            Segment(
                processor=self.processor,
                sid=entry.sid,
                instance=entry.instance,
                start=self._segment_start,
                end=now,
            )
        )
        entry.remaining = 0.0
        # The kernel records the completion, handles idle points and the
        # protocol hook, then calls back dispatch_if_needed.  The
        # processor is passed explicitly: under locking an instance's
        # final chunk may complete on a synchronization processor, not
        # its home.
        self.kernel.instance_completed(
            entry.sid, entry.instance, now, processor=self.processor
        )
