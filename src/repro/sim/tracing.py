"""Trace recording for simulations.

A :class:`Trace` is the complete observable history of one simulation run:
release and completion instants of every subtask instance, the execution
segments laid onto each processor (optional, for Gantt rendering), idle
points, and any precedence violations detected.

Keys
----
Subtask instances are keyed by ``(SubtaskId, m)`` where ``m`` is the
0-based instance index.  Instance ``m`` of every subtask on a chain
corresponds to instance ``m`` of the parent task: synchronization signals
carry the index along the chain, and periodic (PM) releases share it by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SimulationError
from repro.model.system import System
from repro.model.task import ProcessorId, SubtaskId
from repro.timebase import FLOAT, Timebase, fmt

__all__ = ["Segment", "PrecedenceViolation", "Trace"]

#: Key of one subtask instance.
InstanceKey = tuple[SubtaskId, int]


@dataclass(frozen=True)
class Segment:
    """A maximal interval during which one instance ran uninterrupted."""

    processor: ProcessorId
    sid: SubtaskId
    instance: int
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PrecedenceViolation:
    """An instance was released before its predecessor instance completed.

    The paper's protocols never produce these under their stated
    assumptions; the simulator records them so that failure-injection
    tests (e.g. PM with understated response-time bounds, or release
    jitter) can observe the breakage the paper warns about.
    """

    sid: SubtaskId
    instance: int
    release_time: float
    predecessor: SubtaskId


@dataclass
class Trace:
    """Observable history of one simulation run."""

    system: System
    horizon: float
    record_segments: bool = True
    record_idle_points: bool = False
    #: Arithmetic backend the recording kernel ran under; consumers
    #: (metrics, validation) take their comparison semantics from it.
    timebase: Timebase = FLOAT

    releases: dict[InstanceKey, float] = field(default_factory=dict)
    completions: dict[InstanceKey, float] = field(default_factory=dict)
    #: Environment release times of each task instance -- the reference
    #: points from which end-to-end response times are measured.
    env_releases: dict[tuple[int, int], float] = field(default_factory=dict)
    segments: list[Segment] = field(default_factory=list)
    idle_points: dict[ProcessorId, list[float]] = field(default_factory=dict)
    violations: list[PrecedenceViolation] = field(default_factory=list)
    #: ``(requested, clamped_to)`` per timer the kernel pulled forward to
    #: ``now`` inside the float-tolerance window.  Always recorded: a
    #: silently rewritten timestamp is a debugging dead end, and under
    #: the exact timebase the kernel raises instead of clamping.
    timer_clamps: list[tuple[float, float]] = field(default_factory=list)
    #: The fault plane's log (:class:`repro.faults.FaultLog`) when the
    #: run had one, else None.  Set by the kernel at construction; the
    #: fault-aware validator and the metrics fault summary read it.
    faults: object | None = None
    #: The lock manager's log (:class:`repro.locks.LockLog`) when the
    #: system had critical sections, else None.  Set by the kernel at
    #: construction; the lock-aware validator and the blocking oracles
    #: read it.
    locks: object | None = None

    # ------------------------------------------------------------------
    # Recording (called by the kernel)
    # ------------------------------------------------------------------
    def note_env_release(self, task_index: int, instance: int, time: float) -> None:
        self.env_releases[(task_index, instance)] = time

    def note_release(self, sid: SubtaskId, instance: int, time: float) -> None:
        key = (sid, instance)
        if key in self.releases:
            raise SimulationError(
                f"instance {sid}#{instance} released twice "
                f"(at {fmt(self.releases[key])} and {fmt(time)})"
            )
        self.releases[key] = time

    def note_completion(self, sid: SubtaskId, instance: int, time: float) -> None:
        key = (sid, instance)
        if key not in self.releases:
            raise SimulationError(
                f"instance {sid}#{instance} completed at {fmt(time)} without "
                f"a recorded release"
            )
        if key in self.completions:
            raise SimulationError(f"instance {sid}#{instance} completed twice")
        self.completions[key] = time

    def note_segment(self, segment: Segment) -> None:
        if self.record_segments:
            self.segments.append(segment)

    def note_idle_point(self, processor: ProcessorId, time: float) -> None:
        if self.record_idle_points:
            self.idle_points.setdefault(processor, []).append(time)

    def note_violation(self, violation: PrecedenceViolation) -> None:
        self.violations.append(violation)

    def note_timer_clamp(self, requested: float, clamped_to: float) -> None:
        self.timer_clamps.append((requested, clamped_to))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def release_time(self, sid: SubtaskId, instance: int) -> float:
        """Release instant of one subtask instance."""
        return self.releases[(sid, instance)]

    def completion_time(self, sid: SubtaskId, instance: int) -> float:
        """Completion instant of one subtask instance."""
        return self.completions[(sid, instance)]

    def response_time(self, sid: SubtaskId, instance: int) -> float:
        """Completion minus release of one subtask instance."""
        key = (sid, instance)
        return self.completions[key] - self.releases[key]

    def instance_count(self, sid: SubtaskId) -> int:
        """Number of *completed* instances recorded for a subtask."""
        return sum(1 for (s, _m) in self.completions if s == sid)

    def completed_task_instances(self, task_index: int) -> list[int]:
        """Indices of task instances whose *last* subtask completed."""
        task = self.system.tasks[task_index]
        last = SubtaskId(task_index, task.chain_length - 1)
        return sorted(m for (s, m) in self.completions if s == last)

    def eer_time(self, task_index: int, instance: int) -> float:
        """End-to-end response time of one task instance.

        Measured, as in the paper, from the environment release of the
        first subtask instance to the completion of the corresponding
        instance of the last subtask.
        """
        task = self.system.tasks[task_index]
        last = SubtaskId(task_index, task.chain_length - 1)
        completion = self.completions[(last, instance)]
        release = self.env_releases[(task_index, instance)]
        return completion - release

    def eer_times(self, task_index: int) -> list[float]:
        """EER times of all completed instances of one task, in order."""
        return [
            self.eer_time(task_index, m)
            for m in self.completed_task_instances(task_index)
        ]

    def intermediate_eer_time(
        self, sid: SubtaskId, instance: int
    ) -> float:
        """The paper's IEER time: completion of ``T_i,j(m)`` minus the
        environment release of ``T_i,1(m)``."""
        completion = self.completions[(sid, instance)]
        release = self.env_releases[(sid.task_index, instance)]
        return completion - release

    def subtask_response_times(self, sid: SubtaskId) -> list[float]:
        """Response times of all completed instances of one subtask."""
        instances = sorted(m for (s, m) in self.completions if s == sid)
        return [self.response_time(sid, m) for m in instances]

    def segments_on(self, processor: ProcessorId) -> list[Segment]:
        """Execution segments recorded on one processor, by start time."""
        return sorted(
            (seg for seg in self.segments if seg.processor == processor),
            key=lambda seg: seg.start,
        )

    def iter_instances(self) -> Iterator[InstanceKey]:
        """All released instance keys, ordered by release time."""
        return iter(sorted(self.releases, key=lambda key: self.releases[key]))

    def deadline_misses(self, task_index: int) -> int:
        """Completed instances of a task whose EER exceeded the deadline."""
        deadline = self.system.tasks[task_index].relative_deadline
        return sum(
            1
            for value in self.eer_times(task_index)
            if self.timebase.gt(value, deadline)
        )
