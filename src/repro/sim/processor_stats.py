"""Processor-level statistics derived from execution segments.

These quantify the mechanism behind Figure 15's utilization trend: RG's
rule 2 fires at idle points, so how closely RG tracks DS is governed by
how often processors drain.  ``processor_statistics`` reports, per
processor, the observed busy fraction, the number and lengths of its
busy intervals, and the idle-point rate -- all computed from a trace
recorded with ``record_segments=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.model.task import ProcessorId
from repro.sim.tracing import Trace
from repro.timebase import REL_EPS

__all__ = ["ProcessorStatistics", "processor_statistics"]

#: Gap below which two adjacent segments count as one busy interval
#: (float noise from preemption bookkeeping).
_GAP_TOLERANCE = REL_EPS


@dataclass(frozen=True)
class ProcessorStatistics:
    """Observed load shape of one processor over a simulation run."""

    processor: ProcessorId
    horizon: float
    busy_time: float
    busy_intervals: int
    longest_busy_interval: float
    mean_busy_interval: float

    @property
    def busy_fraction(self) -> float:
        """Fraction of the horizon the processor executed something."""
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0

    @property
    def idle_points_per_time(self) -> float:
        """Busy-interval completions per unit time.

        Each busy interval ends in exactly one idle point (Definition 1),
        so this is the rate at which RG's rule 2 gets a chance to fire.
        """
        return self.busy_intervals / self.horizon if self.horizon > 0 else 0.0


def processor_statistics(
    trace: Trace, processor: ProcessorId
) -> ProcessorStatistics:
    """Compute busy-interval statistics for one processor.

    Requires a trace recorded with ``record_segments=True``; segments
    separated by less than float noise are merged into one interval.
    """
    segments = trace.segments_on(processor)
    if not trace.record_segments:
        raise SimulationError(
            "processor statistics need a trace recorded with "
            "record_segments=True"
        )
    busy_time = 0.0
    intervals: list[float] = []
    current_start: float | None = None
    current_end = 0.0
    for segment in segments:
        busy_time += segment.length
        if current_start is None:
            current_start, current_end = segment.start, segment.end
        elif segment.start <= current_end + _GAP_TOLERANCE:
            current_end = max(current_end, segment.end)
        else:
            intervals.append(current_end - current_start)
            current_start, current_end = segment.start, segment.end
    if current_start is not None:
        intervals.append(current_end - current_start)
    return ProcessorStatistics(
        processor=processor,
        horizon=trace.horizon,
        busy_time=busy_time,
        busy_intervals=len(intervals),
        longest_busy_interval=max(intervals, default=0.0),
        mean_busy_interval=(
            sum(intervals) / len(intervals) if intervals else 0.0
        ),
    )
