"""Interface between the simulation kernel and synchronization protocols.

A synchronization protocol is implemented as a :class:`ReleaseController`:
the kernel notifies it of environment releases, subtask releases, instance
completions and processor idle points; the controller decides when
instances of successor subtasks are released, by calling back into the
kernel (:meth:`repro.sim.engine.Kernel.release`,
:meth:`~repro.sim.engine.Kernel.schedule_timer`,
:meth:`~repro.sim.engine.Kernel.send_signal`).

The concrete protocols of the paper live in :mod:`repro.core.protocols`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.model.system import System
from repro.model.task import ProcessorId, SubtaskId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Kernel

__all__ = ["ReleaseController"]


class ReleaseController(abc.ABC):
    """Base class of synchronization-protocol runtime behaviours.

    Life cycle: the kernel constructs itself, then calls :meth:`bind` once,
    then :meth:`start` at time 0, then the per-event hooks as simulation
    time advances.  The default hook implementations realize the *Direct
    Synchronization-free* skeleton: environment releases pass straight
    through, signals release their target immediately, and nothing else
    happens.  Subclasses override the hooks they care about.
    """

    #: Short protocol label used in reports ("DS", "PM", "MPM", "RG").
    name: str = "base"

    def __init__(self) -> None:
        self.kernel: "Kernel | None" = None
        self.system: System | None = None

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    def bind(self, kernel: "Kernel") -> None:
        """Attach this controller to a kernel before the run starts."""
        self.kernel = kernel
        self.system = kernel.system

    def start(self) -> None:
        """Called once at time 0, before any event is processed.

        Protocols that schedule their own periodic releases (PM) install
        their timers here.
        """

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_env_release(self, sid: SubtaskId, instance: int, now: float) -> None:
        """The environment released instance ``instance`` of a task.

        ``sid`` is always the task's *first* subtask.  The default releases
        it immediately -- every protocol in the paper does, since the
        environment itself guarantees the minimum separation ``p_i``.
        """
        assert self.kernel is not None
        self.kernel.release(sid, instance)

    def on_release(self, sid: SubtaskId, instance: int, now: float) -> None:
        """An instance of ``sid`` was just released (any cause)."""

    def on_completion(self, sid: SubtaskId, instance: int, now: float) -> None:
        """An instance of ``sid`` just completed execution."""

    def on_signal(self, sid: SubtaskId, instance: int, now: float) -> None:
        """A synchronization signal for ``sid`` arrived at its processor.

        The default releases the instance immediately (DS semantics); the
        Release Guard protocol overrides this with its guard check.
        """
        assert self.kernel is not None
        self.kernel.release(sid, instance)

    def on_idle(self, processor: ProcessorId, now: float) -> None:
        """``now`` is an idle point on ``processor``.

        Fired when a completion leaves the processor with no released,
        uncompleted instances.  (Signal arrivals at an idle processor are
        additionally treated as idle points by the Release Guard protocol
        itself, per Definition 1.)
        """
