"""High-level simulation facade.

:func:`simulate` wraps kernel construction, horizon selection and metric
computation into one call; :class:`SimulationResult` bundles the trace,
the metrics and run diagnostics.

Two engines sit behind the facade, selected by ``engine=`` the same way
``timebase=`` selects the arithmetic backend: ``"reference"`` (default)
is the object-graph kernel of :mod:`repro.sim.engine` and the oracle of
record; ``"batch"`` is the flat-array kernel of :mod:`repro.sim.batch`,
trace-identical on its supported domain (float timebase, perfect clocks,
no faults/locks, stock protocols) and roughly an order of magnitude
faster.  A batch request outside that domain falls back to the reference
kernel *explicitly*: the result carries ``engine="reference"`` and the
reason on ``engine_fallback`` -- never silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.models import ClockMap
from repro.errors import ConfigurationError
from repro.faults.config import FaultConfig
from repro.locks.config import LockingConfig
from repro.model.system import System
from repro.sim.batch import batch_fallback_reason, batch_protocol_of, run_batch
from repro.sim.batch.packed import PackedTrace
from repro.sim.batch.summary import metrics_from_packed
from repro.sim.engine import Kernel
from repro.sim.interfaces import ReleaseController
from repro.sim.metrics import TraceMetrics, compute_metrics
from repro.sim.network import SignalLatencyModel
from repro.sim.tracing import Trace
from repro.sim.variation import ExecutionModel, ReleaseJitterModel
from repro.timebase import Timebase, get_timebase

__all__ = ["ENGINES", "SimulationResult", "simulate", "default_horizon"]

#: Selectable simulation engines.
ENGINES = ("reference", "batch")


@dataclass(frozen=True)
class SimulationResult:
    """Everything a caller needs from one run.

    ``trace`` is a property: the reference engine supplies the
    :class:`Trace` eagerly, while the batch engine carries its
    :class:`~repro.sim.batch.packed.PackedTrace` and decodes it on first
    access (sweeps read only ``metrics`` and never pay the decode).  The
    decoded object is cached, so repeated access is free and identity is
    stable.
    """

    protocol: str
    metrics: TraceMetrics
    horizon: float
    events_processed: int
    #: Engine that actually produced the trace ("reference" | "batch").
    engine: str = "reference"
    #: Why a ``engine="batch"`` request ran on the reference kernel
    #: instead; None when no fallback happened.
    engine_fallback: str | None = None
    # Trace storage: exactly one of _trace (reference) or the
    # (_packed, _system, _timebase) triple (batch) is set at construction.
    _trace: Trace | None = field(default=None, repr=False, compare=False)
    _packed: PackedTrace | None = field(default=None, repr=False, compare=False)
    _system: System | None = field(default=None, repr=False, compare=False)
    _timebase: Timebase | None = field(default=None, repr=False, compare=False)

    @property
    def trace(self) -> Trace:
        """The run's trace; lazily decoded for the batch engine."""
        if self._trace is None:
            if self._packed is None or self._system is None:
                raise ConfigurationError(
                    "SimulationResult carries neither a trace nor a "
                    "packed trace"
                )
            decoded = self._packed.decode(
                self._system, timebase=self._timebase or get_timebase("float")
            )
            object.__setattr__(self, "_trace", decoded)
        return self._trace

    @property
    def packed_trace(self) -> PackedTrace | None:
        """The batch engine's packed trace, None for reference runs."""
        return self._packed

    def average_eer(self, task_index: int) -> float:
        """Average EER time of one task over the run."""
        return self.metrics.task(task_index).average_eer

    def max_eer(self, task_index: int) -> float:
        """Largest observed EER time of one task over the run."""
        return self.metrics.task(task_index).max_eer


def default_horizon(system: System, periods: float = 20.0) -> float:
    """A simulation horizon of ``periods`` times the largest task period,
    measured past the largest phase.

    The paper does not state its horizon; the ratio metrics of Section 5
    stabilize within a few tens of periods of the slowest task, which this
    default comfortably covers while staying laptop-friendly.
    """
    if periods <= 0:
        raise ConfigurationError(f"periods must be > 0, got {periods!r}")
    return max(t.phase for t in system.tasks) + periods * max(
        t.period for t in system.tasks
    )


def simulate(
    system: System,
    controller: ReleaseController,
    *,
    horizon: float | None = None,
    horizon_periods: float = 20.0,
    execution_model: ExecutionModel | None = None,
    jitter_model: ReleaseJitterModel | None = None,
    latency_model: SignalLatencyModel | None = None,
    record_segments: bool = False,
    record_idle_points: bool = False,
    strict_precedence: bool = False,
    warmup: float = 0.0,
    max_events: int | None = None,
    clocks: ClockMap | None = None,
    timebase: Timebase | str = "float",
    faults: FaultConfig | None = None,
    locking: LockingConfig | None = None,
    engine: str = "reference",
) -> SimulationResult:
    """Simulate ``system`` under ``controller`` and summarize the run.

    Parameters mirror :class:`repro.sim.engine.Kernel`; ``horizon``
    defaults to :func:`default_horizon` with ``horizon_periods``.
    ``record_segments`` defaults to False here (unlike the raw kernel)
    because sweep experiments only need the metrics; turn it on to render
    Gantt charts from ``result.trace``.  ``timebase`` selects the
    arithmetic backend (``"float"`` or ``"exact"``); ``clocks`` assigns
    per-processor local clock models (default: all perfect).  ``locking``
    selects the distributed locking protocol arbitrating any critical
    sections the system declares (inert on a resource-free system).
    ``engine`` selects the simulation backend (``"reference"`` or
    ``"batch"``; see the module docstring for the fallback contract).
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    effective_horizon = (
        horizon if horizon is not None else default_horizon(system, horizon_periods)
    )
    fallback: str | None = None
    if engine == "batch":
        fallback = batch_fallback_reason(
            system,
            controller,
            execution_model=execution_model,
            jitter_model=jitter_model,
            latency_model=latency_model,
            clocks=clocks,
            timebase=timebase,
            faults=faults,
            locking=locking,
        )
        if fallback is None:
            protocol = batch_protocol_of(controller)
            assert protocol is not None  # gated above
            run = run_batch(
                system,
                protocol,
                effective_horizon,
                bounds=getattr(controller, "bounds", None),
                record_segments=record_segments,
                record_idle_points=record_idle_points,
                strict_precedence=strict_precedence,
                max_events=max_events,
            )
            tb = get_timebase(timebase)
            return SimulationResult(
                protocol=controller.name,
                metrics=metrics_from_packed(
                    run.packed, system, warmup=warmup, timebase=tb
                ),
                horizon=effective_horizon,
                events_processed=run.events_processed,
                engine="batch",
                _packed=run.packed,
                _system=system,
                _timebase=tb,
            )
    kernel = Kernel(
        system,
        controller,
        effective_horizon,
        execution_model=execution_model,
        jitter_model=jitter_model,
        latency_model=latency_model,
        record_segments=record_segments,
        record_idle_points=record_idle_points,
        strict_precedence=strict_precedence,
        max_events=max_events,
        clocks=clocks,
        timebase=timebase,
        faults=faults,
        locking=locking,
    )
    trace = kernel.run()
    metrics = compute_metrics(trace, warmup=warmup)
    return SimulationResult(
        protocol=controller.name,
        metrics=metrics,
        horizon=effective_horizon,
        events_processed=kernel.events_processed,
        engine="reference",
        engine_fallback=fallback,
        _trace=trace,
    )
