"""High-level simulation facade.

:func:`simulate` wraps kernel construction, horizon selection and metric
computation into one call; :class:`SimulationResult` bundles the trace,
the metrics and run diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.models import ClockMap
from repro.errors import ConfigurationError
from repro.faults.config import FaultConfig
from repro.locks.config import LockingConfig
from repro.model.system import System
from repro.sim.engine import Kernel
from repro.sim.interfaces import ReleaseController
from repro.sim.metrics import TraceMetrics, compute_metrics
from repro.sim.network import SignalLatencyModel
from repro.sim.tracing import Trace
from repro.sim.variation import ExecutionModel, ReleaseJitterModel
from repro.timebase import Timebase

__all__ = ["SimulationResult", "simulate", "default_horizon"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a caller needs from one run."""

    protocol: str
    trace: Trace
    metrics: TraceMetrics
    horizon: float
    events_processed: int

    def average_eer(self, task_index: int) -> float:
        """Average EER time of one task over the run."""
        return self.metrics.task(task_index).average_eer

    def max_eer(self, task_index: int) -> float:
        """Largest observed EER time of one task over the run."""
        return self.metrics.task(task_index).max_eer


def default_horizon(system: System, periods: float = 20.0) -> float:
    """A simulation horizon of ``periods`` times the largest task period,
    measured past the largest phase.

    The paper does not state its horizon; the ratio metrics of Section 5
    stabilize within a few tens of periods of the slowest task, which this
    default comfortably covers while staying laptop-friendly.
    """
    if periods <= 0:
        raise ConfigurationError(f"periods must be > 0, got {periods!r}")
    return max(t.phase for t in system.tasks) + periods * max(
        t.period for t in system.tasks
    )


def simulate(
    system: System,
    controller: ReleaseController,
    *,
    horizon: float | None = None,
    horizon_periods: float = 20.0,
    execution_model: ExecutionModel | None = None,
    jitter_model: ReleaseJitterModel | None = None,
    latency_model: SignalLatencyModel | None = None,
    record_segments: bool = False,
    record_idle_points: bool = False,
    strict_precedence: bool = False,
    warmup: float = 0.0,
    max_events: int | None = None,
    clocks: ClockMap | None = None,
    timebase: Timebase | str = "float",
    faults: FaultConfig | None = None,
    locking: LockingConfig | None = None,
) -> SimulationResult:
    """Simulate ``system`` under ``controller`` and summarize the run.

    Parameters mirror :class:`repro.sim.engine.Kernel`; ``horizon``
    defaults to :func:`default_horizon` with ``horizon_periods``.
    ``record_segments`` defaults to False here (unlike the raw kernel)
    because sweep experiments only need the metrics; turn it on to render
    Gantt charts from ``result.trace``.  ``timebase`` selects the
    arithmetic backend (``"float"`` or ``"exact"``); ``clocks`` assigns
    per-processor local clock models (default: all perfect).  ``locking``
    selects the distributed locking protocol arbitrating any critical
    sections the system declares (inert on a resource-free system).
    """
    effective_horizon = (
        horizon if horizon is not None else default_horizon(system, horizon_periods)
    )
    kernel = Kernel(
        system,
        controller,
        effective_horizon,
        execution_model=execution_model,
        jitter_model=jitter_model,
        latency_model=latency_model,
        record_segments=record_segments,
        record_idle_points=record_idle_points,
        strict_precedence=strict_precedence,
        max_events=max_events,
        clocks=clocks,
        timebase=timebase,
        faults=faults,
        locking=locking,
    )
    trace = kernel.run()
    metrics = compute_metrics(trace, warmup=warmup)
    return SimulationResult(
        protocol=controller.name,
        trace=trace,
        metrics=metrics,
        horizon=effective_horizon,
        events_processed=kernel.events_processed,
    )
