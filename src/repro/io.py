"""Serialization: systems, analysis results and surfaces to/from JSON.

Systems round-trip losslessly, so workloads can be generated once,
archived, and re-analyzed elsewhere; analysis results and experiment
surfaces export for plotting with external tools (infinities are encoded
as the string ``"inf"`` to stay inside strict JSON).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.core.analysis.results import AnalysisResult
from repro.errors import ConfigurationError
from repro.experiments.surface import Surface
from repro.model.system import System
from repro.model.task import CriticalSection, Subtask, Task

__all__ = [
    "encode_bound",
    "decode_bound",
    "system_to_dict",
    "system_from_dict",
    "save_system",
    "load_system",
    "analysis_result_to_dict",
    "surface_to_dict",
    "surface_from_dict",
    "surface_to_csv",
    "config_to_dict",
    "config_from_dict",
    "save_evaluations",
    "load_evaluations",
]

_FORMAT = "repro-system-v1"


def encode_bound(value: float) -> float | str:
    """A bound as a JSON-safe value (infinity becomes ``"inf"``)."""
    return "inf" if math.isinf(value) else value


def decode_bound(value: float | str) -> float:
    """Inverse of :func:`encode_bound`."""
    return math.inf if value == "inf" else float(value)


# Backwards-compatible internal aliases.
_encode_bound = encode_bound
_decode_bound = decode_bound


# ---------------------------------------------------------------------------
# Systems
# ---------------------------------------------------------------------------


def _subtask_to_dict(stage: Subtask) -> dict[str, Any]:
    entry: dict[str, Any] = {
        "name": stage.name,
        "execution_time": stage.execution_time,
        "processor": stage.processor,
        "priority": stage.priority,
    }
    # Emitted only when present: resource-free systems keep the exact
    # historical v1 document shape (and therefore their content hashes).
    if stage.critical_sections:
        entry["critical_sections"] = [
            {
                "resource": section.resource,
                "start": section.start,
                "duration": section.duration,
            }
            for section in stage.critical_sections
        ]
    return entry


def system_to_dict(system: System) -> dict[str, Any]:
    """A JSON-ready description of a system (lossless)."""
    return {
        "format": _FORMAT,
        "name": system.name,
        "tasks": [
            {
                "name": task.name,
                "period": task.period,
                "phase": task.phase,
                "deadline": task.deadline,
                "subtasks": [
                    _subtask_to_dict(stage) for stage in task.subtasks
                ],
            }
            for task in system.tasks
        ],
    }


def system_from_dict(data: dict[str, Any]) -> System:
    """Rebuild a system from :func:`system_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ConfigurationError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    tasks = []
    for entry in data["tasks"]:
        tasks.append(
            Task(
                period=float(entry["period"]),
                phase=float(entry.get("phase", 0.0)),
                deadline=(
                    None
                    if entry.get("deadline") is None
                    else float(entry["deadline"])
                ),
                name=entry.get("name", ""),
                subtasks=tuple(
                    Subtask(
                        execution_time=float(stage["execution_time"]),
                        processor=str(stage["processor"]),
                        priority=int(stage.get("priority", 0)),
                        name=stage.get("name", ""),
                        critical_sections=tuple(
                            CriticalSection(
                                resource=str(section["resource"]),
                                start=float(section["start"]),
                                duration=float(section["duration"]),
                            )
                            for section in stage.get(
                                "critical_sections", ()
                            )
                        ),
                    )
                    for stage in entry["subtasks"]
                ),
            )
        )
    return System(tuple(tasks), name=data.get("name", "system"))


def save_system(system: System, path: str | Path) -> None:
    """Write a system to a JSON file."""
    Path(path).write_text(
        json.dumps(system_to_dict(system), indent=2) + "\n"
    )


def load_system(path: str | Path) -> System:
    """Read a system from a JSON file written by :func:`save_system`."""
    return system_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Analysis results and surfaces
# ---------------------------------------------------------------------------


def analysis_result_to_dict(result: AnalysisResult) -> dict[str, Any]:
    """Export an analysis result (bounds keyed by display names)."""
    return {
        "algorithm": result.algorithm,
        "system": result.system.name,
        "iterations": result.iterations,
        "failed": result.failed,
        "schedulable": result.schedulable,
        "task_bounds": [
            _encode_bound(bound) for bound in result.task_bounds
        ],
        "subtask_bounds": {
            str(sid): _encode_bound(bound)
            for sid, bound in sorted(result.subtask_bounds.items())
        },
        "notes": list(result.notes),
    }


def surface_to_dict(surface: Surface) -> dict[str, Any]:
    """Export a figure surface with its confidence metadata."""
    return {
        "name": surface.name,
        "cells": [
            {
                "subtasks": cell.subtasks,
                "utilization_percent": cell.utilization_percent,
                "value": (
                    None if math.isnan(cell.value) else cell.value
                ),
                "ci_half_width": cell.ci_half_width,
                "sample_count": cell.sample_count,
            }
            for cell in surface
        ],
    }


def surface_from_dict(data: dict[str, Any]) -> Surface:
    """Rebuild a surface exported by :func:`surface_to_dict`."""
    surface = Surface(data["name"])
    for cell in data["cells"]:
        surface.put(
            int(cell["subtasks"]),
            int(cell["utilization_percent"]),
            float("nan") if cell["value"] is None else float(cell["value"]),
            ci_half_width=float(cell.get("ci_half_width", 0.0)),
            sample_count=int(cell.get("sample_count", 0)),
        )
    return surface


# ---------------------------------------------------------------------------
# Sweep evaluations (suite persistence / resumable big runs)
# ---------------------------------------------------------------------------


def config_to_dict(config) -> dict[str, Any]:
    """Export a :class:`~repro.workload.config.WorkloadConfig`."""
    from dataclasses import asdict

    return asdict(config)


def config_from_dict(data: dict[str, Any]):
    """Rebuild a workload configuration from :func:`config_to_dict`."""
    from repro.workload.config import WorkloadConfig

    return WorkloadConfig(**data)


def _evaluation_to_dict(record) -> dict[str, Any]:
    return {
        "seed": record.seed,
        "task_count": record.task_count,
        "task_deadlines": list(record.task_deadlines),
        "sa_pm_task_bounds": [
            _encode_bound(b) for b in record.sa_pm_task_bounds
        ],
        "sa_ds_task_bounds": [
            _encode_bound(b) for b in record.sa_ds_task_bounds
        ],
        "sa_ds_failed": record.sa_ds_failed,
        "sa_ds_iterations": record.sa_ds_iterations,
        "average_eer": {
            protocol: [None if math.isnan(v) else v for v in values]
            for protocol, values in record.average_eer.items()
        },
        "output_jitter": {
            protocol: list(values)
            for protocol, values in record.output_jitter.items()
        },
        "precedence_violations": dict(record.precedence_violations),
    }


def _evaluation_from_dict(config, data: dict[str, Any]):
    from repro.experiments.evaluation import SystemEvaluation

    return SystemEvaluation(
        config=config,
        seed=int(data["seed"]),
        task_count=int(data["task_count"]),
        task_deadlines=tuple(float(d) for d in data["task_deadlines"]),
        sa_pm_task_bounds=tuple(
            _decode_bound(b) for b in data["sa_pm_task_bounds"]
        ),
        sa_ds_task_bounds=tuple(
            _decode_bound(b) for b in data["sa_ds_task_bounds"]
        ),
        sa_ds_failed=bool(data["sa_ds_failed"]),
        sa_ds_iterations=int(data["sa_ds_iterations"]),
        average_eer={
            protocol: tuple(
                math.nan if v is None else float(v) for v in values
            )
            for protocol, values in data["average_eer"].items()
        },
        output_jitter={
            protocol: tuple(float(v) for v in values)
            for protocol, values in data["output_jitter"].items()
        },
        precedence_violations={
            protocol: int(count)
            for protocol, count in data["precedence_violations"].items()
        },
    )


def save_evaluations(evaluations, path: str | Path) -> None:
    """Persist a sweep's per-system evaluations as JSON.

    ``evaluations`` is the mapping returned by
    :func:`repro.experiments.runner.sweep_grid` (or its parallel twin);
    loading it back with :func:`load_evaluations` reproduces every
    figure without re-running anything -- the natural checkpoint format
    for paper-scale replications split across sessions or machines.
    """
    document = [
        {
            "config": config_to_dict(config),
            "records": [_evaluation_to_dict(record) for record in records],
        }
        for config, records in evaluations.items()
    ]
    Path(path).write_text(
        json.dumps({"format": "repro-evaluations-v1", "sweeps": document})
        + "\n"
    )


def load_evaluations(path: str | Path):
    """Load a sweep saved by :func:`save_evaluations`."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != "repro-evaluations-v1":
        raise ConfigurationError(
            f"not a repro-evaluations-v1 document "
            f"(format={data.get('format')!r})"
        )
    evaluations = {}
    for entry in data["sweeps"]:
        config = config_from_dict(entry["config"])
        evaluations[config] = tuple(
            _evaluation_from_dict(config, record)
            for record in entry["records"]
        )
    return evaluations


def surface_to_csv(surface: Surface) -> str:
    """The surface as CSV: one row per cell, ready for external plotting."""
    lines = ["subtasks,utilization_percent,value,ci_half_width,sample_count"]
    for cell in surface:
        value = "" if math.isnan(cell.value) else f"{cell.value!r}"
        lines.append(
            f"{cell.subtasks},{cell.utilization_percent},{value},"
            f"{cell.ci_half_width!r},{cell.sample_count}"
        )
    return "\n".join(lines) + "\n"
