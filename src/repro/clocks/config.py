"""Serializable clock configurations: one spec -> one per-processor map.

A :class:`ClockConfig` is the *description* of a clock assignment --
JSON-friendly, hashable, picklable -- that the CLI, the fuzz campaign and
the admission service pass around.  :meth:`ClockConfig.build` turns it
into the concrete :class:`~repro.clocks.models.ClockMap` for a given
processor set.

To make clock error *relative* (the interesting regime -- identical
clocks on every processor would still skew PM against the true-time
environment, but hide inter-processor effects), the builder alternates
the sign of offsets and rates across processors in sorted order and
derives a distinct seed per processor for resync offsets.  Everything is
deterministic: the same config over the same processors always builds
the same map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.clocks.models import (
    BoundedDrift,
    ClockMap,
    ClockModel,
    FixedOffset,
    PerfectClock,
    ResyncClock,
)
from repro.errors import ConfigurationError
from repro.model.task import ProcessorId

__all__ = ["CLOCK_KINDS", "ClockConfig", "clock_config_from_dict",
           "clock_config_to_dict"]

#: Recognized model kinds, in teaching order.
CLOCK_KINDS: tuple[str, ...] = ("perfect", "offset", "drift", "resync")

_FORMAT = "repro-clock-config-v1"


@dataclass(frozen=True)
class ClockConfig:
    """One clock-model spec applied (sign-alternated) to every processor.

    Attributes
    ----------
    kind:
        ``"perfect"``, ``"offset"``, ``"drift"`` or ``"resync"``.
    offset:
        Clock offset magnitude (``offset``/``drift`` kinds).
    rate:
        Drift-rate magnitude rho (``drift``/``resync`` kinds).
    precision:
        Resynchronization precision eps (``resync`` kind).
    interval:
        Resynchronization interval (``resync`` kind).
    seed:
        Base seed for the per-interval resync offsets; processor ``i``
        (in sorted order) uses ``seed + i``.
    """

    kind: str = "perfect"
    offset: float = 0.0
    rate: float = 0.0
    precision: float = 0.0
    interval: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CLOCK_KINDS:
            raise ConfigurationError(
                f"unknown clock kind {self.kind!r}; "
                f"known: {', '.join(CLOCK_KINDS)}"
            )
        for name in ("offset", "rate", "precision", "interval"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ConfigurationError(
                    f"clock config {name} must be finite, got {value!r}"
                )
        if self.kind == "resync":
            if self.interval <= 0:
                raise ConfigurationError(
                    f"resync clock config needs interval > 0, "
                    f"got {self.interval!r}"
                )
            # Build one throwaway model so the model-level validation
            # (precision vs interval, rate envelope) fires at config time.
            ResyncClock(
                self.precision, self.interval, rate=self.rate, seed=self.seed
            )
        elif self.kind == "drift":
            BoundedDrift(self.rate, self.offset)
        elif self.kind == "offset":
            FixedOffset(self.offset)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _model_for(self, position: int) -> ClockModel:
        """The model of the ``position``-th processor (sorted order)."""
        sign = 1.0 if position % 2 == 0 else -1.0
        if self.kind == "perfect":
            return PerfectClock()
        if self.kind == "offset":
            return FixedOffset(sign * self.offset)
        if self.kind == "drift":
            return BoundedDrift(sign * self.rate, sign * self.offset)
        return ResyncClock(
            self.precision,
            self.interval,
            rate=sign * self.rate,
            seed=self.seed + position,
        )

    def build(self, processors: Sequence[ProcessorId]) -> ClockMap:
        """The concrete per-processor map for ``processors``."""
        ordered = sorted(set(processors))
        return ClockMap(
            {
                processor: self._model_for(position)
                for position, processor in enumerate(ordered)
            }
        )

    @property
    def is_perfect(self) -> bool:
        """True when the built map is the identity everywhere."""
        if self.kind == "perfect":
            return True
        if self.kind == "offset":
            return self.offset == 0.0
        if self.kind == "drift":
            return self.rate == 0.0 and self.offset == 0.0
        return self.precision == 0.0 and self.rate == 0.0

    # ------------------------------------------------------------------
    # Error envelopes (feed the skew-aware analysis without building)
    # ------------------------------------------------------------------
    def rate_bound(self) -> float:
        """Drift envelope rho of every built model."""
        return abs(self.rate) if self.kind in ("drift", "resync") else 0.0

    def jump_bound(self) -> float:
        """Largest clock step of every built model."""
        if self.kind != "resync":
            return 0.0
        return 2 * self.precision + abs(self.rate) * self.interval

    @property
    def label(self) -> str:
        """Compact label for reports and campaign output."""
        if self.kind == "perfect":
            return "clocks=perfect"
        if self.kind == "offset":
            return f"clocks=offset({self.offset:g})"
        if self.kind == "drift":
            if self.offset:
                return f"clocks=drift({self.rate:g},{self.offset:g})"
            return f"clocks=drift({self.rate:g})"
        return (
            f"clocks=resync(eps={self.precision:g},"
            f"P={self.interval:g},rho={self.rate:g})"
        )


def clock_config_to_dict(config: ClockConfig) -> dict[str, Any]:
    """A JSON-ready description of a clock config (lossless)."""
    return {
        "format": _FORMAT,
        "kind": config.kind,
        "offset": config.offset,
        "rate": config.rate,
        "precision": config.precision,
        "interval": config.interval,
        "seed": config.seed,
    }


def clock_config_from_dict(data: Mapping[str, Any]) -> ClockConfig:
    """Rebuild a config from :func:`clock_config_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ConfigurationError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    return ClockConfig(
        kind=str(data.get("kind", "perfect")),
        offset=float(data.get("offset", 0.0)),
        rate=float(data.get("rate", 0.0)),
        precision=float(data.get("precision", 0.0)),
        interval=float(data.get("interval", 0.0)),
        seed=int(data.get("seed", 0)),
    )
