"""Per-processor clock models and their serializable configurations.

The simulator's true time is global; this package models what each
processor's *local* wall clock reads, so that the paper's Section 3
claims about PM (needs synchronized clocks) versus MPM/RG (local timers
only) become testable.  See :mod:`repro.clocks.models` for the model
zoo and the conversion semantics, :mod:`repro.clocks.config` for the
JSON-friendly specs used by the CLI, the fuzz campaign and the
admission service, and :mod:`repro.core.analysis.skew` for the
skew-aware schedulability bounds built on the models' error envelopes.
"""

from repro.clocks.config import (
    CLOCK_KINDS,
    ClockConfig,
    clock_config_from_dict,
    clock_config_to_dict,
)
from repro.clocks.models import (
    BoundedDrift,
    ClockMap,
    ClockModel,
    FixedOffset,
    PerfectClock,
    ResyncClock,
)

__all__ = [
    "CLOCK_KINDS",
    "ClockConfig",
    "ClockMap",
    "ClockModel",
    "PerfectClock",
    "FixedOffset",
    "BoundedDrift",
    "ResyncClock",
    "clock_config_from_dict",
    "clock_config_to_dict",
]
