"""Per-processor clock models: local wall clocks over simulated true time.

The paper's headline argument for MPM and RG is that PM "requires
synchronized clocks and strictly periodic first releases" (Section 3)
while MPM timers and RG guards only need *local* timers.  To make that
claim testable, every processor carries a :class:`ClockModel` mapping the
kernel's true simulated time ``t`` to the processor's local wall-clock
reading ``L(t)``, and back.

Semantics the kernel realizes with these models (see
:mod:`repro.sim.engine`):

* **PM** computes its phase table in local wall-clock values and arms
  timers *at local instants* -- a clock offset or drift skews the phased
  releases relative to the true-time environment releases.
* **MPM timers and RG guards** measure *durations* on the local clock --
  a pure offset cancels exactly (only the rate error and resynchronization
  jumps accrue), which is precisely why the paper prefers them.

Model zoo:

``PerfectClock``
    The identity.  The kernel short-circuits every conversion for perfect
    clocks, so runs with perfect clocks are *byte-identical* to runs with
    no clock map at all (property-tested).
``FixedOffset``
    ``L(t) = t + offset``: a synchronized-but-misaligned clock.  Durations
    are unaffected, so MPM and RG behave exactly as under perfect clocks
    while PM's phases shift bodily by the offset.
``BoundedDrift``
    ``L(t) = offset + (1 + rate) * t``: the classic linear rate envelope
    with ``|rate| <= rho``.  Local durations map to true durations scaled
    by ``1 / (1 + rate)``.
``ResyncClock``
    NTP-style periodic resynchronization: every ``interval`` of true time
    the clock is stepped to within ``precision`` (eps) of true time and
    then drifts at ``rate`` until the next resync.  Offsets per interval
    are drawn from a seeded generator, so the model is deterministic and
    reproducible across processes.

All conversions go through the run's :class:`repro.timebase.Timebase`, so
under the exact backend local<->true round trips are lossless rationals
and under the float backend they are plain IEEE arithmetic.
"""

from __future__ import annotations

import abc
import math
from fractions import Fraction
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.model.task import ProcessorId
from repro.timebase import Timebase, TimeValue

__all__ = [
    "ClockModel",
    "PerfectClock",
    "FixedOffset",
    "BoundedDrift",
    "ResyncClock",
    "ClockMap",
]


def _exact_ratio(numerator: TimeValue, denominator: TimeValue,
                 timebase: Timebase) -> TimeValue:
    """``numerator / denominator`` without silently falling back to float.

    Under the exact backend an ``int / int`` division would produce a
    float; wrapping the denominator in :class:`~fractions.Fraction` keeps
    the quotient rational.
    """
    if timebase.exact:
        denominator = Fraction(denominator)
    return numerator / denominator


class ClockModel(abc.ABC):
    """One processor's wall clock as a function of true simulated time.

    ``local_from_true`` / ``true_from_local`` must be inverse in the
    first-crossing sense: ``true_from_local(L)`` is the earliest true
    time ``t >= 0`` at which the local clock reads at least ``L`` (for
    strictly increasing clocks this is the exact inverse; resync steps
    can make the clock jump past ``L``, in which case the step instant is
    returned -- exactly when a timer armed for local instant ``L`` would
    fire).

    The error-envelope accessors feed the skew-aware analysis
    (:mod:`repro.core.analysis.skew`): ``rate_bound`` is the drift
    envelope rho (``|dL/dt - 1| <= rho``), ``jump_bound`` the largest
    step discontinuity, and ``offset_bound`` the largest ``|L(t) - t|``.
    """

    #: True only for :class:`PerfectClock`; the kernel short-circuits all
    #: conversions for perfect clocks so they stay byte-identical.
    is_perfect: bool = False

    @abc.abstractmethod
    def local_from_true(self, t: TimeValue, timebase: Timebase) -> TimeValue:
        """The local wall-clock reading at true time ``t >= 0``."""

    @abc.abstractmethod
    def true_from_local(self, local: TimeValue,
                        timebase: Timebase) -> TimeValue:
        """Earliest true time ``t >= 0`` with ``local_from_true(t) >= local``."""

    def rate_bound(self) -> float:
        """Drift envelope rho: ``|dL/dt - 1| <= rho`` between steps."""
        return 0.0

    def jump_bound(self) -> float:
        """Largest step discontinuity of the local clock (resync steps)."""
        return 0.0

    def offset_bound(self) -> float:
        """A bound on ``|L(t) - t|`` valid for all ``t`` of interest, or
        ``inf`` when the deviation grows without bound (pure drift)."""
        return 0.0

    @abc.abstractmethod
    def describe(self) -> str:
        """Compact human-readable label."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class PerfectClock(ClockModel):
    """The identity clock: local time *is* true time.

    Both conversions return their argument unchanged (not even a
    ``convert`` round trip), which is what makes perfect-clock runs
    byte-identical to clock-free runs under either timebase.
    """

    is_perfect = True

    def local_from_true(self, t: TimeValue, timebase: Timebase) -> TimeValue:
        return t

    def true_from_local(self, local: TimeValue,
                        timebase: Timebase) -> TimeValue:
        return local

    def describe(self) -> str:
        return "perfect"


class FixedOffset(ClockModel):
    """``L(t) = t + offset``: synchronized rate, misaligned origin."""

    def __init__(self, offset: float) -> None:
        if not math.isfinite(offset):
            raise ConfigurationError(
                f"clock offset must be finite, got {offset!r}"
            )
        self.offset = offset

    def local_from_true(self, t: TimeValue, timebase: Timebase) -> TimeValue:
        return t + timebase.convert(self.offset)

    def true_from_local(self, local: TimeValue,
                        timebase: Timebase) -> TimeValue:
        t = local - timebase.convert(self.offset)
        return t if t > timebase.zero else timebase.zero

    def offset_bound(self) -> float:
        return abs(self.offset)

    def describe(self) -> str:
        return f"offset={self.offset:g}"


class BoundedDrift(ClockModel):
    """``L(t) = offset + (1 + rate) * t``: a linear rate envelope.

    ``rate`` is the per-unit drift (positive: the local clock runs fast);
    it must satisfy ``-1 < rate`` so the clock keeps moving forward.  A
    local *duration* ``d`` corresponds to the true duration
    ``d / (1 + rate)`` -- the only error MPM timers and RG guards accrue.
    """

    def __init__(self, rate: float, offset: float = 0.0) -> None:
        if not math.isfinite(rate) or rate <= -1.0:
            raise ConfigurationError(
                f"clock rate must be finite and > -1, got {rate!r}"
            )
        if not math.isfinite(offset):
            raise ConfigurationError(
                f"clock offset must be finite, got {offset!r}"
            )
        self.rate = rate
        self.offset = offset

    def local_from_true(self, t: TimeValue, timebase: Timebase) -> TimeValue:
        offset = timebase.convert(self.offset)
        if self.rate == 0.0:
            return t + offset
        return offset + (1 + timebase.convert(self.rate)) * t

    def true_from_local(self, local: TimeValue,
                        timebase: Timebase) -> TimeValue:
        shifted = local - timebase.convert(self.offset)
        if self.rate == 0.0:
            t = shifted
        else:
            t = _exact_ratio(
                shifted, 1 + timebase.convert(self.rate), timebase
            )
        return t if t > timebase.zero else timebase.zero

    def rate_bound(self) -> float:
        return abs(self.rate)

    def offset_bound(self) -> float:
        if self.rate == 0.0:
            return abs(self.offset)
        return math.inf  # deviation grows linearly without resync

    def describe(self) -> str:
        return f"drift rate={self.rate:g} offset={self.offset:g}"


class ResyncClock(ClockModel):
    """Periodically resynchronized drifting clock (NTP-style).

    At every true instant ``k * interval`` the clock is stepped to within
    ``precision`` of true time -- the post-step offset ``o_k`` is drawn
    uniformly from ``[-precision, +precision]`` by a seeded generator --
    and then advances at rate ``1 + rate`` until the next resync:

        ``L(t) = t + o_k + rate * (t - k * interval)``
        for ``t`` in ``[k * interval, (k+1) * interval)``.

    Validation keeps the model invertible-by-search: ``precision`` must
    stay below ``interval / 4`` and ``|rate| <= 0.1``, so the crossing of
    any local instant lies within one interval of the naive estimate.
    """

    def __init__(
        self,
        precision: float,
        interval: float,
        *,
        rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not (precision >= 0 and math.isfinite(precision)):
            raise ConfigurationError(
                f"clock precision must be finite and >= 0, "
                f"got {precision!r}"
            )
        if not (interval > 0 and math.isfinite(interval)):
            raise ConfigurationError(
                f"resync interval must be finite and > 0, got {interval!r}"
            )
        if precision >= interval / 4:
            raise ConfigurationError(
                f"clock precision {precision!r} must stay below a quarter "
                f"of the resync interval {interval!r}"
            )
        if abs(rate) > 0.1 or not math.isfinite(rate):
            raise ConfigurationError(
                f"resync clock rate must satisfy |rate| <= 0.1, got {rate!r}"
            )
        self.precision = precision
        self.interval = interval
        self.rate = rate
        self.seed = seed
        self._offsets: dict[int, float] = {}

    def _offset(self, k: int) -> float:
        """The post-resync offset of interval ``k`` (seeded, cached)."""
        cached = self._offsets.get(k)
        if cached is None:
            if self.precision == 0.0:
                cached = 0.0
            else:
                rng = np.random.default_rng((self.seed, k))
                cached = float(
                    rng.uniform(-self.precision, self.precision)
                )
            self._offsets[k] = cached
        return cached

    def _interval_index(self, t: TimeValue) -> int:
        return max(0, math.floor(float(t) / self.interval))

    def local_from_true(self, t: TimeValue, timebase: Timebase) -> TimeValue:
        k = self._interval_index(t)
        start = k * timebase.convert(self.interval)
        if t < start:  # float(t) rounding put us one interval high
            k -= 1
            start = k * timebase.convert(self.interval)
        local = t + timebase.convert(self._offset(k))
        if self.rate != 0.0:
            local += timebase.convert(self.rate) * (t - start)
        return local

    def true_from_local(self, local: TimeValue,
                        timebase: Timebase) -> TimeValue:
        """First-crossing inverse: scan the few candidate intervals."""
        interval = timebase.convert(self.interval)
        k_estimate = self._interval_index(local)
        for k in range(max(0, k_estimate - 2), k_estimate + 3):
            start = k * interval
            if local <= self.local_from_true(start, timebase):
                # The resync step at `start` carried the clock past
                # `local`: the step instant is the first crossing.
                return start if start > timebase.zero else timebase.zero
            shifted = local - start - timebase.convert(self._offset(k))
            if self.rate == 0.0:
                t = start + shifted
            else:
                t = start + _exact_ratio(
                    shifted, 1 + timebase.convert(self.rate), timebase
                )
            if t < start + interval:
                return t if t > timebase.zero else timebase.zero
        raise ConfigurationError(  # pragma: no cover - excluded by validation
            f"resync clock could not invert local instant {local!r}"
        )

    def rate_bound(self) -> float:
        return abs(self.rate)

    def jump_bound(self) -> float:
        # Worst step: from one extreme offset plus a full interval of
        # drift to the opposite extreme offset.
        return 2 * self.precision + abs(self.rate) * self.interval

    def offset_bound(self) -> float:
        return self.precision + abs(self.rate) * self.interval

    def describe(self) -> str:
        parts = [f"resync eps={self.precision:g} interval={self.interval:g}"]
        if self.rate:
            parts.append(f"rate={self.rate:g}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        return " ".join(parts)


class ClockMap:
    """Per-processor clock assignment with a perfect-clock default.

    The kernel consults this once per local-time conversion; processors
    without an explicit entry run the shared :class:`PerfectClock`.
    """

    def __init__(
        self,
        clocks: Mapping[ProcessorId, ClockModel] | None = None,
    ) -> None:
        self._clocks: dict[ProcessorId, ClockModel] = dict(clocks or {})
        self._default = PerfectClock()

    @classmethod
    def perfect(cls) -> "ClockMap":
        """A map where every processor runs a perfect clock."""
        return cls()

    def for_processor(self, processor: ProcessorId) -> ClockModel:
        """The clock of ``processor`` (perfect when unassigned)."""
        return self._clocks.get(processor, self._default)

    @property
    def is_perfect(self) -> bool:
        """True when every assigned clock is the identity."""
        return all(clock.is_perfect for clock in self._clocks.values())

    def max_rate(self) -> float:
        """The largest drift envelope rho over all processors."""
        return max(
            (clock.rate_bound() for clock in self._clocks.values()),
            default=0.0,
        )

    def max_jump(self) -> float:
        """The largest step discontinuity over all processors."""
        return max(
            (clock.jump_bound() for clock in self._clocks.values()),
            default=0.0,
        )

    def max_offset(self) -> float:
        """The largest ``|L(t) - t|`` envelope over all processors."""
        return max(
            (clock.offset_bound() for clock in self._clocks.values()),
            default=0.0,
        )

    def describe(self) -> str:
        if not self._clocks or self.is_perfect:
            return "all clocks perfect"
        return ", ".join(
            f"P{processor}: {clock.describe()}"
            for processor, clock in sorted(self._clocks.items())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClockMap {self.describe()}>"
