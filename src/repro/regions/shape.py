"""Shape canonicalization: a task set minus its execution times.

A *shape* is everything about an admission request that survives when
the concrete execution times are stripped: the task/subtask topology,
periods, phases, deadlines, priorities, processor placement, the
relative layout of critical sections, the requested protocols, the
clock envelope and the analysis options.  Two requests with the same
shape differ only in the execution-time vector -- which is exactly the
parameter space the feasibility regions of
:mod:`repro.regions.compute` are computed over.

Canonicalization rules
----------------------

* execution times are dropped; what remains of each subtask is its
  processor, priority and critical-section *fractions* -- every
  section's start and duration are stored as exact rationals of the
  subtask's execution time (``Fraction(start) / Fraction(e)``), so
  proportionally scaled instances of one layout share a shape and the
  fractions re-materialize losslessly at any concrete point;
* system, task and subtask *names* are dropped (they are labels, not
  decision content -- renaming a task must not fragment the region
  cache);
* verdict-relevant options are kept: protocols, ``synchronized_clocks``,
  the clock envelope, ``shared_resources`` and
  ``sa_ds_max_iterations``.  The advisor-only questions
  (``jitter_sensitive`` and friends) are deliberately *excluded*: they
  influence which certified protocol the advisor prefers, never whether
  a protocol certifies, and region-tier decisions pick their protocol
  by the service's fallback order instead.

Like the decision keys of :mod:`repro.service.hashing`, shape keys are
SHA-256 digests of a canonical JSON encoding -- stable across
processes, runs and machines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from fractions import Fraction
from typing import Any

from repro.model.system import System
from repro.service.requests import AdmissionRequest
from repro.timebase import canonical_number

__all__ = [
    "SHAPE_FORMAT",
    "shape_payload",
    "shape_key",
    "task_shape_token",
    "execution_vector",
    "dimension_names",
    "system_at",
]

#: Version tag baked into every shape key; bump when the payload shape
#: changes so stale persisted region stores miss instead of serving
#: regions computed under different semantics.
SHAPE_FORMAT = "repro-region-shape-v1"


def _fraction_token(numerator, denominator) -> Any:
    """A JSON-stable token for the exact ratio numerator/denominator."""
    return canonical_number(Fraction(numerator) / Fraction(denominator))


def _subtask_shape(stage) -> dict[str, Any]:
    entry: dict[str, Any] = {
        "processor": stage.processor,
        "priority": stage.priority,
    }
    if stage.critical_sections:
        entry["critical_sections"] = [
            {
                "resource": section.resource,
                "start": _fraction_token(section.start, stage.execution_time),
                "duration": _fraction_token(
                    section.duration, stage.execution_time
                ),
            }
            for section in stage.critical_sections
        ]
    return entry


def shape_payload(request: AdmissionRequest) -> dict[str, Any]:
    """The exact dictionary that gets hashed (useful for debugging)."""
    return {
        "format": SHAPE_FORMAT,
        "tasks": [
            {
                "period": task.period,
                "phase": task.phase,
                "deadline": task.deadline,
                "subtasks": [
                    _subtask_shape(stage) for stage in task.subtasks
                ],
            }
            for task in request.system.tasks
        ],
        "protocols": list(request.protocols),
        "synchronized_clocks": request.synchronized_clocks,
        "clock_rate_bound": request.clock_rate_bound,
        "clock_jump_bound": request.clock_jump_bound,
        "shared_resources": request.shared_resources,
        "sa_ds_max_iterations": request.sa_ds_max_iterations,
    }


def shape_key(request: AdmissionRequest) -> str:
    """The SHA-256 hex digest identifying a request's shape."""
    encoded = json.dumps(
        shape_payload(request),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def task_shape_token(task) -> str:
    """One task's shape as a canonical JSON string (for task matching).

    Two tasks with equal tokens are interchangeable dimensions of a
    region: same period, phase, deadline, placement, priorities and
    section layout.  The incremental layer uses this to align the
    surviving tasks of an edited system with the cached region.
    """
    entry = {
        "period": task.period,
        "phase": task.phase,
        "deadline": task.deadline,
        "subtasks": [_subtask_shape(stage) for stage in task.subtasks],
    }
    return json.dumps(
        entry, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def execution_vector(system: System) -> tuple:
    """The concrete execution times, one per subtask.

    Dimension order is the canonical subtask order of
    :attr:`repro.model.system.System.subtask_ids` -- (task index,
    subtask index) ascending -- everywhere in this package.
    """
    return tuple(
        system.tasks[sid.task_index].subtasks[sid.subtask_index].execution_time
        for sid in system.subtask_ids
    )


def dimension_names(system: System) -> tuple[str, ...]:
    """Display names of the region dimensions (paper-style ``"T2,1"``)."""
    return tuple(str(sid) for sid in system.subtask_ids)


def system_at(system: System, vector) -> System:
    """A copy of ``system`` with execution times set to ``vector``.

    ``vector`` follows the canonical dimension order.  Each subtask's
    critical sections scale proportionally with its execution time (the
    same consistency rule as
    :func:`repro.core.analysis.sensitivity.scale_execution_times`), so
    every point of the parameter space is a valid model and the
    blocking terms track the scaled contention.
    """
    values = list(vector)
    expected = len(system.subtask_ids)
    if len(values) != expected:
        raise ValueError(
            f"execution vector has {len(values)} components, "
            f"system has {expected} subtasks"
        )
    cursor = 0
    tasks = []
    for task in system.tasks:
        subtasks = []
        for stage in task.subtasks:
            target = values[cursor]
            cursor += 1
            if target == stage.execution_time:
                subtasks.append(stage)
                continue
            exact = not isinstance(target, float)
            if exact:
                # Exact points stay exact: a rational target yields
                # rational section offsets (float * Fraction would
                # silently fall back to float).
                ratio = Fraction(target) / Fraction(stage.execution_time)
            else:
                ratio = target / float(stage.execution_time)
            sections = []
            for section in stage.critical_sections:
                start = (
                    Fraction(section.start) if exact else section.start
                ) * ratio
                duration = (
                    Fraction(section.duration) if exact else section.duration
                ) * ratio
                if start + duration > target:
                    duration = target - start
                sections.append(
                    replace(section, start=start, duration=duration)
                )
            subtasks.append(
                replace(
                    stage,
                    execution_time=target,
                    critical_sections=tuple(sections),
                )
            )
        tasks.append(task.with_subtasks(tuple(subtasks)))
    return system.with_tasks(tasks)
