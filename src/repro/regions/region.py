"""The feasibility region: a verified inner box per analysis.

A :class:`FeasibilityRegion` stores, for one request *shape* (see
:mod:`repro.regions.shape`) and one arithmetic timebase, an axis-aligned
box in execution-time space per analysis: a *corner vector* ``U`` such
that the concrete system with execution times exactly ``U`` was
directly verified schedulable by that analysis during region
construction.

The inner-box soundness argument
--------------------------------

Every analysis the region covers -- SA/PM, SA/DS, their blocking-aware
variants and the skew-inflated SA/PM -- is *monotone in execution
times*: increasing any ``e_i,j`` (with its critical sections scaled
proportionally) never shrinks any response-time/IEER bound, so it can
never turn an unschedulable verdict schedulable.  Contrapositively, if
the corner ``U`` is schedulable, then so is every point ``e`` with
``e <= U`` componentwise.  :meth:`FeasibilityRegion.covers` therefore
answers with a plain componentwise ``<=`` -- no tolerance windows --
and a covered point is *certifiably* schedulable: the certificate is
the direct analysis run at the corner.

Nothing is claimed about points outside the box.  The region is an
inner approximation; callers (the service's region tier) must fall back
to direct analysis for uncovered points, so the region can produce
false fallbacks but never an unsound ACCEPT.

Under the exact timebase every corner component is an ``int`` or a
``Fraction`` (the boundary search bisects with rational midpoints), so
regions serialize losslessly through :func:`repro.timebase.canonical_number`
tokens and a reloaded region certifies the exact same set of points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.timebase import canonical_number

__all__ = [
    "REGION_ANALYSES",
    "FeasibilityRegion",
    "region_to_dict",
    "region_from_dict",
]

#: Analyses a region may hold corners for.  ``"SA/PM"`` and ``"SA/DS"``
#: mean the blocking-aware variants whenever the shape declares shared
#: resources (matching :func:`repro.service.engine.compute_decision`);
#: ``"SA/PM-skew"`` is the skew-inflated analysis under the shape's
#: declared clock envelope.
REGION_ANALYSES: tuple[str, ...] = ("SA/PM", "SA/DS", "SA/PM-skew")

_REGION_FORMAT = "repro-feasibility-region-v1"


def _encode_value(value) -> Any:
    """A JSON-stable token for one corner component."""
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return canonical_number(value)


def _decode_value(value) -> Any:
    """Inverse of :func:`_encode_value`."""
    if value == "inf":
        return math.inf
    if isinstance(value, str):
        return Fraction(value)
    return value


@dataclass(frozen=True)
class FeasibilityRegion:
    """One shape's verified inner boxes, one corner per analysis.

    Attributes
    ----------
    shape_key:
        The :func:`repro.regions.shape.shape_key` this region belongs
        to.  A region must never be consulted for any other shape.
    timebase:
        Name of the arithmetic backend the corners were verified under
        (``"float"`` / ``"exact"``).  Verification under one backend
        says nothing about the other, so the tier only serves matching
        lookups.
    dimensions:
        Display names of the region's axes, in the canonical subtask
        order (``"T1,1"``, ``"T1,2"``, ...).
    corners:
        Per analysis: the verified corner vector, or ``None`` when the
        shape admitted no schedulable box at all (every probed point
        failed).  An analysis absent from the mapping was not required
        by the shape and was never probed.
    probes:
        Number of direct analysis runs spent constructing the region --
        the build cost the region amortizes.
    """

    shape_key: str
    timebase: str
    dimensions: tuple[str, ...]
    corners: Mapping[str, tuple | None] = field(default_factory=dict)
    probes: int = 0

    def __post_init__(self) -> None:
        for analysis, corner in self.corners.items():
            if corner is not None and len(corner) != len(self.dimensions):
                raise ConfigurationError(
                    f"corner for {analysis!r} has {len(corner)} components, "
                    f"region has {len(self.dimensions)} dimensions"
                )

    @property
    def analyses(self) -> tuple[str, ...]:
        """The analyses this region was built against."""
        return tuple(self.corners)

    def corner(self, analysis: str) -> tuple | None:
        """The verified corner for one analysis (None = nothing found)."""
        return self.corners.get(analysis)

    def covers(self, analysis: str, vector) -> bool:
        """True when ``vector`` is inside the analysis' verified box.

        Componentwise ``e <= U`` against the verified corner: inside
        means certifiably schedulable by monotonicity (see the module
        docstring).  A missing or empty corner covers nothing (except
        the zero-dimensional shape, whose only point is the corner).
        """
        corner = self.corners.get(analysis)
        if corner is None:
            return False
        values = tuple(vector)
        if len(values) != len(corner):
            raise ConfigurationError(
                f"point has {len(values)} components, region has "
                f"{len(corner)}"
            )
        return all(e <= u for e, u in zip(values, corner))

    def margins(self, analysis: str, vector) -> tuple[float, ...] | None:
        """Per-dimension growth headroom ``U - e`` at ``vector``.

        How much each execution time can grow -- all else fixed --
        before the point leaves this analysis' verified box and
        admission falls back to direct analysis.  Floats for reporting;
        ``None`` when the region holds no box for ``analysis``.
        """
        corner = self.corners.get(analysis)
        if corner is None:
            return None
        values = tuple(vector)
        if len(values) != len(corner):
            raise ConfigurationError(
                f"point has {len(values)} components, region has "
                f"{len(corner)}"
            )
        return tuple(float(u) - float(e) for e, u in zip(values, corner))

    def describe(self) -> str:
        """Multi-line human-readable summary for CLI output."""
        lines = [
            f"region {self.shape_key[:12]}… ({self.timebase} timebase, "
            f"{len(self.dimensions)} dimension(s), {self.probes} probe(s)):"
        ]
        for analysis in self.corners:
            corner = self.corners[analysis]
            if corner is None:
                lines.append(f"  {analysis}: no schedulable box")
                continue
            rendered = ", ".join(
                f"{name}<={float(value):g}"
                for name, value in zip(self.dimensions, corner)
            )
            lines.append(f"  {analysis}: {rendered or '(zero-dimensional)'}")
        return "\n".join(lines)


def region_to_dict(region: FeasibilityRegion) -> dict[str, Any]:
    """A JSON-ready description of a region (lossless)."""
    return {
        "format": _REGION_FORMAT,
        "shape_key": region.shape_key,
        "timebase": region.timebase,
        "dimensions": list(region.dimensions),
        "corners": {
            analysis: (
                None
                if corner is None
                else [_encode_value(value) for value in corner]
            )
            for analysis, corner in region.corners.items()
        },
        "probes": region.probes,
    }


def region_from_dict(data: Mapping[str, Any]) -> FeasibilityRegion:
    """Rebuild a region from :func:`region_to_dict` output."""
    if data.get("format") != _REGION_FORMAT:
        raise ConfigurationError(
            f"not a {_REGION_FORMAT} document "
            f"(format={data.get('format')!r})"
        )
    return FeasibilityRegion(
        shape_key=str(data["shape_key"]),
        timebase=str(data["timebase"]),
        dimensions=tuple(str(name) for name in data["dimensions"]),
        corners={
            str(analysis): (
                None
                if corner is None
                else tuple(_decode_value(value) for value in corner)
            )
            for analysis, corner in data["corners"].items()
        },
        probes=int(data.get("probes", 0)),
    )
