"""Parametric feasibility regions: O(1) admission for repeat shapes.

Following the parametric-schedulability line of work (see PAPERS.md),
a task set's *shape* -- its topology, periods, deadlines, priorities,
placement, section layout and analysis options, everything except the
concrete execution times -- determines a feasibility region over the
execution-time parameter space.  This package computes conservative
inner-box approximations of that region by monotone bisection against
the repository's own analyses, caches them by shape hash, and serves
point-in-box admission in O(dimensions) with zero analysis runs.

Layers
------

:mod:`~repro.regions.shape`
    Shape canonicalization and hashing; execution-vector helpers.
:mod:`~repro.regions.region`
    The :class:`FeasibilityRegion` container and its soundness
    argument (inside the box == certifiably schedulable).
:mod:`~repro.regions.compute`
    Boundary search: uniform breakdown bisection plus jointly verified
    coordinate ascent, per analysis, on either timebase.
:mod:`~repro.regions.incremental`
    Add/remove-one-task updates that reuse untouched boundaries.
:mod:`~repro.regions.store`
    ``shape_key -> region`` stores (memory LRU / sqlite WAL), the same
    contract as the decision-cache backends.
:mod:`~repro.regions.tier`
    The service integration: the cache tier above the decision cache
    in :class:`repro.service.engine.AdmissionController` and the
    sharded frontend.
"""

from repro.regions.compute import (
    DEFAULT_MAX_FACTOR,
    DEFAULT_TOLERANCE,
    compute_region,
    probe_point,
    required_analyses,
)
from repro.regions.incremental import update_region
from repro.regions.region import (
    REGION_ANALYSES,
    FeasibilityRegion,
    region_from_dict,
    region_to_dict,
)
from repro.regions.shape import (
    SHAPE_FORMAT,
    dimension_names,
    execution_vector,
    shape_key,
    shape_payload,
    system_at,
    task_shape_token,
)
from repro.regions.store import (
    REGION_BACKENDS,
    MemoryRegionStore,
    SqliteRegionStore,
    make_region_store,
)
from repro.regions.tier import RegionTier

__all__ = [
    "DEFAULT_MAX_FACTOR",
    "DEFAULT_TOLERANCE",
    "FeasibilityRegion",
    "MemoryRegionStore",
    "REGION_ANALYSES",
    "REGION_BACKENDS",
    "RegionTier",
    "SHAPE_FORMAT",
    "SqliteRegionStore",
    "compute_region",
    "dimension_names",
    "execution_vector",
    "make_region_store",
    "probe_point",
    "region_from_dict",
    "region_to_dict",
    "required_analyses",
    "shape_key",
    "shape_payload",
    "system_at",
    "task_shape_token",
    "update_region",
]
