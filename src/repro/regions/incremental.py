"""Incremental region maintenance for add/remove-one-task edits.

Admission traffic at scale is rarely de novo: the common edit is one
task joining or leaving an otherwise unchanged deployment.  Recomputing
the full region from scratch wastes everything already learned about
the surviving dimensions, so :func:`update_region` reuses the cached
corner as a *seed*:

* surviving tasks are aligned between the old and new shape by their
  canonical task-shape token (:func:`repro.regions.shape.task_shape_token`)
  with an order-preserving greedy match; their corner components carry
  over verbatim;
* dimensions of added tasks seed at the request's own execution times;
* the seed is then **re-verified jointly** -- reuse is an optimization,
  never a soundness shortcut.  A seed that fails (an added task can
  invalidate old headroom) shrinks by bisection along the monotone
  segment from the request's own execution vector up to the seed, so
  whenever the request's own point is schedulable the updated region
  still covers it; only when even that point fails does the search
  shrink along the ray ``lambda * seed`` toward the origin;
* coordinate ascent then runs only over the *touched* dimensions: the
  added task's own subtasks, plus every subtask sharing a processor
  (or, for sectioned shapes, a resource) with an added or removed
  task.  Untouched boundaries are inherited, which is where the probe
  savings come from.

When the edit is not an incremental one -- different timebase, changed
options, or the old region simply does not belong to ``old_request`` --
the function falls back to a fresh :func:`~repro.regions.compute.compute_region`,
so callers can use it unconditionally.
"""

from __future__ import annotations

from fractions import Fraction

from repro.regions.compute import (
    DEFAULT_MAX_FACTOR,
    DEFAULT_TOLERANCE,
    _ascend,
    _as_scalar,
    _Prober,
    required_analyses,
)
from repro.regions.region import FeasibilityRegion
from repro.regions.shape import (
    dimension_names,
    execution_vector,
    shape_key,
    task_shape_token,
)
from repro.service.requests import AdmissionRequest
from repro.timebase import get_timebase

__all__ = ["update_region"]

_OPTION_FIELDS = (
    "protocols",
    "synchronized_clocks",
    "clock_rate_bound",
    "clock_jump_bound",
    "shared_resources",
    "sa_ds_max_iterations",
)


def _match_tasks(old_system, new_system) -> dict[int, int | None]:
    """Order-preserving alignment of new task indices to old ones.

    Returns ``{new_index: old_index | None}``; ``None`` marks an added
    task.  Old indices absent from the values are removed tasks.
    """
    old_tokens = [task_shape_token(task) for task in old_system.tasks]
    mapping: dict[int, int | None] = {}
    cursor = 0
    for new_index, task in enumerate(new_system.tasks):
        token = task_shape_token(task)
        found = None
        for old_index in range(cursor, len(old_tokens)):
            if old_tokens[old_index] == token:
                found = old_index
                cursor = old_index + 1
                break
        mapping[new_index] = found
    return mapping


def _task_dims(system) -> list[tuple[int, ...]]:
    """Per task: the region dimension indices of its subtasks."""
    dims: list[tuple[int, ...]] = []
    cursor = 0
    for task in system.tasks:
        dims.append(tuple(range(cursor, cursor + task.chain_length)))
        cursor += task.chain_length
    return dims


def _touched_dimensions(old_system, new_system, mapping) -> set[int]:
    """New-shape dimensions whose boundaries the edit can move."""
    added = [i for i, old in mapping.items() if old is None]
    matched_old = {old for old in mapping.values() if old is not None}
    removed = [
        i for i in range(len(old_system.tasks)) if i not in matched_old
    ]
    processors: set[str] = set()
    resources: set[str] = set()
    for index in added:
        for stage in new_system.tasks[index].subtasks:
            processors.add(stage.processor)
            for section in stage.critical_sections:
                resources.add(section.resource)
    for index in removed:
        for stage in old_system.tasks[index].subtasks:
            processors.add(stage.processor)
            for section in stage.critical_sections:
                resources.add(section.resource)
    touched: set[int] = set()
    new_dims = _task_dims(new_system)
    for new_index, task in enumerate(new_system.tasks):
        for offset, stage in enumerate(task.subtasks):
            dim = new_dims[new_index][offset]
            if mapping[new_index] is None:
                touched.add(dim)
            elif stage.processor in processors:
                touched.add(dim)
            elif any(
                section.resource in resources
                for section in stage.critical_sections
            ):
                touched.add(dim)
    return touched


def _grow_from_base(ok, base, seed, tolerance, exact: bool):
    """Largest verified point on the segment ``base -> max(seed, base)``.

    Every component is non-decreasing in the interpolation parameter,
    so monotonicity makes the verdict monotone in ``lambda`` and a
    bisection finds the boundary.  Returns ``None`` when even ``base``
    itself fails (the caller then falls back to the origin ray).
    """
    one = Fraction(1) if exact else 1.0
    zero = Fraction(0) if exact else 0.0
    top = tuple(s if s > b else b for s, b in zip(seed, base))

    def at(factor):
        return tuple(
            b + (t - b) * factor for b, t in zip(base, top)
        )

    if ok(at(one)):
        return at(one)
    if not ok(base):
        return None
    low, high = zero, one
    while high - low > tolerance:
        mid = (low + high) / 2
        if ok(at(mid)):
            low = mid
        else:
            high = mid
    return at(low)


def _shrink_to_verified(ok, seed, tolerance, exact: bool):
    """Largest verified point on the ray ``lambda * seed``, or None.

    Monotonicity makes the ray's verdict monotone in ``lambda``, so a
    bisection over ``(0, 1]`` finds the boundary; the returned point
    was directly probed schedulable.
    """
    one = Fraction(1) if exact else 1.0
    zero = Fraction(0) if exact else 0.0

    def at(factor):
        return tuple(value * factor for value in seed)

    low, high = zero, one
    while high - low > tolerance:
        mid = (low + high) / 2
        if mid <= 0:
            break
        if ok(at(mid)):
            low = mid
        else:
            high = mid
    if low <= 0:
        return None
    return at(low)


def update_region(
    region: FeasibilityRegion,
    old_request: AdmissionRequest,
    new_request: AdmissionRequest,
    *,
    timebase=None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_factor: float = DEFAULT_MAX_FACTOR,
    ascent_rounds: int = 1,
) -> FeasibilityRegion:
    """The new request's region, reusing ``region`` where it can.

    ``region`` must be ``old_request``'s region; the edit from
    ``old_request`` to ``new_request`` is analyzed for reusable
    dimensions as described in the module docstring.  The result is
    always a fully verified region for the *new* shape -- soundness
    never depends on the reuse heuristics.
    """
    from repro.regions.compute import compute_region

    tb = get_timebase(timebase)

    def fresh() -> FeasibilityRegion:
        return compute_region(
            new_request,
            timebase=tb,
            tolerance=tolerance,
            max_factor=max_factor,
            ascent_rounds=ascent_rounds,
        )

    if region.timebase != tb.name:
        return fresh()
    if region.shape_key != shape_key(old_request):
        return fresh()
    if any(
        getattr(old_request, name) != getattr(new_request, name)
        for name in _OPTION_FIELDS
    ):
        return fresh()
    new_key = shape_key(new_request)
    if new_key == region.shape_key:
        return region

    old_system = old_request.system
    new_system = new_request.system
    mapping = _match_tasks(old_system, new_system)
    old_dims = _task_dims(old_system)
    touched = _touched_dimensions(old_system, new_system, mapping)
    e0 = tuple(tb.convert(e) for e in execution_vector(new_system))
    tol = _as_scalar(tolerance, tb.exact)
    cap = _as_scalar(max_factor, tb.exact)
    prober = _Prober(new_request, tb)
    corners: dict[str, tuple | None] = {}
    for analysis in required_analyses(new_request):
        def ok(vector, _analysis=analysis):
            return prober(_analysis, vector)

        old_corner = region.corners.get(analysis)
        if old_corner is None:
            # Nothing to reuse: a removal can resurrect a shape whose
            # old search found no box, so search from scratch.
            fresh_region = fresh()
            fresh_region = FeasibilityRegion(
                shape_key=fresh_region.shape_key,
                timebase=fresh_region.timebase,
                dimensions=fresh_region.dimensions,
                corners=fresh_region.corners,
                probes=fresh_region.probes + prober.count,
            )
            return fresh_region
        # Seed: carry surviving components over, cap at the growth
        # ceiling of the new request's own execution times.
        seed = []
        cursor = 0
        for new_index, task in enumerate(new_system.tasks):
            old_index = mapping[new_index]
            for offset in range(task.chain_length):
                base = e0[cursor]
                if old_index is None:
                    value = base
                else:
                    value = tb.convert(
                        old_corner[old_dims[old_index][offset]]
                    )
                    ceiling = base * cap
                    if value > ceiling:
                        value = ceiling
                seed.append(value)
                cursor += 1
        seed = tuple(seed)
        if ok(seed):
            corner = seed
        else:
            # Prefer the segment anchored at the request's own point:
            # if that point is schedulable the updated region keeps
            # covering it.  Only an unschedulable anchor falls back to
            # the origin ray.
            corner = _grow_from_base(ok, e0, seed, tol, tb.exact)
            if corner is None:
                corner = _shrink_to_verified(ok, seed, tol, tb.exact)
        if corner is None:
            corners[analysis] = None
            continue
        if ascent_rounds and touched:
            corner = _ascend(
                ok,
                corner,
                e0,
                cap,
                tol,
                ascent_rounds,
                dimensions=sorted(touched),
            )
        corners[analysis] = corner
    return FeasibilityRegion(
        shape_key=new_key,
        timebase=tb.name,
        dimensions=dimension_names(new_system),
        corners=corners,
        probes=prober.count,
    )
