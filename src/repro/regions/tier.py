"""The region tier: shape-cached O(1) admission above the decision cache.

Where the decision cache answers "have I seen this *exact* request?",
the region tier answers "have I seen this request's *shape*?" -- and if
the shape's feasibility region is cached and the request's execution
vector lands inside every verified box its protocols need, the tier
synthesizes an ADMIT without running any analysis: a hash, a store
lookup, and a componentwise ``<=``.

Soundness contract (see :mod:`repro.regions.region`):

* a region-tier decision is served **only** when every requested
  protocol's verdict is fully determined -- shape-gated False (PM under
  skewed clocks, MPM/RG on a sectioned shape under skew) or
  point-inside-the-verified-box True.  Any protocol whose verdict would
  require an analysis the region does not cover, or whose box does not
  cover the point, makes the whole lookup a *fallback*: the caller
  proceeds to the decision cache / direct analysis exactly as if the
  tier did not exist.  The tier can therefore cause extra work never
  skipped work: no unsound ACCEPT is constructible.
* consequently the tier only serves ADMITs (and the degenerate
  all-shape-gated REJECT, which needs no analysis at all); genuine
  REJECTs always fall through to direct analysis.

Region-backed decisions differ from computed ones in documented ways:
``task_bounds`` is empty and ``worst_bound_ratio`` is ``inf`` (no
analysis ran, so there are no bounds), the protocol is chosen by the
service's fallback order (the advisor needs analysis results), and
``margins`` reports the per-dimension growth headroom -- how much each
``C_i,j`` can grow before admission falls back to direct analysis.
They are *not* inserted into the decision cache.

Building is driven by :meth:`RegionTier.observe`: the controller calls
it after every direct computation, and once a shape has been computed
``build_threshold`` times the tier pays the (counted, amortizable)
probe cost to build and store the region.
"""

from __future__ import annotations

import math
import threading

from repro.regions.compute import (
    DEFAULT_MAX_FACTOR,
    DEFAULT_TOLERANCE,
    compute_region,
    required_analyses,
)
from repro.regions.region import FeasibilityRegion
from repro.regions.shape import execution_vector, shape_key
from repro.regions.store import make_region_store
from repro.service.cache import CacheStats
from repro.service.hashing import request_key
from repro.service.requests import AdmissionDecision, AdmissionRequest
from repro.timebase import get_timebase

__all__ = ["RegionTier"]


class RegionTier:
    """Shape-region cache tier for admission controllers and frontends.

    Parameters
    ----------
    store:
        A region store (:func:`repro.regions.store.make_region_store`
        output).  Omit to build one from ``backend``/``capacity``/
        ``path``.
    build_threshold:
        Number of direct computations of one shape before the tier
        builds its region (1 = build on first sight; higher thresholds
        only pay the build cost for demonstrably repeating shapes).
    tolerance / max_factor / ascent_rounds:
        Passed to :func:`repro.regions.compute.compute_region`.
    timebase:
        Arithmetic backend for region construction and lookup.  The
        service computes decisions under the default float backend, so
        controllers leave this at ``None``; stored regions from another
        backend are never consulted.
    metrics:
        An optional :class:`repro.service.metrics.ServiceMetrics`;
        lookups and builds account into its region counters.
    """

    def __init__(
        self,
        store=None,
        *,
        backend: str = "memory",
        capacity: int = 1024,
        path=None,
        fsync: str = "data",
        build_threshold: int = 2,
        tolerance: float = DEFAULT_TOLERANCE,
        max_factor: float = DEFAULT_MAX_FACTOR,
        ascent_rounds: int = 1,
        timebase=None,
        metrics=None,
    ) -> None:
        if build_threshold < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"build_threshold must be >= 1, got {build_threshold}"
            )
        self.store = (
            store
            if store is not None
            else make_region_store(
                backend, capacity=capacity, path=path, fsync=fsync
            )
        )
        self.build_threshold = build_threshold
        self.tolerance = tolerance
        self.max_factor = max_factor
        self.ascent_rounds = ascent_rounds
        self.timebase = get_timebase(timebase)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._seen: dict[str, int] = {}
        self._building: set[str] = set()

    # ------------------------------------------------------------------
    # Lookup (hot path)
    # ------------------------------------------------------------------
    def lookup(
        self, request: AdmissionRequest, *, key: str | None = None
    ) -> AdmissionDecision | None:
        """A region-backed decision, or None to fall back.

        ``key`` is the request's decision-cache content key if the
        caller already computed it (it is echoed on the decision).
        """
        skey = shape_key(request)
        region = self.store.get(skey)
        if region is None:
            if self.metrics is not None:
                self.metrics.record_region_miss()
            return None
        if region.timebase != self.timebase.name:
            if self.metrics is not None:
                self.metrics.record_region_fallback()
            return None
        decision = self._decide(request, region, key=key)
        if self.metrics is not None:
            if decision is None:
                self.metrics.record_region_fallback()
            else:
                self.metrics.record_region_hit()
        return decision

    def _decide(
        self,
        request: AdmissionRequest,
        region: FeasibilityRegion,
        *,
        key: str | None,
    ) -> AdmissionDecision | None:
        point = tuple(
            self.timebase.convert(e)
            for e in execution_vector(request.system)
        )
        if len(point) != len(region.dimensions):
            return None  # foreign region; never guess
        needed = required_analyses(request)
        for analysis in needed:
            if not region.covers(analysis, point):
                return None
        # Every needed analysis covers the point: each non-gated
        # protocol is certifiably schedulable, every gated protocol is
        # False by shape alone -- the verdict map is fully determined.
        skewed = bool(request.clock_rate_bound or request.clock_jump_bound)
        resourceful = (
            request.shared_resources
            and request.system.has_critical_sections
        )
        schedulable = {}
        for protocol in request.protocols:
            if protocol == "PM":
                schedulable[protocol] = (
                    request.synchronized_clocks and not skewed
                )
            elif protocol in ("MPM", "RG"):
                schedulable[protocol] = not (skewed and resourceful)
            else:
                schedulable[protocol] = True
        certified = [p for p in request.protocols if schedulable[p]]
        from repro.service.engine import _FALLBACK_ORDER

        if certified:
            protocol = next(p for p in _FALLBACK_ORDER if p in certified)
            rationale = (
                f"region tier: execution vector inside the verified "
                f"{' + '.join(needed) if needed else 'trivial'} box of shape "
                f"{region.shape_key[:12]} (schedulable by monotonicity "
                f"from the region corner); {protocol} chosen by fallback "
                f"order"
            )
        else:
            protocol = None
            rationale = (
                "region tier: every requested protocol is excluded by the "
                "shape alone (no analysis needed)"
            )
        margins = {
            analysis: dict(
                zip(
                    region.dimensions,
                    region.margins(analysis, point),
                )
            )
            for analysis in needed
        }
        return AdmissionDecision(
            admitted=bool(certified),
            protocol=protocol,
            rationale=rationale,
            schedulable=schedulable,
            task_bounds={},
            worst_bound_ratio=math.inf,
            key=key if key is not None else request_key(request),
            system_name=request.system.name,
            request_id=request.request_id,
            margins=margins,
        )

    # ------------------------------------------------------------------
    # Building (miss path)
    # ------------------------------------------------------------------
    def observe(self, request: AdmissionRequest) -> FeasibilityRegion | None:
        """Account one direct computation of this request's shape.

        Builds and stores the shape's region once the shape has been
        seen ``build_threshold`` times (and is not already stored or
        being built by another thread).  Returns the freshly built
        region, or None when nothing was built.
        """
        skey = shape_key(request)
        with self._lock:
            count = self._seen.get(skey, 0) + 1
            self._seen[skey] = count
            if len(self._seen) > 4 * self.store.capacity:
                self._seen.pop(next(iter(self._seen)))
            if count < self.build_threshold or skey in self._building:
                return None
            if skey in self.store:
                return None
            self._building.add(skey)
        try:
            region = self.build(request)
        finally:
            with self._lock:
                self._building.discard(skey)
        return region

    def build(self, request: AdmissionRequest) -> FeasibilityRegion:
        """Unconditionally build, store and return the shape's region."""
        region = compute_region(
            request,
            timebase=self.timebase,
            tolerance=self.tolerance,
            max_factor=self.max_factor,
            ascent_rounds=self.ascent_rounds,
        )
        self.store.put(region.shape_key, region)
        if self.metrics is not None:
            self.metrics.record_region_build(probes=region.probes)
        return region

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying store (flushes file-backed stores)."""
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "RegionTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """The underlying store's counters."""
        return self.store.stats()

    def describe(self) -> str:
        stats = self.stats()
        return (
            f"regions: {stats.size}/{stats.capacity} shapes, "
            f"{stats.hits} hits / {stats.misses} misses "
            f"(rate {stats.hit_rate:.1%}), {stats.evictions} evictions"
        )
