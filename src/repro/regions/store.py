"""Region stores: ``shape_key -> FeasibilityRegion``, memory or sqlite.

The region cache is the tier *above* the decision cache: a decision
cache entry answers one exact request; a region answers every request
of one shape whose execution vector lands inside the verified box.
The stores here deliberately mirror the decision-cache contract of
:mod:`repro.service.cache` / :mod:`repro.service.backends` --
``get``/``put``/``stats``/``save``/``load``, LRU eviction, process-local
counters, a config-driven factory -- so everything operators learned
about the decision tier (capacity planning, persistence, the sqlite/WAL
sharing model) transfers unchanged.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import ConfigurationError
from repro.regions.region import (
    FeasibilityRegion,
    region_from_dict,
    region_to_dict,
)
from repro.service.cache import CacheStats
from repro.service.durability import (
    FSYNC_POLICIES,
    RecoveryReport,
    atomic_write_text,
    frame_line,
    load_jsonl_salvaging,
    open_sqlite_checked,
)

__all__ = [
    "REGION_BACKENDS",
    "MemoryRegionStore",
    "SqliteRegionStore",
    "make_region_store",
]

#: Recognized ``make_region_store`` backend names.
REGION_BACKENDS: tuple[str, ...] = ("memory", "sqlite")

_PERSIST_FORMAT = "repro-region-store-v1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS regions (
    shape_key TEXT PRIMARY KEY,
    region TEXT NOT NULL,
    seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS regions_seq ON regions (seq);
"""


class MemoryRegionStore:
    """LRU-bounded, thread-safe map from shape key to region.

    Parameters
    ----------
    capacity:
        Maximum number of regions retained; least recently used first
        out.  Regions are a few hundred bytes each but *expensive to
        rebuild*, so capacities err large by default.
    path:
        Optional JSONL persistence file (one ``{"shape_key": ...,
        "region": ...}`` object per line).  When given and present the
        store warm-starts from it; :meth:`save` rewrites it atomically.
    fsync:
        Snapshot fsync policy, one of
        :data:`repro.service.durability.FSYNC_POLICIES`.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        path: str | Path | None = None,
        fsync: str = "data",
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"region store capacity must be >= 1, got {capacity}"
            )
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{'/'.join(FSYNC_POLICIES)}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[str, FeasibilityRegion] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._fsync = fsync
        self.last_recovery: RecoveryReport | None = None
        self.integrity_failures = 0  # uniform backend-health surface
        self._path = None if path is None else Path(path)
        if self._path is not None and self._path.exists():
            self.load(self._path)

    # ------------------------------------------------------------------
    # Core map operations
    # ------------------------------------------------------------------
    def get(self, shape_key: str) -> FeasibilityRegion | None:
        """The stored region for a shape, or None; counts hit/miss."""
        with self._lock:
            region = self._entries.get(shape_key)
            if region is None:
                self._misses += 1
                return None
            self._entries.move_to_end(shape_key)
            self._hits += 1
            return region

    def put(self, shape_key: str, region: FeasibilityRegion) -> None:
        """Store (or refresh) a region, evicting LRU entries if full."""
        with self._lock:
            if shape_key in self._entries:
                self._entries.move_to_end(shape_key)
            self._entries[shape_key] = region
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, shape_key: str) -> bool:
        """Membership without touching recency or the counters."""
        with self._lock:
            return shape_key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> tuple[str, ...]:
        """Current shape keys, least recently used first."""
        with self._lock:
            return tuple(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )

    # ------------------------------------------------------------------
    # Persistence (warm restarts)
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Snapshot every region as CRC-framed JSONL, LRU first.

        Atomic (temp file + rename under the constructor's fsync
        policy); a crash mid-save leaves the previous complete
        snapshot.  Returns the path written.
        """
        target = Path(path) if path is not None else self._path
        if target is None:
            raise ConfigurationError(
                "no persistence path: pass one to save() or the constructor"
            )
        with self._lock:
            lines = [
                frame_line(
                    json.dumps(
                        {
                            "format": _PERSIST_FORMAT,
                            "shape_key": shape_key,
                            "region": region_to_dict(region),
                        },
                        sort_keys=True,
                    )
                )
                for shape_key, region in self._entries.items()
            ]
        return atomic_write_text(
            target,
            "\n".join(lines) + ("\n" if lines else ""),
            fsync=self._fsync,
        )

    def load(self, path: str | Path) -> int:
        """Merge entries from a :meth:`save` file; returns the count.

        A torn or truncated tail (crash mid-append) is salvaged: the
        valid prefix loads, the damage is logged and reported in
        ``last_recovery``.  Foreign-format lines and well-formed
        records that fail to apply still raise
        :class:`ConfigurationError` (wrong file / writer bug, not
        storage damage).  Legacy unframed files load too.
        """

        def apply(entry: dict) -> None:
            self.put(
                entry["shape_key"], region_from_dict(entry["region"])
            )

        report = load_jsonl_salvaging(
            path,
            expected_format=_PERSIST_FORMAT,
            apply=apply,
            label="region",
        )
        self.last_recovery = report
        return report.loaded

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush to the constructor's persistence path, if any."""
        if self._path is not None:
            self.save()

    def __enter__(self) -> "MemoryRegionStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SqliteRegionStore:
    """LRU region store on sqlite/WAL; same interface as the memory one.

    Like :class:`repro.service.backends.SqliteDecisionCache`: a real
    path is durable and shareable between frontend processes on one
    host, ``":memory:"`` is private; recency is a monotone ``seq``
    column bumped on every hit; counters are process-local.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        db_path: str | Path = ":memory:",
        rebuild_from: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"region store capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._db_path = str(db_path)
        self._closed = False
        self.last_recovery: RecoveryReport | None = None
        self.integrity_failures = 0
        self._conn, quarantined = open_sqlite_checked(
            self._db_path, _SCHEMA
        )
        if quarantined is not None:
            self.integrity_failures += 1
            loaded = 0
            if (
                rebuild_from is not None
                and Path(rebuild_from).exists()
            ):
                loaded = self.load(rebuild_from)
            self.last_recovery = RecoveryReport(
                path=self._db_path,
                kind="sqlite",
                loaded=loaded,
                reason="integrity check failed; rebuilt from snapshot"
                if loaded
                else "integrity check failed; no snapshot to rebuild from",
                quarantined=quarantined,
            )

    def _next_seq(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM regions"
        ).fetchone()
        return int(row[0])

    def get(self, shape_key: str) -> FeasibilityRegion | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT region FROM regions WHERE shape_key = ?",
                (shape_key,),
            ).fetchone()
            if row is None:
                self._misses += 1
                return None
            self._conn.execute(
                "UPDATE regions SET seq = ? WHERE shape_key = ?",
                (self._next_seq(), shape_key),
            )
            self._conn.commit()
            self._hits += 1
            return region_from_dict(json.loads(row[0]))

    def put(self, shape_key: str, region: FeasibilityRegion) -> None:
        encoded = json.dumps(region_to_dict(region), sort_keys=True)
        with self._lock:
            self._conn.execute(
                "INSERT INTO regions (shape_key, region, seq) "
                "VALUES (?, ?, ?) ON CONFLICT(shape_key) DO UPDATE SET "
                "region = excluded.region, seq = excluded.seq",
                (shape_key, encoded, self._next_seq()),
            )
            over = len(self) - self._capacity
            if over > 0:
                self._conn.execute(
                    "DELETE FROM regions WHERE shape_key IN ("
                    "SELECT shape_key FROM regions ORDER BY seq LIMIT ?)",
                    (over,),
                )
                self._evictions += over
            self._conn.commit()

    def __contains__(self, shape_key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM regions WHERE shape_key = ?", (shape_key,)
            ).fetchone()
            return row is not None

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM regions"
            ).fetchone()
            return int(row[0])

    def keys(self) -> tuple[str, ...]:
        """Current shape keys, least recently used first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT shape_key FROM regions ORDER BY seq"
            ).fetchall()
            return tuple(row[0] for row in rows)

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM regions")
            self._conn.commit()

    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self),
                capacity=self._capacity,
            )

    # ------------------------------------------------------------------
    # Persistence interop (JSONL, compatible with MemoryRegionStore)
    # ------------------------------------------------------------------
    def save(self, path: str | Path, *, fsync: str = "data") -> Path:
        """Export to the memory store's JSONL format (LRU first).

        CRC-framed and atomic, like the memory store -- this snapshot
        is also what a corrupt database rebuilds from.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT shape_key, region FROM regions ORDER BY seq"
            ).fetchall()
        lines = [
            frame_line(
                json.dumps(
                    {
                        "format": _PERSIST_FORMAT,
                        "shape_key": shape_key,
                        "region": json.loads(encoded),
                    },
                    sort_keys=True,
                )
            )
            for shape_key, encoded in rows
        ]
        return atomic_write_text(
            path, "\n".join(lines) + ("\n" if lines else ""), fsync=fsync
        )

    def load(self, path: str | Path) -> int:
        """Merge a memory-store JSONL file; returns entries loaded.

        Salvage semantics match the memory store (the staging store
        does the framing/validation); its :class:`RecoveryReport`
        surfaces as ``last_recovery``.
        """
        staging = MemoryRegionStore(capacity=max(1, self._capacity))
        loaded = staging.load(path)
        for shape_key in staging.keys():
            region = staging.get(shape_key)
            assert region is not None
            self.put(shape_key, region)
        self.last_recovery = staging.last_recovery
        return loaded

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent; safe on error paths)."""
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True

    def __enter__(self) -> "SqliteRegionStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_region_store(
    backend: str = "memory",
    *,
    capacity: int = 1024,
    path: str | Path | None = None,
    fsync: str = "data",
    rebuild_from: str | Path | None = None,
):
    """Build a region store from configuration.

    ``backend="memory"`` gives the in-process LRU (``path`` is its
    JSONL warm-start/persistence file, ``fsync`` its snapshot policy);
    ``backend="sqlite"`` gives the shared WAL-backed store (``path`` is
    the database file, default private in-memory; ``rebuild_from`` an
    optional JSONL snapshot restored after quarantining corruption).
    """
    if backend == "memory":
        return MemoryRegionStore(capacity=capacity, path=path, fsync=fsync)
    if backend == "sqlite":
        return SqliteRegionStore(
            capacity=capacity,
            db_path=":memory:" if path is None else path,
            rebuild_from=rebuild_from,
        )
    raise ConfigurationError(
        f"unknown region store backend {backend!r}; expected one of "
        f"{'/'.join(REGION_BACKENDS)}"
    )
