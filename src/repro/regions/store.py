"""Region stores: ``shape_key -> FeasibilityRegion``, memory or sqlite.

The region cache is the tier *above* the decision cache: a decision
cache entry answers one exact request; a region answers every request
of one shape whose execution vector lands inside the verified box.
The stores here deliberately mirror the decision-cache contract of
:mod:`repro.service.cache` / :mod:`repro.service.backends` --
``get``/``put``/``stats``/``save``/``load``, LRU eviction, process-local
counters, a config-driven factory -- so everything operators learned
about the decision tier (capacity planning, persistence, the sqlite/WAL
sharing model) transfers unchanged.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import ConfigurationError
from repro.regions.region import (
    FeasibilityRegion,
    region_from_dict,
    region_to_dict,
)
from repro.service.cache import CacheStats

__all__ = [
    "REGION_BACKENDS",
    "MemoryRegionStore",
    "SqliteRegionStore",
    "make_region_store",
]

#: Recognized ``make_region_store`` backend names.
REGION_BACKENDS: tuple[str, ...] = ("memory", "sqlite")

_PERSIST_FORMAT = "repro-region-store-v1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS regions (
    shape_key TEXT PRIMARY KEY,
    region TEXT NOT NULL,
    seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS regions_seq ON regions (seq);
"""


class MemoryRegionStore:
    """LRU-bounded, thread-safe map from shape key to region.

    Parameters
    ----------
    capacity:
        Maximum number of regions retained; least recently used first
        out.  Regions are a few hundred bytes each but *expensive to
        rebuild*, so capacities err large by default.
    path:
        Optional JSONL persistence file (one ``{"shape_key": ...,
        "region": ...}`` object per line).  When given and present the
        store warm-starts from it; :meth:`save` rewrites it.
    """

    def __init__(
        self, capacity: int = 1024, *, path: str | Path | None = None
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"region store capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[str, FeasibilityRegion] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._path = None if path is None else Path(path)
        if self._path is not None and self._path.exists():
            self.load(self._path)

    # ------------------------------------------------------------------
    # Core map operations
    # ------------------------------------------------------------------
    def get(self, shape_key: str) -> FeasibilityRegion | None:
        """The stored region for a shape, or None; counts hit/miss."""
        with self._lock:
            region = self._entries.get(shape_key)
            if region is None:
                self._misses += 1
                return None
            self._entries.move_to_end(shape_key)
            self._hits += 1
            return region

    def put(self, shape_key: str, region: FeasibilityRegion) -> None:
        """Store (or refresh) a region, evicting LRU entries if full."""
        with self._lock:
            if shape_key in self._entries:
                self._entries.move_to_end(shape_key)
            self._entries[shape_key] = region
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, shape_key: str) -> bool:
        """Membership without touching recency or the counters."""
        with self._lock:
            return shape_key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> tuple[str, ...]:
        """Current shape keys, least recently used first."""
        with self._lock:
            return tuple(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )

    # ------------------------------------------------------------------
    # Persistence (warm restarts)
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write every region as JSONL, LRU first.  Returns the path."""
        target = Path(path) if path is not None else self._path
        if target is None:
            raise ConfigurationError(
                "no persistence path: pass one to save() or the constructor"
            )
        with self._lock:
            lines = [
                json.dumps(
                    {
                        "format": _PERSIST_FORMAT,
                        "shape_key": shape_key,
                        "region": region_to_dict(region),
                    },
                    sort_keys=True,
                )
                for shape_key, region in self._entries.items()
            ]
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(lines) + ("\n" if lines else ""))
        return target

    def load(self, path: str | Path) -> int:
        """Merge entries from a :meth:`save` file; returns the count.

        Corrupt or foreign lines raise :class:`ConfigurationError` --
        silently dropped regions would hide persistence bugs.
        """
        loaded = 0
        for number, line in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if entry.get("format") != _PERSIST_FORMAT:
                    raise ConfigurationError(
                        f"not a {_PERSIST_FORMAT} line "
                        f"(format={entry.get('format')!r})"
                    )
                self.put(
                    entry["shape_key"], region_from_dict(entry["region"])
                )
            except ConfigurationError:
                raise
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"{path}:{number}: bad region line: {exc}"
                ) from exc
            loaded += 1
        return loaded


class SqliteRegionStore:
    """LRU region store on sqlite/WAL; same interface as the memory one.

    Like :class:`repro.service.backends.SqliteDecisionCache`: a real
    path is durable and shareable between frontend processes on one
    host, ``":memory:"`` is private; recency is a monotone ``seq``
    column bumped on every hit; counters are process-local.
    """

    def __init__(
        self, capacity: int = 1024, *, db_path: str | Path = ":memory:"
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"region store capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._db_path = str(db_path)
        self._conn = sqlite3.connect(self._db_path, check_same_thread=False)
        with self._lock:
            if self._db_path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def _next_seq(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM regions"
        ).fetchone()
        return int(row[0])

    def get(self, shape_key: str) -> FeasibilityRegion | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT region FROM regions WHERE shape_key = ?",
                (shape_key,),
            ).fetchone()
            if row is None:
                self._misses += 1
                return None
            self._conn.execute(
                "UPDATE regions SET seq = ? WHERE shape_key = ?",
                (self._next_seq(), shape_key),
            )
            self._conn.commit()
            self._hits += 1
            return region_from_dict(json.loads(row[0]))

    def put(self, shape_key: str, region: FeasibilityRegion) -> None:
        encoded = json.dumps(region_to_dict(region), sort_keys=True)
        with self._lock:
            self._conn.execute(
                "INSERT INTO regions (shape_key, region, seq) "
                "VALUES (?, ?, ?) ON CONFLICT(shape_key) DO UPDATE SET "
                "region = excluded.region, seq = excluded.seq",
                (shape_key, encoded, self._next_seq()),
            )
            over = len(self) - self._capacity
            if over > 0:
                self._conn.execute(
                    "DELETE FROM regions WHERE shape_key IN ("
                    "SELECT shape_key FROM regions ORDER BY seq LIMIT ?)",
                    (over,),
                )
                self._evictions += over
            self._conn.commit()

    def __contains__(self, shape_key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM regions WHERE shape_key = ?", (shape_key,)
            ).fetchone()
            return row is not None

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM regions"
            ).fetchone()
            return int(row[0])

    def keys(self) -> tuple[str, ...]:
        """Current shape keys, least recently used first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT shape_key FROM regions ORDER BY seq"
            ).fetchall()
            return tuple(row[0] for row in rows)

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM regions")
            self._conn.commit()

    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self),
                capacity=self._capacity,
            )

    # ------------------------------------------------------------------
    # Persistence interop (JSONL, compatible with MemoryRegionStore)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Export to the memory store's JSONL format (LRU first)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT shape_key, region FROM regions ORDER BY seq"
            ).fetchall()
        lines = [
            json.dumps(
                {
                    "format": _PERSIST_FORMAT,
                    "shape_key": shape_key,
                    "region": json.loads(encoded),
                },
                sort_keys=True,
            )
            for shape_key, encoded in rows
        ]
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(lines) + ("\n" if lines else ""))
        return target

    def load(self, path: str | Path) -> int:
        """Merge a memory-store JSONL file; returns entries loaded."""
        staging = MemoryRegionStore(capacity=max(1, self._capacity))
        loaded = staging.load(path)
        for shape_key in staging.keys():
            region = staging.get(shape_key)
            assert region is not None
            self.put(shape_key, region)
        return loaded

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def make_region_store(
    backend: str = "memory",
    *,
    capacity: int = 1024,
    path: str | Path | None = None,
):
    """Build a region store from configuration.

    ``backend="memory"`` gives the in-process LRU (``path`` is its
    JSONL warm-start/persistence file); ``backend="sqlite"`` gives the
    shared WAL-backed store (``path`` is the database file, default
    private in-memory).
    """
    if backend == "memory":
        return MemoryRegionStore(capacity=capacity, path=path)
    if backend == "sqlite":
        return SqliteRegionStore(
            capacity=capacity,
            db_path=":memory:" if path is None else path,
        )
    raise ConfigurationError(
        f"unknown region store backend {backend!r}; expected one of "
        f"{'/'.join(REGION_BACKENDS)}"
    )
