"""Region construction: monotone boundary search per dimension.

This generalizes :func:`repro.core.analysis.sensitivity.breakdown_scaling`
from one global scaling factor to a per-subtask box.  The search has
two stages, both built on the same primitive -- *probe a concrete
execution vector with the real analysis* (the exact analysis the
admission service runs, blocking-aware when the request declares shared
resources, skew-inflated when it declares a clock envelope):

1. **Uniform bisection.**  Find the largest verified factor
   ``lambda*`` such that ``lambda* * e0`` (the request's execution
   vector scaled uniformly, critical sections included) is schedulable.
   This is exactly the breakdown search, and seeds a verified corner.

2. **Coordinate ascent.**  Grow one dimension at a time by bisection,
   keeping every other dimension at its current corner value, and
   accept a growth only when the *full* grown corner re-verifies
   jointly.  Growing dimensions independently and combining the
   per-face maxima would be unsound -- schedulability is monotone but
   not separable (two subtasks on one processor can each grow alone but
   not together); sequential joint verification keeps the invariant
   that the current corner is always a directly verified point.

Every probe is counted; the total lands in
:attr:`~repro.regions.region.FeasibilityRegion.probes` so callers can
report the build cost the region must amortize.

Under the exact timebase the search bisects with ``Fraction``
midpoints, so every boundary is an exact rational -- no float drift --
and the default tolerance/cap are powers of two to keep denominators
small.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.analysis.skew import analyze_sa_pm_skewed
from repro.errors import ConfigurationError
from repro.locks import analyze_sa_ds_blocking, analyze_sa_pm_blocking
from repro.model.system import System
from repro.regions.region import FeasibilityRegion
from repro.regions.shape import (
    dimension_names,
    execution_vector,
    shape_key,
    system_at,
)
from repro.service.requests import AdmissionRequest
from repro.timebase import ABS_EPS, Timebase, get_timebase

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_MAX_FACTOR",
    "required_analyses",
    "probe_point",
    "compute_region",
]

#: Default relative resolution of the boundary search.  A power of two:
#: exact in floats, and exact-timebase midpoints keep power-of-two
#: denominators instead of growing arbitrary rationals.
DEFAULT_TOLERANCE = 1 / 64

#: Default cap on per-dimension growth, as a multiple of the request's
#: own execution times (the breakdown search's historical ceiling).
DEFAULT_MAX_FACTOR = 16.0


def required_analyses(request: AdmissionRequest) -> tuple[str, ...]:
    """The analyses the shape's protocol verdicts actually depend on.

    Mirrors the certification gates of
    :func:`repro.service.engine.compute_decision` at the shape level:
    protocols whose verdict is already determined by the shape alone
    (PM under unsynchronized or skewed clocks; MPM/RG under a skew
    envelope on a sectioned system -- both always False) need no
    analysis, so a shape requesting only such protocols yields an
    *empty* requirement and a region that decides with zero probes.
    """
    skewed = bool(request.clock_rate_bound or request.clock_jump_bound)
    resourceful = (
        request.shared_resources and request.system.has_critical_sections
    )
    needed: list[str] = []
    for protocol in request.protocols:
        if protocol == "DS":
            name = "SA/DS"
        elif protocol == "PM":
            if not request.synchronized_clocks or skewed:
                continue
            name = "SA/PM"
        else:  # MPM / RG
            if skewed and resourceful:
                continue
            name = "SA/PM-skew" if skewed else "SA/PM"
        if name not in needed:
            needed.append(name)
    return tuple(needed)


def probe_point(
    request: AdmissionRequest,
    analysis: str,
    system: System,
    timebase: Timebase,
) -> bool:
    """Run one direct analysis at a concrete point; True = schedulable.

    This is the region's ground truth: the same analysis dispatch the
    admission service uses, on the same timebase.  The utilization
    screen is conservative in the sound direction (claiming
    unschedulable only shrinks the region).
    """
    utilization = system.max_utilization
    if timebase.exact:
        if utilization >= 1:
            return False
    elif utilization >= 1.0 - ABS_EPS:
        return False
    if analysis == "SA/DS":
        if request.shared_resources:
            return analyze_sa_ds_blocking(
                system,
                max_iterations=request.sa_ds_max_iterations,
                timebase=timebase,
            ).schedulable
        return analyze_sa_ds(
            system,
            max_iterations=request.sa_ds_max_iterations,
            timebase=timebase,
        ).schedulable
    if analysis == "SA/PM":
        if request.shared_resources:
            return analyze_sa_pm_blocking(system, timebase=timebase).schedulable
        return analyze_sa_pm(system, timebase=timebase).schedulable
    if analysis == "SA/PM-skew":
        return analyze_sa_pm_skewed(
            system,
            rate=request.clock_rate_bound,
            jump=request.clock_jump_bound,
            timebase=timebase,
        ).schedulable
    raise ConfigurationError(f"unknown region analysis {analysis!r}")


class _Prober:
    """Counted probes of one request's parameter space."""

    def __init__(
        self, request: AdmissionRequest, timebase: Timebase
    ) -> None:
        self.request = request
        self.timebase = timebase
        self.count = 0

    def __call__(self, analysis: str, vector) -> bool:
        self.count += 1
        return probe_point(
            self.request,
            analysis,
            system_at(self.request.system, vector),
            self.timebase,
        )


def _as_scalar(value: float, exact: bool):
    """A search scalar: a small exact rational or a float."""
    return Fraction(value).limit_denominator(1 << 20) if exact else value


def _largest_uniform(ok, e0, max_factor, tolerance, exact: bool):
    """Largest verified uniform factor in ``(0, max_factor]``; 0 = none.

    ``ok(vector) -> bool`` probes a concrete vector.  Identical
    structure to ``breakdown_scaling``: seed the bracket at 1, bisect,
    return the verified low endpoint.
    """
    one = Fraction(1) if exact else 1.0
    zero = Fraction(0) if exact else 0.0

    def at(factor):
        return tuple(e * factor for e in e0)

    if ok(at(max_factor)):
        return max_factor
    low, high = zero, max_factor
    if ok(at(one)):
        low = one
    else:
        high = one
    while high - low > tolerance:
        mid = (low + high) / 2
        if mid <= 0:
            break
        if ok(at(mid)):
            low = mid
        else:
            high = mid
    return low


def _ascend(ok, corner, e0, max_factor, tolerance, rounds: int, *, dimensions=None):
    """Grow the verified corner one dimension at a time.

    Precondition: ``corner`` was directly verified.  Every accepted
    growth re-verifies the whole corner jointly, so the precondition is
    an invariant and the returned corner is a certified point.
    ``dimensions`` restricts the sweep (the incremental layer passes
    only the touched dimensions); default is all of them.
    """
    corner = list(corner)
    sweep = range(len(corner)) if dimensions is None else tuple(dimensions)
    for _ in range(rounds):
        for k in sweep:
            cap = e0[k] * max_factor
            step = e0[k] * tolerance
            low, high = corner[k], cap
            if not low < high:
                continue

            def at(value):
                probe = list(corner)
                probe[k] = value
                return tuple(probe)

            if ok(at(high)):
                corner[k] = high
                continue
            while high - low > step:
                mid = (low + high) / 2
                if ok(at(mid)):
                    low = mid
                else:
                    high = mid
            corner[k] = low
    return tuple(corner)


def compute_region(
    request: AdmissionRequest,
    *,
    timebase=None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_factor: float = DEFAULT_MAX_FACTOR,
    ascent_rounds: int = 1,
) -> FeasibilityRegion:
    """Build the feasibility region of one request's shape.

    The returned region holds, for every analysis the shape's verdicts
    depend on (see :func:`required_analyses`), a corner vector that was
    *directly verified schedulable* -- or ``None`` when even the
    smallest resolvable uniform scaling fails.  ``tolerance`` is the
    relative resolution of every boundary; ``max_factor`` caps growth
    at a multiple of the request's own execution times;
    ``ascent_rounds`` is how many sweeps over the dimensions the
    coordinate ascent makes after the uniform seed (0 = uniform box
    only).
    """
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be > 0, got {tolerance!r}")
    if max_factor <= 0:
        raise ConfigurationError(
            f"max_factor must be > 0, got {max_factor!r}"
        )
    if ascent_rounds < 0:
        raise ConfigurationError(
            f"ascent_rounds must be >= 0, got {ascent_rounds!r}"
        )
    tb = get_timebase(timebase)
    system = request.system
    e0 = tuple(tb.convert(e) for e in execution_vector(system))
    tol = _as_scalar(tolerance, tb.exact)
    cap = _as_scalar(max_factor, tb.exact)
    prober = _Prober(request, tb)
    corners: dict[str, tuple | None] = {}
    for analysis in required_analyses(request):
        def ok(vector, _analysis=analysis):
            return prober(_analysis, vector)

        factor = _largest_uniform(ok, e0, cap, tol, tb.exact)
        if factor <= 0:
            corners[analysis] = None
            continue
        corner = tuple(e * factor for e in e0)
        if ascent_rounds and factor < cap:
            corner = _ascend(ok, corner, e0, cap, tol, ascent_rounds)
        corners[analysis] = corner
    return FeasibilityRegion(
        shape_key=shape_key(request),
        timebase=tb.name,
        dimensions=dimension_names(system),
        corners=corners,
        probes=prober.count,
    )
