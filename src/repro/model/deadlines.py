"""Local-deadline assignment strategies for end-to-end tasks.

The paper's priority assignment divides each task's end-to-end deadline
into per-subtask *proportional deadlines*; its reference [9] (Kao &
Garcia-Molina) catalogues the design space of such divisions.  This
module implements the classic strategies so they can be plugged into
priority assignment (:func:`repro.model.priority.assign_by_key`),
Audsley's OPA (:func:`repro.core.analysis.opa.audsley_assignment`) and
the slicing analysis (:func:`repro.core.analysis.local_deadline`):

* **UD** (ultimate deadline): every stage gets the full end-to-end
  deadline -- the laissez-faire baseline.
* **ED** (effective deadline): the end-to-end deadline minus the
  downstream stages' execution times -- the latest completion that
  still leaves the rest of the chain runnable back-to-back.
* **PD** (proportional): the paper's choice; the deadline split in
  proportion to execution times (already available as
  :func:`repro.model.priority.proportional_deadline`).
* **EQS** (equal slack): each stage gets its execution time plus an
  equal share of the chain's total slack.
* **EQF** (equal flexibility): each stage gets its execution time plus
  a share of the slack proportional to its execution time -- stagewise
  identical to PD when the whole chain is considered at once.

All functions return the *relative* local deadline of a stage (time
allowed from the stage's release to its completion).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ModelError
from repro.model.priority import proportional_deadline
from repro.model.system import System
from repro.model.task import SubtaskId

__all__ = [
    "ultimate_deadline",
    "effective_deadline",
    "equal_slack_deadline",
    "equal_flexibility_deadline",
    "deadline_map",
    "DEADLINE_STRATEGIES",
]

#: A strategy maps (system, subtask id) to that subtask's local deadline.
DeadlineStrategy = Callable[[System, SubtaskId], float]


def ultimate_deadline(system: System, sid: SubtaskId) -> float:
    """UD: the stage may use the entire end-to-end deadline."""
    return system.task_of(sid).relative_deadline


def effective_deadline(system: System, sid: SubtaskId) -> float:
    """ED: end-to-end deadline minus the downstream execution demand."""
    task = system.task_of(sid)
    downstream = sum(
        stage.execution_time
        for stage in task.subtasks[sid.subtask_index + 1 :]
    )
    return task.relative_deadline - downstream


def equal_slack_deadline(system: System, sid: SubtaskId) -> float:
    """EQS: execution time plus an equal share of the chain's slack."""
    task = system.task_of(sid)
    slack = task.relative_deadline - task.total_execution_time
    return (
        system.subtask(sid).execution_time + slack / task.chain_length
    )


def equal_flexibility_deadline(system: System, sid: SubtaskId) -> float:
    """EQF: execution time plus a slack share proportional to it.

    With the whole chain considered at once this coincides with the
    paper's proportional deadline:
    ``e + (D - sum e) * e / sum e  ==  e * D / sum e``.
    """
    return proportional_deadline(system, sid)


#: Registry of strategies by their Kao & Garcia-Molina names.
DEADLINE_STRATEGIES: Mapping[str, DeadlineStrategy] = {
    "ud": ultimate_deadline,
    "ed": effective_deadline,
    "pd": proportional_deadline,
    "eqs": equal_slack_deadline,
    "eqf": equal_flexibility_deadline,
}


def deadline_map(
    system: System, strategy: str | DeadlineStrategy
) -> dict[SubtaskId, float]:
    """Local deadlines of every subtask under one strategy.

    ``strategy`` is a registry name (``"ud"``, ``"ed"``, ``"pd"``,
    ``"eqs"``, ``"eqf"``) or any callable with the strategy signature.
    """
    if isinstance(strategy, str):
        try:
            fn = DEADLINE_STRATEGIES[strategy]
        except KeyError:
            known = ", ".join(sorted(DEADLINE_STRATEGIES))
            raise ModelError(
                f"unknown deadline strategy {strategy!r}; known: {known}"
            ) from None
    else:
        fn = strategy
    return {sid: fn(system, sid) for sid in system.subtask_ids}
