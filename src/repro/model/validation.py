"""Structural and schedulability-related sanity checks for systems.

These checks live apart from the dataclass constructors because they
express *policy* (what a particular analysis or protocol requires), not
well-formedness.  Analyses call the checks they need; users can call
:func:`validate_system` for a full report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import ABS_EPS

__all__ = [
    "ValidationReport",
    "validate_system",
    "require_feasible_utilization",
    "check_consecutive_placement",
]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_system`.

    ``errors`` are conditions that make analyses or the simulator
    unreliable; ``warnings`` flag properties that are legal but unusual
    (e.g. co-located consecutive siblings, which the paper's generator
    forbids).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def raise_if_failed(self) -> None:
        """Raise :class:`ModelError` summarizing errors, if any."""
        if self.errors:
            raise ModelError("; ".join(self.errors))


def require_feasible_utilization(system: System) -> None:
    """Raise unless every processor's utilization is <= 1.

    Busy-period analysis diverges on an overloaded processor; both SA/PM
    and SA/DS therefore require this precondition.
    """
    for processor, utilization in system.utilizations().items():
        if utilization > 1.0 + ABS_EPS:
            raise ModelError(
                f"processor {processor!r} is overloaded: "
                f"utilization {utilization:.4f} > 1"
            )


def check_consecutive_placement(system: System) -> list[SubtaskId]:
    """Return subtask ids whose *immediate successor* shares its processor.

    The paper's synthetic workloads never place two consecutive siblings on
    one processor (a message between them would be pointless); this is a
    lint, not an error, for hand-built systems.
    """
    offenders: list[SubtaskId] = []
    for task_index, task in enumerate(system.tasks):
        for j in range(task.chain_length - 1):
            if task.subtasks[j].processor == task.subtasks[j + 1].processor:
                offenders.append(SubtaskId(task_index, j))
    return offenders


def _duplicate_priorities(system: System) -> list[str]:
    """Describe processors carrying duplicate subtask priorities."""
    messages: list[str] = []
    for processor in system.processors:
        seen: dict[int, SubtaskId] = {}
        for sid in system.subtasks_on(processor):
            priority = system.subtask(sid).priority
            if priority in seen:
                messages.append(
                    f"processor {processor!r}: subtasks {seen[priority]} and "
                    f"{sid} share priority {priority} (ties are broken by "
                    f"release order; analyses treat them as mutually "
                    f"interfering)"
                )
            else:
                seen[priority] = sid
    return messages


def validate_system(system: System) -> ValidationReport:
    """Run all checks, returning a :class:`ValidationReport`.

    Errors:
      * any processor utilization > 1.

    Warnings:
      * consecutive siblings sharing a processor;
      * duplicate priorities on one processor;
      * a task whose end-to-end deadline is below its total execution time
        (trivially unschedulable).
    """
    report = ValidationReport()
    for processor, utilization in system.utilizations().items():
        if utilization > 1.0 + ABS_EPS:
            report.errors.append(
                f"processor {processor!r} overloaded (U={utilization:.4f})"
            )
    for sid in check_consecutive_placement(system):
        report.warnings.append(
            f"consecutive subtasks {sid} and {sid.successor} share "
            f"processor {system.subtask(sid).processor!r}"
        )
    report.warnings.extend(_duplicate_priorities(system))
    for index, task in enumerate(system.tasks):
        if task.total_execution_time > task.relative_deadline:
            report.warnings.append(
                f"task T{index + 1} cannot meet its deadline even alone: "
                f"total execution {task.total_execution_time:g} > deadline "
                f"{task.relative_deadline:g}"
            )
    return report
