"""Structural and schedulability-related sanity checks for systems.

These checks live apart from the dataclass constructors because they
express *policy* (what a particular analysis or protocol requires), not
well-formedness.  Analyses call the checks they need; users can call
:func:`validate_system` for a full report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import ABS_EPS

__all__ = [
    "ValidationReport",
    "validate_system",
    "require_feasible_utilization",
    "check_consecutive_placement",
]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_system`.

    ``errors`` are conditions that make analyses or the simulator
    unreliable; ``warnings`` flag properties that are legal but unusual
    (e.g. co-located consecutive siblings, which the paper's generator
    forbids).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def raise_if_failed(self) -> None:
        """Raise :class:`ModelError` summarizing errors, if any."""
        if self.errors:
            raise ModelError("; ".join(self.errors))


def require_feasible_utilization(system: System) -> None:
    """Raise unless every processor's utilization is <= 1.

    Busy-period analysis diverges on an overloaded processor; both SA/PM
    and SA/DS therefore require this precondition.
    """
    for processor, utilization in system.utilizations().items():
        if utilization > 1.0 + ABS_EPS:
            raise ModelError(
                f"processor {processor!r} is overloaded: "
                f"utilization {utilization:.4f} > 1"
            )


def check_consecutive_placement(system: System) -> list[SubtaskId]:
    """Return subtask ids whose *immediate successor* shares its processor.

    The paper's synthetic workloads never place two consecutive siblings on
    one processor (a message between them would be pointless); this is a
    lint, not an error, for hand-built systems.
    """
    offenders: list[SubtaskId] = []
    for task_index, task in enumerate(system.tasks):
        for j in range(task.chain_length - 1):
            if task.subtasks[j].processor == task.subtasks[j + 1].processor:
                offenders.append(SubtaskId(task_index, j))
    return offenders


def _duplicate_priorities(system: System) -> list[str]:
    """Describe processors carrying duplicate subtask priorities."""
    messages: list[str] = []
    for processor in system.processors:
        seen: dict[int, SubtaskId] = {}
        for sid in system.subtasks_on(processor):
            priority = system.subtask(sid).priority
            if priority in seen:
                messages.append(
                    f"processor {processor!r}: subtasks {seen[priority]} and "
                    f"{sid} share priority {priority} (ties are broken by "
                    f"release order; analyses treat them as mutually "
                    f"interfering)"
                )
            else:
                seen[priority] = sid
    return messages


def _resource_notes(system: System) -> list[str]:
    """Warnings about shared-resource declarations.

    Nested and overlapping sections are rejected by the
    :class:`~repro.model.task.Subtask` constructor (they are
    unrepresentable), so the checks here cover the representable-but-
    suspicious shapes: a resource with a single accessor (the lock can
    never block anything) and a subtask spending its entire WCET inside
    critical sections (no preemptible work remains on its home
    processor under DPCP).
    """
    messages: list[str] = []
    for resource in system.resources:
        accessors = system.accessors_of(resource)
        if len(accessors) == 1:
            messages.append(
                f"resource {resource!r} is accessed only by {accessors[0]}; "
                f"the lock can never block"
            )
    for sid in system.subtask_ids:
        subtask = system.subtask(sid)
        if subtask.critical_sections and (
            subtask.critical_time >= subtask.execution_time
        ):
            messages.append(
                f"{sid} spends its entire execution inside critical "
                f"sections; no non-critical work remains"
            )
    return messages


def validate_system(system: System) -> ValidationReport:
    """Run all checks, returning a :class:`ValidationReport`.

    Errors:
      * any processor utilization > 1.

    Warnings:
      * consecutive siblings sharing a processor;
      * duplicate priorities on one processor;
      * a task whose end-to-end deadline is below its total execution time
        (trivially unschedulable);
      * suspicious shared-resource declarations (single-accessor
        resources, fully-critical subtasks).
    """
    report = ValidationReport()
    for processor, utilization in system.utilizations().items():
        if utilization > 1.0 + ABS_EPS:
            report.errors.append(
                f"processor {processor!r} overloaded (U={utilization:.4f})"
            )
    for sid in check_consecutive_placement(system):
        report.warnings.append(
            f"consecutive subtasks {sid} and {sid.successor} share "
            f"processor {system.subtask(sid).processor!r}"
        )
    report.warnings.extend(_duplicate_priorities(system))
    report.warnings.extend(_resource_notes(system))
    for index, task in enumerate(system.tasks):
        if task.total_execution_time > task.relative_deadline:
            report.warnings.append(
                f"task T{index + 1} cannot meet its deadline even alone: "
                f"total execution {task.total_execution_time:g} > deadline "
                f"{task.relative_deadline:g}"
            )
    return report
