"""Static task model: tasks, subtasks, systems, priorities, validation."""

from repro.model.deadlines import (
    DEADLINE_STRATEGIES,
    deadline_map,
    effective_deadline,
    equal_slack_deadline,
    ultimate_deadline,
)
from repro.model.links import insert_link_stages, uniform_link
from repro.model.priority import (
    POLICIES,
    assign_by_key,
    deadline_monotonic,
    equal_flexibility,
    get_policy,
    proportional_deadline,
    proportional_deadline_monotonic,
    rate_monotonic,
)
from repro.model.system import System
from repro.model.task import (
    CriticalSection,
    ProcessorId,
    Subtask,
    SubtaskId,
    Task,
)
from repro.model.validation import (
    ValidationReport,
    check_consecutive_placement,
    require_feasible_utilization,
    validate_system,
)

__all__ = [
    "DEADLINE_STRATEGIES",
    "deadline_map",
    "effective_deadline",
    "equal_slack_deadline",
    "ultimate_deadline",
    "insert_link_stages",
    "uniform_link",
    "CriticalSection",
    "ProcessorId",
    "Subtask",
    "SubtaskId",
    "Task",
    "System",
    "POLICIES",
    "assign_by_key",
    "deadline_monotonic",
    "equal_flexibility",
    "get_policy",
    "proportional_deadline",
    "proportional_deadline_monotonic",
    "rate_monotonic",
    "ValidationReport",
    "check_consecutive_placement",
    "require_feasible_utilization",
    "validate_system",
]
