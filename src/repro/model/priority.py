"""Priority-assignment policies for subtasks.

The paper assumes priorities were assigned by "some priority assignment
algorithm" and evaluates with **Proportional-Deadline-Monotonic** (PD-M):
each subtask gets a proportional deadline

    PD_i,j = (e_i,j / sum_k e_i,k) * D_i

and, on each processor, a shorter proportional deadline means a higher
priority.  This module implements PD-M plus the classic alternatives the
paper cites as substitutable (rate-monotonic, deadline-monotonic, and the
equal-flexibility style of Kao & Garcia-Molina where the slack
``D_i - sum e`` is distributed in proportion to execution time).

Every policy returns a fresh :class:`~repro.model.system.System` whose
subtasks carry dense integer priorities **per processor**, 0 = highest.
Ties in the underlying key are broken by the subtask id so that the
assignment is deterministic.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ModelError
from repro.model.system import System
from repro.model.task import SubtaskId

__all__ = [
    "proportional_deadline",
    "proportional_deadline_monotonic",
    "rate_monotonic",
    "deadline_monotonic",
    "equal_flexibility",
    "assign_by_key",
    "POLICIES",
]

#: A policy maps (system, subtask id) to a sortable key; smaller key means
#: higher priority.
PriorityKey = Callable[[System, SubtaskId], float]


def proportional_deadline(system: System, sid: SubtaskId) -> float:
    """The paper's proportional deadline ``PD_i,j`` of one subtask."""
    task = system.task_of(sid)
    share = system.subtask(sid).execution_time / task.total_execution_time
    return share * task.relative_deadline


def _equal_flexibility_deadline(system: System, sid: SubtaskId) -> float:
    """A local deadline in the style of Kao & Garcia-Molina's EQF.

    The end-to-end slack ``D_i - sum_k e_i,k`` is split among the stages in
    proportion to their execution times; the local deadline of a stage is
    its execution time plus its slack share.  With deadline = period and no
    slack this degenerates to the execution time itself.
    """
    task = system.task_of(sid)
    total = task.total_execution_time
    slack = max(0.0, task.relative_deadline - total)
    exec_time = system.subtask(sid).execution_time
    return exec_time + slack * (exec_time / total)


def assign_by_key(system: System, key: PriorityKey) -> System:
    """Assign dense per-processor priorities ordered by ``key``.

    On each processor, subtasks are sorted by ``(key, subtask id)`` and
    receive priorities ``0, 1, 2, ...`` in that order (0 = highest).
    """
    priorities: dict[SubtaskId, int] = {}
    for processor in system.processors:
        local = sorted(
            system.subtasks_on(processor),
            key=lambda sid: (key(system, sid), sid),
        )
        for rank, sid in enumerate(local):
            priorities[sid] = rank
    return system.with_priorities(priorities)


def proportional_deadline_monotonic(system: System) -> System:
    """The paper's PD-monotonic policy (Section 5.1)."""
    return assign_by_key(system, proportional_deadline)


def rate_monotonic(system: System) -> System:
    """Subtasks of shorter-period parent tasks get higher priority."""
    return assign_by_key(system, lambda s, sid: s.period_of(sid))


def deadline_monotonic(system: System) -> System:
    """Subtasks of shorter end-to-end-deadline tasks get higher priority."""
    return assign_by_key(
        system, lambda s, sid: s.task_of(sid).relative_deadline
    )


def equal_flexibility(system: System) -> System:
    """Kao & Garcia-Molina style equal-flexibility local deadlines."""
    return assign_by_key(system, _equal_flexibility_deadline)


#: Registry used by the CLI and the workload generator configuration.
POLICIES: Mapping[str, Callable[[System], System]] = {
    "pd-monotonic": proportional_deadline_monotonic,
    "rate-monotonic": rate_monotonic,
    "deadline-monotonic": deadline_monotonic,
    "equal-flexibility": equal_flexibility,
}


def get_policy(name: str) -> Callable[[System], System]:
    """Look up a policy by registry name, raising ModelError if unknown."""
    try:
        return POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ModelError(
            f"unknown priority policy {name!r}; known policies: {known}"
        ) from None
