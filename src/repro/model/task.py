"""Core task model: subtasks, end-to-end tasks, and processors.

The model follows Section 2 of Sun & Liu (ICDCS 1996).  A *task* ``T_i`` is
a chain of *subtasks* ``T_i,1 ... T_i,n_i``; each subtask executes on one
processor under a fixed-priority preemptive scheduler.  Only the first
subtask of each task is released by the environment -- periodically, with
the task's period and phase; the releases of later subtasks are governed by
a synchronization protocol (:mod:`repro.core.protocols`).

Conventions used throughout the library
---------------------------------------

* Time is modelled with floats; any non-negative value is a valid instant.
* ``priority`` is an integer where a **numerically smaller value means a
  higher priority** (priority 0 beats priority 5).  This matches the common
  "deadline-monotonic index" convention.  Analyses treat *equal* priority
  as interfering (the paper's H_i,j contains subtasks of higher **or
  equal** priority); the simulator breaks equal-priority ties by release
  time and then by a deterministic subtask key.
* Subtasks are identified by :class:`SubtaskId` -- the pair of task index
  and subtask index within the chain, both 0-based.  Human-readable names
  like ``"T2,1"`` use the paper's 1-based convention and are derived, never
  stored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.errors import ModelError

__all__ = [
    "ProcessorId",
    "SubtaskId",
    "CriticalSection",
    "Subtask",
    "Task",
    "subtask_display_name",
]

#: Processors are identified by opaque strings, e.g. ``"P1"`` or ``"link"``.
ProcessorId = str


@dataclass(frozen=True, order=True)
class SubtaskId:
    """Identity of a subtask: 0-based task index and position in the chain.

    The display form follows the paper's 1-based convention:
    ``SubtaskId(1, 0)`` renders as ``"T2,1"``.
    """

    task_index: int
    subtask_index: int

    def __post_init__(self) -> None:
        if self.task_index < 0:
            raise ModelError(f"task_index must be >= 0, got {self.task_index}")
        if self.subtask_index < 0:
            raise ModelError(
                f"subtask_index must be >= 0, got {self.subtask_index}"
            )

    @property
    def predecessor(self) -> "SubtaskId | None":
        """Id of the immediately preceding sibling, or None for the first."""
        if self.subtask_index == 0:
            return None
        return SubtaskId(self.task_index, self.subtask_index - 1)

    @property
    def successor(self) -> "SubtaskId":
        """Id of the immediately following sibling position.

        The position is purely syntactic; whether a subtask actually exists
        there depends on the owning task's chain length.
        """
        return SubtaskId(self.task_index, self.subtask_index + 1)

    def __str__(self) -> str:
        return subtask_display_name(self.task_index, self.subtask_index)


def subtask_display_name(task_index: int, subtask_index: int) -> str:
    """Render the paper's 1-based name for a subtask, e.g. ``"T2,1"``."""
    return f"T{task_index + 1},{subtask_index + 1}"


@dataclass(frozen=True)
class CriticalSection:
    """A shared-resource access inside one subtask's execution.

    The section is an interval of the subtask's *own* execution: it
    begins after ``start`` units of the subtask's work and holds
    ``resource`` for ``duration`` units.  Section time is part of the
    subtask's ``execution_time`` (so WCET conservation holds whether the
    section runs on the home processor or, under DPCP, as a remote agent
    on a synchronization processor).

    Sections within one subtask must be disjoint -- the model rejects
    nested or overlapping sections outright, which is what makes the
    locking protocols deadlock-free by construction (a lock holder never
    requests a second resource while holding the first).
    """

    resource: str
    start: float
    duration: float

    def __post_init__(self) -> None:
        if not isinstance(self.resource, str) or not self.resource:
            raise ModelError(
                f"critical-section resource must be a non-empty string, "
                f"got {self.resource!r}"
            )
        if not math.isfinite(self.start) or self.start < 0:
            raise ModelError(
                f"critical-section start must be finite and >= 0, "
                f"got {self.start!r}"
            )
        if not math.isfinite(self.duration) or self.duration <= 0:
            raise ModelError(
                f"critical-section duration must be positive and finite, "
                f"got {self.duration!r}"
            )

    @property
    def end(self) -> float:
        """Offset into the subtask's execution at which the lock releases."""
        return self.start + self.duration


@dataclass(frozen=True)
class Subtask:
    """One stage of an end-to-end task chain.

    Attributes
    ----------
    execution_time:
        Worst-case execution time ``e_i,j`` (the paper's epsilon).  Must be
        positive.  The simulator executes each instance for exactly this
        long unless an execution-time variation model
        (:mod:`repro.sim.variation`) shrinks individual instances.
    processor:
        The processor this subtask is statically bound to.
    priority:
        Fixed priority on that processor; smaller is higher.
    name:
        Optional human-readable label (``"sample"``, ``"transfer"`` ...).
        Defaults to the positional name once the subtask is embedded in a
        :class:`Task` inside a :class:`repro.model.system.System`.
    critical_sections:
        Shared-resource accesses inside this subtask's execution, as
        disjoint :class:`CriticalSection` intervals of
        ``[0, execution_time]``.  Stored sorted by start offset; nested
        or overlapping sections are rejected (no lock holder may request
        another resource).
    """

    execution_time: float
    processor: ProcessorId
    priority: int = 0
    name: str = ""
    critical_sections: tuple[CriticalSection, ...] = ()

    def __post_init__(self) -> None:
        if not math.isfinite(self.execution_time) or self.execution_time <= 0:
            raise ModelError(
                "subtask execution_time must be a positive finite number, "
                f"got {self.execution_time!r}"
            )
        if not isinstance(self.processor, str) or not self.processor:
            raise ModelError(
                f"subtask processor must be a non-empty string, "
                f"got {self.processor!r}"
            )
        if not isinstance(self.priority, int):
            raise ModelError(
                f"subtask priority must be an int, got {self.priority!r}"
            )
        if not isinstance(self.critical_sections, tuple):
            object.__setattr__(
                self, "critical_sections", tuple(self.critical_sections)
            )
        for section in self.critical_sections:
            if not isinstance(section, CriticalSection):
                raise ModelError(
                    f"critical_sections must contain CriticalSection "
                    f"instances, got {section!r}"
                )
            if section.end > self.execution_time:
                raise ModelError(
                    f"critical section on {section.resource!r} ends at "
                    f"offset {section.end!r}, beyond the subtask's "
                    f"execution time {self.execution_time!r}"
                )
        ordered = tuple(
            sorted(self.critical_sections, key=lambda s: (s.start, s.end))
        )
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise ModelError(
                    f"critical sections on {earlier.resource!r} and "
                    f"{later.resource!r} overlap (nested resource holds "
                    f"are not part of the model)"
                )
        object.__setattr__(self, "critical_sections", ordered)

    def with_priority(self, priority: int) -> "Subtask":
        """Return a copy of this subtask with a different priority."""
        return replace(self, priority=priority)

    @property
    def critical_time(self) -> float:
        """Total execution time spent holding any resource."""
        return sum(section.duration for section in self.critical_sections)


@dataclass(frozen=True)
class Task:
    """A periodic end-to-end task: a chain of subtasks plus timing metadata.

    Attributes
    ----------
    period:
        Minimum inter-release time ``p_i`` of the first subtask.
    subtasks:
        Non-empty chain; consecutive subtasks may not share a processor in
        paper-generated workloads, but the model itself permits it (the
        Harbour et al. single-processor case is then expressible).
    phase:
        Release time ``f_i`` of the first instance of the first subtask.
    deadline:
        End-to-end relative deadline ``D_i``.  Defaults to the period, as
        in the paper's evaluation.
    name:
        Human-readable label; defaults to ``"T<k+1>"`` once embedded in a
        system.
    """

    period: float
    subtasks: tuple[Subtask, ...]
    phase: float = 0.0
    deadline: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if not math.isfinite(self.period) or self.period <= 0:
            raise ModelError(
                f"task period must be a positive finite number, "
                f"got {self.period!r}"
            )
        if not isinstance(self.subtasks, tuple):
            object.__setattr__(self, "subtasks", tuple(self.subtasks))
        if len(self.subtasks) == 0:
            raise ModelError("a task must contain at least one subtask")
        for stage in self.subtasks:
            if not isinstance(stage, Subtask):
                raise ModelError(
                    f"task subtasks must be Subtask instances, got {stage!r}"
                )
        if not math.isfinite(self.phase) or self.phase < 0:
            raise ModelError(
                f"task phase must be a finite number >= 0, got {self.phase!r}"
            )
        if self.deadline is not None and (
            not math.isfinite(self.deadline) or self.deadline <= 0
        ):
            raise ModelError(
                f"task deadline must be positive and finite when given, "
                f"got {self.deadline!r}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def relative_deadline(self) -> float:
        """The end-to-end relative deadline; the period when unspecified."""
        return self.period if self.deadline is None else self.deadline

    @property
    def chain_length(self) -> int:
        """Number of subtasks ``n_i`` in the chain."""
        return len(self.subtasks)

    @property
    def total_execution_time(self) -> float:
        """Sum of the execution times of all subtasks on the chain."""
        return sum(stage.execution_time for stage in self.subtasks)

    @property
    def utilization(self) -> float:
        """Total utilization of the task across all its processors."""
        return self.total_execution_time / self.period

    def subtask_utilization(self, subtask_index: int) -> float:
        """Utilization ``e_i,j / p_i`` of one subtask of this task."""
        return self.subtasks[subtask_index].execution_time / self.period

    def cumulative_execution_time(self, subtask_index: int) -> float:
        """Sum of execution times of subtasks ``0..subtask_index`` inclusive.

        This is the initial IEER estimate used by Algorithm SA/DS.
        """
        if not 0 <= subtask_index < len(self.subtasks):
            raise ModelError(
                f"subtask_index {subtask_index} out of range for task with "
                f"{len(self.subtasks)} subtasks"
            )
        return sum(
            stage.execution_time for stage in self.subtasks[: subtask_index + 1]
        )

    def processors(self) -> tuple[ProcessorId, ...]:
        """Processors visited by the chain, in chain order (with repeats)."""
        return tuple(stage.processor for stage in self.subtasks)

    def release_times(self, horizon: float) -> Iterator[float]:
        """Yield environment release times of the first subtask up to
        ``horizon`` (exclusive)."""
        release = self.phase
        while release < horizon:
            yield release
            release += self.period

    def with_subtasks(self, subtasks: Sequence[Subtask]) -> "Task":
        """Return a copy of this task with a replaced subtask chain."""
        return replace(self, subtasks=tuple(subtasks))

    def with_phase(self, phase: float) -> "Task":
        """Return a copy of this task with a different phase."""
        return replace(self, phase=phase)
