"""Modelling communication as link-processor subtasks (Section 2).

The paper's model charges zero cost for synchronization signals and
offers two ways to account for real communication: model a shared,
prioritized link (e.g. CAN) as a *processor* carrying message
subtasks, or charge dedicated links as blocking terms
(:func:`repro.core.analysis.busy_period.analyze_subtask`'s ``blocking``).

This module automates the first option: given a system whose chains hop
between processors, :func:`insert_link_stages` splices a message
subtask onto a link processor between every pair of consecutive stages
that cross a boundary -- turning an n-stage chain into an up-to
(2n-1)-stage chain, exactly like the paper's Example 1 models the
monitor task's transfer step.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ModelError
from repro.model.system import System
from repro.model.task import ProcessorId, Subtask, Task

__all__ = ["insert_link_stages", "uniform_link"]

#: Maps (source processor, destination processor) to (link processor,
#: transmission time); return None for free hops.
LinkPlan = Callable[
    [ProcessorId, ProcessorId], "tuple[ProcessorId, float] | None"
]


def uniform_link(
    link: ProcessorId, transmission_time: float
) -> LinkPlan:
    """Every cross-processor hop uses one shared link (a bus/CAN model)."""
    if transmission_time <= 0:
        raise ModelError(
            f"transmission_time must be > 0, got {transmission_time!r}"
        )

    def plan(
        source: ProcessorId, destination: ProcessorId
    ) -> tuple[ProcessorId, float] | None:
        if source == destination:
            return None
        return (link, transmission_time)

    return plan


def insert_link_stages(
    system: System,
    plan: LinkPlan,
    *,
    message_priority: int = 0,
    name_format: str = "{task}-msg{index}",
) -> System:
    """Splice message subtasks onto link processors between chain hops.

    Every consecutive stage pair whose processors differ gets, when the
    ``plan`` returns a link for that hop, a new subtask on the link
    processor with the planned transmission time.  Message subtasks
    receive ``message_priority`` (re-assign priorities afterwards, e.g.
    with :func:`repro.model.priority.proportional_deadline_monotonic`,
    to model a prioritized bus properly).

    The returned system is a fresh description; analyses and simulation
    treat message stages exactly like any other subtask, which is the
    paper's point: once links are processors, the whole framework
    applies unchanged.
    """
    new_tasks: list[Task] = []
    for task in system.tasks:
        chain: list[Subtask] = []
        messages = 0
        for j, stage in enumerate(task.subtasks):
            chain.append(stage)
            if j + 1 < task.chain_length:
                nxt = task.subtasks[j + 1]
                hop = plan(stage.processor, nxt.processor)
                if hop is None:
                    continue
                link, transmission = hop
                if transmission <= 0:
                    raise ModelError(
                        f"planned transmission time must be > 0, got "
                        f"{transmission!r} for hop "
                        f"{stage.processor!r}->{nxt.processor!r}"
                    )
                messages += 1
                chain.append(
                    Subtask(
                        execution_time=transmission,
                        processor=link,
                        priority=message_priority,
                        name=name_format.format(
                            task=task.name or "task", index=messages
                        ),
                    )
                )
        new_tasks.append(task.with_subtasks(chain))
    return System(tuple(new_tasks), name=f"{system.name}+links")
