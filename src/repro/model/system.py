"""The :class:`System` container: tasks + processors + indexed lookups.

A system is the static description handed both to the schedulability
analyses (:mod:`repro.core.analysis`) and to the simulator
(:mod:`repro.sim`).  It owns no dynamic state.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ModelError
from repro.model.task import (
    CriticalSection,
    ProcessorId,
    Subtask,
    SubtaskId,
    Task,
)

__all__ = ["System"]


@dataclass(frozen=True)
class System:
    """An immutable distributed real-time system description.

    Parameters
    ----------
    tasks:
        The independent periodic end-to-end tasks.  Order is significant:
        task ``i`` in this tuple is the paper's ``T_{i+1}``.
    name:
        Optional label used in reports.

    The processor set is inferred from the subtasks.  All lookup tables are
    computed lazily and cached; the object itself stays hashable by
    identity of its task tuple.
    """

    tasks: tuple[Task, ...]
    name: str = "system"

    def __post_init__(self) -> None:
        if not isinstance(self.tasks, tuple):
            object.__setattr__(self, "tasks", tuple(self.tasks))
        if len(self.tasks) == 0:
            raise ModelError("a system must contain at least one task")
        for task in self.tasks:
            if not isinstance(task, Task):
                raise ModelError(f"system tasks must be Task instances, got {task!r}")

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @cached_property
    def processors(self) -> tuple[ProcessorId, ...]:
        """All processors referenced by any subtask, sorted by id."""
        seen: set[ProcessorId] = set()
        for task in self.tasks:
            for stage in task.subtasks:
                seen.add(stage.processor)
        return tuple(sorted(seen))

    @cached_property
    def subtask_ids(self) -> tuple[SubtaskId, ...]:
        """All subtask ids, ordered by (task index, subtask index)."""
        return tuple(
            SubtaskId(i, j)
            for i, task in enumerate(self.tasks)
            for j in range(task.chain_length)
        )

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    @property
    def subtask_count(self) -> int:
        """Total number of subtasks across all tasks."""
        return sum(task.chain_length for task in self.tasks)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def task_of(self, sid: SubtaskId) -> Task:
        """The parent task of a subtask id."""
        self._check(sid)
        return self.tasks[sid.task_index]

    def subtask(self, sid: SubtaskId) -> Subtask:
        """The subtask addressed by ``sid``."""
        self._check(sid)
        return self.tasks[sid.task_index].subtasks[sid.subtask_index]

    def period_of(self, sid: SubtaskId) -> float:
        """The period of a subtask -- by definition its parent's period."""
        return self.task_of(sid).period

    def is_last(self, sid: SubtaskId) -> bool:
        """True if ``sid`` is the last subtask on its task's chain."""
        return sid.subtask_index == self.task_of(sid).chain_length - 1

    def successor_of(self, sid: SubtaskId) -> SubtaskId | None:
        """The next sibling on the chain, or None at the chain's end."""
        if self.is_last(sid):
            return None
        return sid.successor

    def _check(self, sid: SubtaskId) -> None:
        if sid.task_index >= len(self.tasks):
            raise ModelError(f"no task with index {sid.task_index} in system")
        if sid.subtask_index >= self.tasks[sid.task_index].chain_length:
            raise ModelError(
                f"task {sid.task_index} has no subtask index {sid.subtask_index}"
            )

    @cached_property
    def _by_processor(self) -> Mapping[ProcessorId, tuple[SubtaskId, ...]]:
        table: dict[ProcessorId, list[SubtaskId]] = {p: [] for p in self.processors}
        for sid in self.subtask_ids:
            table[self.subtask(sid).processor].append(sid)
        return {p: tuple(ids) for p, ids in table.items()}

    def subtasks_on(self, processor: ProcessorId) -> tuple[SubtaskId, ...]:
        """Subtask ids bound to ``processor`` (task order)."""
        try:
            return self._by_processor[processor]
        except KeyError:
            raise ModelError(f"unknown processor {processor!r}") from None

    def interference_set(self, sid: SubtaskId) -> tuple[SubtaskId, ...]:
        """The paper's ``H_i,j``: subtasks, other than ``sid`` itself, on
        the same processor with priority higher than or equal to ``sid``'s.

        Sibling subtasks of ``sid`` placed on the same processor are
        included when their priority qualifies, exactly as in the paper's
        definition (the generated workloads never co-locate *consecutive*
        siblings, but the model allows arbitrary placements).
        """
        me = self.subtask(sid)
        return tuple(
            other
            for other in self.subtasks_on(me.processor)
            if other != sid and self.subtask(other).priority <= me.priority
        )

    # ------------------------------------------------------------------
    # Shared resources
    # ------------------------------------------------------------------
    @cached_property
    def has_critical_sections(self) -> bool:
        """True when any subtask declares a critical section.

        The simulator's lock machinery and the blocking-aware analyses
        gate on this: a system without critical sections takes the bare
        (lock-free) paths byte-identically.
        """
        return any(
            stage.critical_sections
            for task in self.tasks
            for stage in task.subtasks
        )

    @cached_property
    def resources(self) -> tuple[str, ...]:
        """All shared-resource names referenced by any section, sorted."""
        seen: set[str] = set()
        for task in self.tasks:
            for stage in task.subtasks:
                for section in stage.critical_sections:
                    seen.add(section.resource)
        return tuple(sorted(seen))

    @cached_property
    def _resource_accessors(self) -> Mapping[str, tuple[SubtaskId, ...]]:
        table: dict[str, list[SubtaskId]] = {r: [] for r in self.resources}
        for sid in self.subtask_ids:
            for section in self.subtask(sid).critical_sections:
                if sid not in table[section.resource]:
                    table[section.resource].append(sid)
        return {r: tuple(ids) for r, ids in table.items()}

    def accessors_of(self, resource: str) -> tuple[SubtaskId, ...]:
        """Subtask ids with at least one section on ``resource``."""
        try:
            return self._resource_accessors[resource]
        except KeyError:
            raise ModelError(f"unknown resource {resource!r}") from None

    def sections_of(self, sid: SubtaskId) -> tuple[CriticalSection, ...]:
        """The critical sections of one subtask, sorted by start offset."""
        return self.subtask(sid).critical_sections

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def processor_utilization(self, processor: ProcessorId) -> float:
        """Total utilization ``sum e_i,j / p_i`` of subtasks on a processor."""
        return sum(
            self.subtask(sid).execution_time / self.period_of(sid)
            for sid in self.subtasks_on(processor)
        )

    def utilizations(self) -> dict[ProcessorId, float]:
        """Utilization of every processor, keyed by processor id."""
        return {p: self.processor_utilization(p) for p in self.processors}

    @property
    def max_utilization(self) -> float:
        """The highest per-processor utilization in the system."""
        return max(self.utilizations().values())

    @property
    def hyperperiod_hint(self) -> float:
        """A horizon hint: max phase plus the largest period.

        True hyperperiods of real-valued periods are unbounded; simulation
        horizons are therefore chosen as multiples of this hint.
        """
        return max(t.phase for t in self.tasks) + max(t.period for t in self.tasks)

    # ------------------------------------------------------------------
    # Display helpers
    # ------------------------------------------------------------------
    def display_name(self, sid: SubtaskId) -> str:
        """The subtask's own name if set, else the positional ``Ti,j``."""
        sub = self.subtask(sid)
        return sub.name or str(sid)

    def describe(self) -> str:
        """A multi-line human-readable summary of the system."""
        lines = [f"System {self.name!r}: {len(self.tasks)} tasks, "
                 f"{len(self.processors)} processors"]
        for i, task in enumerate(self.tasks):
            label = task.name or f"T{i + 1}"
            lines.append(
                f"  {label}: period={task.period:g} phase={task.phase:g} "
                f"deadline={task.relative_deadline:g}"
            )
            for j, stage in enumerate(task.subtasks):
                lines.append(
                    f"    {self.display_name(SubtaskId(i, j))}: "
                    f"e={stage.execution_time:g} on {stage.processor} "
                    f"prio={stage.priority}"
                )
        for proc in self.processors:
            lines.append(
                f"  {proc}: U={self.processor_utilization(proc):.3f} "
                f"({len(self.subtasks_on(proc))} subtasks)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_priorities(
        self, priorities: Mapping[SubtaskId, int]
    ) -> "System":
        """Return a copy with subtask priorities replaced.

        ``priorities`` must cover every subtask in the system.
        """
        missing = [sid for sid in self.subtask_ids if sid not in priorities]
        if missing:
            raise ModelError(
                f"priorities missing for {len(missing)} subtasks, "
                f"first: {missing[0]}"
            )
        new_tasks = []
        for i, task in enumerate(self.tasks):
            new_chain = tuple(
                stage.with_priority(priorities[SubtaskId(i, j)])
                for j, stage in enumerate(task.subtasks)
            )
            new_tasks.append(task.with_subtasks(new_chain))
        return System(tuple(new_tasks), name=self.name)

    def with_phases(self, phases: Sequence[float]) -> "System":
        """Return a copy with task phases replaced (one per task)."""
        if len(phases) != len(self.tasks):
            raise ModelError(
                f"expected {len(self.tasks)} phases, got {len(phases)}"
            )
        return System(
            tuple(t.with_phase(f) for t, f in zip(self.tasks, phases)),
            name=self.name,
        )

    def with_tasks(self, tasks: Iterable[Task]) -> "System":
        """Return a copy with the task tuple replaced."""
        return System(tuple(tasks), name=self.name)
