"""ASCII Gantt rendering of simulation traces.

Reproduces the schedule figures of the paper (Figs. 3, 5 and 7) as text:
one row per subtask, grouped by processor, with execution drawn as
``#`` blocks, releases as ``^`` and deadline misses noted.  Works for
any trace recorded with ``record_segments=True``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sim.tracing import Trace

__all__ = ["render_gantt"]


def _row(width: int) -> list[str]:
    return [" "] * width


def render_gantt(
    trace: Trace,
    *,
    until: float | None = None,
    chars_per_unit: float = 2.0,
    show_releases: bool = True,
) -> str:
    """Render a trace as an ASCII Gantt chart.

    Parameters
    ----------
    until:
        Right edge of the chart (defaults to the trace horizon).
    chars_per_unit:
        Horizontal scale; 2 chars per time unit reads well for the
        paper's single-digit examples.
    show_releases:
        Mark release instants with ``^`` under each row.
    """
    if not trace.segments:
        raise ConfigurationError(
            "trace has no recorded segments; simulate with "
            "record_segments=True to draw a Gantt chart"
        )
    end = until if until is not None else trace.horizon
    if end <= 0:
        raise ConfigurationError(f"chart end must be > 0, got {end!r}")
    width = int(math.ceil(end * chars_per_unit)) + 1

    def column(time: float) -> int:
        return min(width - 1, max(0, int(round(time * chars_per_unit))))

    system = trace.system
    lines: list[str] = []
    label_width = max(
        len(system.display_name(sid)) for sid in system.subtask_ids
    ) + 2
    for processor in system.processors:
        lines.append(f"-- {processor} " + "-" * max(0, width - len(processor)))
        for sid in system.subtasks_on(processor):
            bar = _row(width)
            for segment in trace.segments:
                if segment.sid != sid or segment.start >= end:
                    continue
                lo = column(segment.start)
                hi = max(lo + 1, column(min(segment.end, end)))
                for position in range(lo, hi):
                    bar[position] = "#"
            label = system.display_name(sid).ljust(label_width)
            lines.append(label + "".join(bar))
            if show_releases:
                marks = _row(width)
                for (other, _m), time in trace.releases.items():
                    if other == sid and time <= end:
                        marks[column(time)] = "^"
                lines.append(" " * label_width + "".join(marks))
    axis = _row(width)
    caption = _row(width)
    step = max(1, int(round(5 * chars_per_unit)) // 1)
    tick = 0.0
    while tick <= end:
        position = column(tick)
        axis[position] = "|"
        text = f"{tick:g}"
        for offset, char in enumerate(text):
            if position + offset < width:
                caption[position + offset] = char
        tick += 5.0
    lines.append(" " * label_width + "".join(axis))
    lines.append(" " * label_width + "".join(caption))

    misses = []
    for task_index in range(len(system.tasks)):
        count = trace.deadline_misses(task_index)
        if count:
            name = system.tasks[task_index].name or f"T{task_index + 1}"
            misses.append(f"{name} missed {count} deadline(s)")
    if misses:
        lines.append("deadline misses: " + "; ".join(misses))
    if trace.violations:
        lines.append(
            f"precedence violations: {len(trace.violations)}"
        )
    return "\n".join(lines)
