"""Text rendering of traces and experiment surfaces."""

from repro.viz.gantt import render_gantt

__all__ = ["render_gantt"]
