#!/usr/bin/env python3
"""Quickstart: the paper's Example 2, end to end.

Builds the two-processor, three-task system of Figure 2, runs both
schedulability analyses, simulates all four synchronization protocols,
and draws the schedules of Figures 3, 5 and 7.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import analyze_sa_ds, analyze_sa_pm, example_two, run_protocol
from repro.viz import render_gantt


def main() -> None:
    system = example_two()
    print(system.describe())
    print()

    # ------------------------------------------------------------------
    # Schedulability analysis: SA/PM covers the PM, MPM and RG protocols
    # (Theorem 1); SA/DS covers Direct Synchronization.
    # ------------------------------------------------------------------
    sa_pm = analyze_sa_pm(system)
    sa_ds = analyze_sa_ds(system)
    print(sa_pm.describe())
    print()
    print(sa_ds.describe())
    print()
    print(
        "Under DS, T3's EER bound exceeds its deadline -- and the DS\n"
        "schedule below indeed misses it.  Under PM/MPM/RG the bound is 5\n"
        "and T3 always completes in time.\n"
    )

    # ------------------------------------------------------------------
    # Simulate each protocol and draw the schedule.
    # ------------------------------------------------------------------
    for protocol in ("DS", "PM", "MPM", "RG"):
        result = run_protocol(
            system, protocol, horizon=24.0, record_segments=True
        )
        print(f"=== {protocol} ===")
        print(render_gantt(result.trace, until=24.0))
        eers = [
            f"T{i + 1}: avg {metrics.average_eer:.2f} / max {metrics.max_eer:.2f}"
            for i, metrics in enumerate(result.metrics.tasks)
        ]
        print("EER times -- " + ", ".join(eers))
        print()


if __name__ == "__main__":
    main()
