#!/usr/bin/env python3
"""A sensor-monitoring pipeline: the paper's Example 1, made concrete.

The paper's introduction motivates end-to-end tasks with a monitor task
that samples a remote sensor, ships the sample over a communication
link, and displays it centrally.  This example builds a small plant
around that idea:

* three monitor chains (pressure, temperature, vibration) share a field
  processor, a CAN-style "link" processor (message transmissions are
  modelled as communication subtasks, per Section 2), and a central
  display processor;
* a local control task competes for the field processor.

It then asks the questions a designer would: is the plant schedulable
under each protocol, what latency and output jitter should the display
expect, and how does signalling latency change the picture?

Run:  python examples/monitor_pipeline.py
"""

from __future__ import annotations

from repro import (
    Subtask,
    System,
    Task,
    analyze_sa_ds,
    analyze_sa_pm,
    compare_protocols,
    proportional_deadline_monotonic,
)
from repro.sim.network import FixedLatency


def build_plant() -> System:
    """Three monitor chains plus a field-local control loop."""

    def chain(name: str, period: float, sample: float, message: float,
              display: float) -> Task:
        return Task(
            period=period,
            name=name,
            subtasks=(
                Subtask(sample, "field", name=f"{name}-sample"),
                Subtask(message, "link", name=f"{name}-msg"),
                Subtask(display, "central", name=f"{name}-display"),
            ),
        )

    pressure = chain("pressure", period=50.0, sample=4.0, message=6.0,
                     display=5.0)
    temperature = chain("temperature", period=100.0, sample=6.0,
                        message=8.0, display=9.0)
    vibration = chain("vibration", period=200.0, sample=20.0, message=24.0,
                      display=18.0)
    control = Task(
        period=25.0,
        name="control",
        subtasks=(Subtask(5.0, "field", name="control-loop"),),
    )
    plant = System(
        (pressure, temperature, vibration, control), name="monitor-plant"
    )
    # The paper's evaluation assigns subtask priorities with
    # Proportional-Deadline-Monotonic; reuse it here.
    return proportional_deadline_monotonic(plant)


def main() -> None:
    plant = build_plant()
    print(plant.describe())
    print()

    print(analyze_sa_pm(plant).describe())
    print()
    print(analyze_sa_ds(plant).describe())
    print()

    results = compare_protocols(
        plant, ("DS", "PM", "MPM", "RG"), horizon_periods=30.0
    )
    print("Simulated averages over ~30 hyperperiod-hints:")
    header = f"{'task':<14}" + "".join(
        f"{name + ' avg':>10}{name + ' jit':>10}" for name in results
    )
    print(header)
    for i, task in enumerate(plant.tasks):
        row = f"{task.name:<14}"
        for result in results.values():
            metrics = result.metrics.task(i)
            row += f"{metrics.average_eer:>10.2f}{metrics.output_jitter:>10.2f}"
        print(row)
    print()
    print(
        "DS gives the freshest display updates; PM/MPM pin the jitter to\n"
        "the display stage's response bound; RG sits in between, with\n"
        "DS-like latency and analyzable worst cases.\n"
    )

    # ------------------------------------------------------------------
    # Sensitivity: what if synchronization signals cost 1 time unit?
    # ------------------------------------------------------------------
    print("With a 1-unit signalling latency between processors (DS):")
    base = results["DS"]
    delayed = compare_protocols(
        plant,
        ("DS",),
        horizon_periods=30.0,
        latency_model=FixedLatency(1.0),
    )["DS"]
    for i, task in enumerate(plant.tasks):
        before = base.metrics.task(i).average_eer
        after = delayed.metrics.task(i).average_eer
        print(
            f"  {task.name:<14} avg EER {before:7.2f} -> {after:7.2f} "
            f"(+{after - before:.2f})"
        )
    print(
        "\nEach chain hop adds one signal, so a k-stage chain pays about\n"
        "(k-1) latency units -- matching the paper's advice to model\n"
        "loaded links as processors rather than ignore them."
    )


if __name__ == "__main__":
    main()
