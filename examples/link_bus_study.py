#!/usr/bin/env python3
"""How fast must the bus be?  A link-as-processor study.

Section 2 of the paper argues that a shared, prioritized communication
medium (it cites CAN) should be modelled as a *processor* carrying
message subtasks.  This example uses that modelling to answer a real
design question: given a set of end-to-end control chains, how slow may
the shared bus get before the system stops being certifiably
schedulable -- and does the answer depend on the synchronization
protocol?

For each candidate per-message transmission time, the script splices
message stages onto a ``bus`` processor, re-assigns priorities
(PD-monotonic, so short-slice messages win the bus -- CAN-style), and
checks schedulability under SA/PM (the PM/MPM/RG verdict) and SA/DS
(the DS verdict).

Run:  python examples/link_bus_study.py
"""

from __future__ import annotations

import math

from repro import (
    Subtask,
    System,
    Task,
    analyze_sa_ds,
    analyze_sa_pm,
    proportional_deadline_monotonic,
)
from repro.model.links import insert_link_stages, uniform_link


def build_chains() -> System:
    """Three sensor->controller->actuator chains over three nodes."""

    def loop(name: str, period: float, sense: float, control: float,
             actuate: float) -> Task:
        return Task(
            period=period,
            name=name,
            subtasks=(
                Subtask(sense, "sensor-node", name=f"{name}-sense"),
                Subtask(control, "controller", name=f"{name}-control"),
                Subtask(actuate, "actuator-node", name=f"{name}-act"),
            ),
        )

    return System(
        (
            loop("fast-loop", 12.0, 1.5, 2.5, 1.0),
            loop("mid-loop", 40.0, 4.0, 8.0, 3.0),
            loop("slow-loop", 150.0, 12.0, 30.0, 10.0),
        ),
        name="control-plant",
    )


def main() -> None:
    plant = build_chains()
    print(plant.describe())
    print()
    print(f"{'msg time':>9}{'bus util':>10}{'SA/PM (PM/MPM/RG)':>20}"
          f"{'SA/DS (DS)':>14}")
    for transmission in (0.5, 1.0, 2.0, 2.5, 3.0, 4.0):
        wired = proportional_deadline_monotonic(
            insert_link_stages(plant, uniform_link("bus", transmission))
        )
        bus_utilization = wired.processor_utilization("bus")
        sa_pm = analyze_sa_pm(wired)
        sa_ds = analyze_sa_ds(wired)
        pm_ok = sum(
            sa_pm.is_task_schedulable(i) for i in range(len(wired.tasks))
        )
        ds_ok = sum(
            sa_ds.is_task_schedulable(i) for i in range(len(wired.tasks))
        )
        print(
            f"{transmission:>9.2f}{bus_utilization:>10.2%}"
            f"{pm_ok:>14}/{len(wired.tasks)}"
            f"{ds_ok:>11}/{len(wired.tasks)}"
            + ("   <- DS analysis diverged" if sa_ds.failed else "")
        )
    print(
        "\nEach message stage rides the bus at a PD-monotonic priority\n"
        "(CAN-style: messages with tighter slices win arbitration).  The\n"
        "release-shaping protocols keep their certification further into\n"
        "the slow-bus regime than DS -- the same story as Figure 13, told\n"
        "on a concrete design axis."
    )


if __name__ == "__main__":
    main()
