#!/usr/bin/env python3
"""Robustness study: which protocol survives which perturbation?

The paper's conclusion (Section 6) flags execution-time variation and
release jitter as open threats.  This example injects both into a
synthetic system and tabulates, for every protocol, the number of
precedence violations and the worst observed EER time against the
analysis bound -- making the paper's qualitative robustness claims
concrete:

* all protocols tolerate execution times *below* the analyzed WCETs;
* sporadic (late) first releases break PM, but not DS/MPM/RG;
* WCET overruns break both timer-based protocols (PM and MPM), while
  the completion-triggered ones (DS, RG) merely get slower.

Run:  python examples/robustness_study.py
"""

from __future__ import annotations

import math

from repro import WorkloadConfig, analyze_sa_pm, generate_system, make_controller
from repro.model.task import SubtaskId
from repro.sim import simulate
from repro.sim.variation import (
    OverrunInjection,
    UniformReleaseJitter,
    UniformScaledExecution,
)

PROTOCOLS = ("DS", "PM", "MPM", "RG")


def run_scenario(system, label, **kwargs) -> None:
    bounds = analyze_sa_pm(system)
    print(f"--- {label} ---")
    print(f"{'protocol':<10}{'violations':>12}{'worst EER/bound':>18}")
    for protocol in PROTOCOLS:
        controller = make_controller(protocol, system)
        result = simulate(
            system, controller, horizon_periods=10.0, **kwargs
        )
        worst_ratio = 0.0
        for i in range(len(system.tasks)):
            observed = result.metrics.task(i).max_eer
            bound = bounds.task_bounds[i]
            if not math.isnan(observed) and math.isfinite(bound):
                worst_ratio = max(worst_ratio, observed / bound)
        flag = "  <-- broken" if result.metrics.precedence_violations else ""
        print(
            f"{protocol:<10}{result.metrics.precedence_violations:>12}"
            f"{worst_ratio:>18.2f}{flag}"
        )
    print()


def main() -> None:
    config = WorkloadConfig(
        subtasks_per_task=4, utilization=0.6, tasks=8, processors=4
    )
    system = generate_system(config, seed=11)
    print(
        f"System {config.label} seed=11 -- worst EER/bound uses the SA/PM "
        f"bounds\n(valid for PM/MPM/RG under nominal conditions; ratios "
        f"above 1 mean the\nanalysis no longer covers reality).\n"
    )

    run_scenario(system, "nominal (every instance at its WCET)")
    run_scenario(
        system,
        "execution times 30-100% of WCET",
        execution_model=UniformScaledExecution(0.3, 1.0, seed=1),
    )
    run_scenario(
        system,
        "sporadic first releases (late by up to one period)",
        jitter_model=UniformReleaseJitter(
            min(t.period for t in system.tasks), seed=2
        ),
    )
    run_scenario(
        system,
        "every 3rd instance of T1's first stage overruns 4x",
        execution_model=OverrunInjection(SubtaskId(0, 0), factor=4.0, every=3),
    )
    print(
        "Summary: PM relies on synchronized clocks AND strict periodicity\n"
        "AND correct WCETs; MPM drops the first two needs but not the\n"
        "third; DS and RG never violate precedence because they only act\n"
        "on actual completions (RG additionally keeps the SA/PM bounds\n"
        "valid when WCETs hold)."
    )


if __name__ == "__main__":
    main()
