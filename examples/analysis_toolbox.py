#!/usr/bin/env python3
"""Tour of the analysis toolbox beyond the two headline algorithms.

Walks one system through everything `repro.core.analysis` offers:

1. the two paper algorithms (SA/PM, SA/DS);
2. blocking terms -- modelling a dedicated communication link as a
   resource (the paper's Section 2 alternative to "link" processors);
3. overhead-aware analysis -- charging each protocol's interrupt and
   context-switch costs (Section 3.3);
4. the local-deadline slicing baseline with each Kao & Garcia-Molina
   strategy, and Audsley's optimal priority assignment against it;
5. exhaustive worst-case search -- how tight were the bounds, really?

Run:  python examples/analysis_toolbox.py
"""

from __future__ import annotations

import math

from repro import Subtask, System, Task, proportional_deadline_monotonic
from repro.core.analysis import (
    analyze_local_deadline,
    analyze_sa_ds,
    analyze_sa_pm,
    analyze_with_overhead,
)
from repro.core.analysis.exhaustive import search_worst_case_eer
from repro.core.analysis.opa import audsley_assignment
from repro.model.deadlines import DEADLINE_STRATEGIES
from repro.model.task import SubtaskId


def build_system() -> System:
    """Two pipelines and a local task over three processors."""
    video = Task(
        period=30.0,
        name="video",
        subtasks=(
            Subtask(6.0, "cam"),
            Subtask(9.0, "net"),
            Subtask(7.0, "gui"),
        ),
    )
    audio = Task(
        period=10.0,
        name="audio",
        subtasks=(Subtask(3.0, "cam"), Subtask(3.5, "gui")),
    )
    housekeeping = Task(
        period=6.0,
        name="housekeeping",
        subtasks=(Subtask(2.5, "net"),),
    )
    return proportional_deadline_monotonic(
        System((video, audio, housekeeping), name="toolbox")
    )


def main() -> None:
    system = build_system()
    print(system.describe())
    print()

    # 1. The paper's algorithms.
    sa_pm = analyze_sa_pm(system)
    sa_ds = analyze_sa_ds(system)
    print(sa_pm.describe())
    print()
    print(sa_ds.describe())
    print()

    # 2. Blocking: the 'net' stage holds a dedicated bus for up to 1.2
    #    time units non-preemptively.
    blocked = analyze_sa_pm(
        system, blocking={SubtaskId(0, 1): 1.2, SubtaskId(2, 0): 1.2}
    )
    print("With a 1.2-unit bus-holding blocking term on the net stages:")
    for i, task in enumerate(system.tasks):
        print(
            f"  {task.name:<14} SA/PM bound {sa_pm.task_bounds[i]:6.2f} "
            f"-> {blocked.task_bounds[i]:6.2f}"
        )
    print()

    # 3. Protocol overheads (Section 3.3): interrupts at 0.05, context
    #    switches at 0.02 time units.
    print("EER bounds with platform overheads charged (0.05/interrupt, "
          "0.02/context switch):")
    for protocol in ("DS", "PM", "MPM", "RG"):
        verdict = analyze_with_overhead(
            system,
            protocol,
            interrupt_cost=0.05,
            context_switch_cost=0.02,
        )
        bounds = ", ".join(
            "inf" if math.isinf(b) else f"{b:.2f}" for b in verdict.task_bounds
        )
        print(f"  {protocol:<4} ({verdict.algorithm}): {bounds}")
    print()

    # 4. Slicing strategies and OPA.
    print("Local-deadline slicing verdicts per strategy (prior art):")
    for name, strategy in DEADLINE_STRATEGIES.items():
        verdict = analyze_local_deadline(system, strategy)
        states = "".join(
            "Y" if verdict.is_task_schedulable(i) else "n"
            for i in range(len(system.tasks))
        )
        print(f"  {name:<4} per-task verdicts: {states}")
    opa = audsley_assignment(system)
    print(
        "  Audsley OPA:",
        "found a feasible priority order" if opa else "infeasible",
    )
    print()

    # 5. How tight were the bounds?  Exhaustively search task phases.
    search = search_worst_case_eer(system, "RG", steps=6)
    print("SA/PM bound vs searched worst case under RG:")
    for i, task in enumerate(system.tasks):
        bound = sa_pm.task_bounds[i]
        observed = search.worst_eer[i]
        print(
            f"  {task.name:<14} bound {bound:6.2f}  searched {observed:6.2f}"
            f"  pessimism {bound / observed:5.2f}x"
        )
    print(
        "\nThe gap between bound and attainable worst case is the slack\n"
        "RG's rule 2 exploits (paper Section 3.2)."
    )


if __name__ == "__main__":
    main()
