#!/usr/bin/env python3
"""Choosing a synchronization protocol for a synthetic workload.

Generates one of the paper's synthetic systems (Section 5.1), then walks
the decision the paper's conclusion describes: compare the protocols on
estimated worst-case EER times, simulated average EER times, output
jitter, and implementation cost -- and print a recommendation per the
paper's guidance.

Run:  python examples/protocol_tradeoffs.py [N] [U%] [seed]
e.g.  python examples/protocol_tradeoffs.py 5 70 3
"""

from __future__ import annotations

import math
import sys

from repro import (
    PROTOCOL_COSTS,
    WorkloadConfig,
    analyze_sa_ds,
    analyze_sa_pm,
    compare_protocols,
    generate_system,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    u = float(sys.argv[2]) / 100 if len(sys.argv) > 2 else 0.7
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    config = WorkloadConfig(
        subtasks_per_task=n, utilization=u, random_phases=True
    )
    system = generate_system(config, seed)
    print(
        f"Synthetic system {config.label} seed={seed}: "
        f"{len(system.tasks)} tasks x {n} subtasks on "
        f"{len(system.processors)} processors, U={u:.0%} each\n"
    )

    # ------------------------------------------------------------------
    # Worst-case side: the two analyses.
    # ------------------------------------------------------------------
    sa_pm = analyze_sa_pm(system)
    sa_ds = analyze_sa_ds(system)
    print(f"{'task':<6}{'period':>10}{'SA/PM bound':>14}{'SA/DS bound':>14}"
          f"{'ratio':>8}")
    ratios = []
    for i, task in enumerate(system.tasks):
        pm_bound = sa_pm.task_bounds[i]
        ds_bound = sa_ds.task_bounds[i]
        ratio = ds_bound / pm_bound if math.isfinite(ds_bound) else math.inf
        ratios.append(ratio)
        ds_text = f"{ds_bound:.0f}" if math.isfinite(ds_bound) else "inf"
        print(
            f"T{i + 1:<5}{task.period:>10.0f}{pm_bound:>14.0f}"
            f"{ds_text:>14}{ratio:>8.2f}"
        )
    print()
    if sa_ds.failed:
        print(
            "SA/DS failed to bound at least one task (the paper's Figure\n"
            "12 failure condition): with hard deadlines, DS is out.\n"
        )

    # ------------------------------------------------------------------
    # Average-case side: simulate.
    # ------------------------------------------------------------------
    results = compare_protocols(
        system, ("DS", "PM", "RG"), horizon_periods=12.0
    )
    print(f"{'task':<6}" + "".join(f"{name:>12}" for name in results)
          + f"{'PM/DS':>8}{'RG/DS':>8}")
    pm_ds, rg_ds = [], []
    for i in range(len(system.tasks)):
        row = f"T{i + 1:<5}"
        averages = {}
        for name, result in results.items():
            averages[name] = result.metrics.task(i).average_eer
            row += f"{averages[name]:>12.1f}"
        pm_ds.append(averages["PM"] / averages["DS"])
        rg_ds.append(averages["RG"] / averages["DS"])
        row += f"{pm_ds[-1]:>8.2f}{rg_ds[-1]:>8.2f}"
        print(row)
    print(
        f"\nmean PM/DS ratio: {sum(pm_ds) / len(pm_ds):.2f}   "
        f"mean RG/DS ratio: {sum(rg_ds) / len(rg_ds):.2f}\n"
    )

    # ------------------------------------------------------------------
    # Cost side + recommendation (paper Section 6).
    # ------------------------------------------------------------------
    for costs in PROTOCOL_COSTS.values():
        print("  " + costs.describe())
    print()
    finite_ratio = [r for r in ratios if math.isfinite(r)]
    bound_penalty = (
        max(finite_ratio) if finite_ratio and not sa_ds.failed else math.inf
    )
    if bound_penalty < 1.5:
        verdict = (
            "DS: bounds are close to SA/PM's and DS has the lowest cost "
            "and the best average latency (short chains / low load)."
        )
    else:
        verdict = (
            "RG: DS's worst-case bounds are poor here, and RG matches "
            "PM/MPM's bounds while keeping averages near DS -- unless "
            "small output jitter matters more, in which case PM/MPM."
        )
    print("Recommendation:", verdict)
    print()

    # The same decision, as the library makes it (Section 6 as code).
    from repro import recommend_protocol

    print(recommend_protocol(system).describe())


if __name__ == "__main__":
    main()
