#!/usr/bin/env python3
"""Reproduce the paper's evaluation figures (12-16) in one run.

Sweeps the (N, U) grid of Section 5 -- by default a laptop-sized slice
of it -- and prints the five surfaces as text tables, with the paper's
expected shape noted above each.

Run:  python examples/reproduce_figures.py [--full] [--systems K]

``--full`` sweeps all 35 configurations (several minutes at the default
sample size); ``--systems`` raises the per-configuration sample (the
paper used 1000).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import run_suite

EXPECTATIONS = {
    "failure_rate": (
        "Paper: near zero almost everywhere, rising sharply to ~1 as N->8 "
        "and U->90%."
    ),
    "bound_ratio": (
        "Paper: >= 1 everywhere; flat in N at low U, steep in N at high "
        "U; > 2 for roughly a third of configurations."
    ),
    "pm_ds_ratio": (
        "Paper: grows with N (>= 2 from N=5, ~3-4 at N=8); shrinks "
        "slightly as U grows."
    ),
    "rg_ds_ratio": (
        "Paper: between 1 and 2, largest at 90% utilization where idle "
        "points (rule 2) are rare."
    ),
    "pm_rg_ratio": (
        "Paper: consistently above 1, reaching 2-3 for N in 6..8 -- RG "
        "dominates PM on average EER."
    ),
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="sweep all 35 configurations")
    parser.add_argument("--systems", type=int, default=5,
                        help="systems per configuration (paper: 1000)")
    args = parser.parse_args()

    if args.full:
        subtasks = (2, 3, 4, 5, 6, 7, 8)
        utilizations = (0.5, 0.6, 0.7, 0.8, 0.9)
    else:
        subtasks = (2, 4, 6, 8)
        utilizations = (0.5, 0.7, 0.9)

    result = run_suite(
        systems=args.systems,
        subtask_counts=subtasks,
        utilizations=utilizations,
        progress=lambda line: print(line, file=sys.stderr),
    )
    for attr, note in EXPECTATIONS.items():
        surface = getattr(result, attr)
        print(note)
        print(surface.render(precision=2))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
